//! Span and event types: the wire format of the tracing core.

use std::fmt;

/// Identifier of one span within a trace. Ids are allocated by the
/// [`Tracer`](crate::Tracer) and unique within its lifetime; `NONE`
/// (zero) marks "no parent" / "tracing disabled".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null id: no parent, or a span emitted by a disabled tracer.
    pub const NONE: SpanId = SpanId(0);

    /// Returns `true` for the null id.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A typed attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A string.
    Str(String),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (ids, counts, byte sizes, nanoseconds).
    UInt(u64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Str(s) => f.write_str(s),
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::UInt(v) => write!(f, "{v}"),
            AttrValue::Float(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// A builder over an attribute list, passed to the `*_with` tracer
/// methods so attribute construction is skipped entirely when tracing
/// is disabled.
#[derive(Debug, Default)]
pub struct AttrList {
    pairs: Vec<(String, AttrValue)>,
}

impl AttrList {
    /// Adds a string attribute.
    pub fn str(&mut self, key: &str, value: impl Into<String>) -> &mut AttrList {
        self.pairs.push((key.into(), AttrValue::Str(value.into())));
        self
    }

    /// Adds a signed integer attribute.
    pub fn int(&mut self, key: &str, value: i64) -> &mut AttrList {
        self.pairs.push((key.into(), AttrValue::Int(value)));
        self
    }

    /// Adds an unsigned integer attribute.
    pub fn uint(&mut self, key: &str, value: u64) -> &mut AttrList {
        self.pairs.push((key.into(), AttrValue::UInt(value)));
        self
    }

    /// Adds a float attribute.
    pub fn float(&mut self, key: &str, value: f64) -> &mut AttrList {
        self.pairs.push((key.into(), AttrValue::Float(value)));
        self
    }

    /// Adds a boolean attribute.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut AttrList {
        self.pairs.push((key.into(), AttrValue::Bool(value)));
        self
    }

    /// Consumes the builder into its pairs.
    pub fn into_pairs(self) -> Vec<(String, AttrValue)> {
        self.pairs
    }
}

/// What kind of record a [`TraceEvent`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    Begin,
    /// A span closed.
    End,
    /// A point-in-time event attached to a span (e.g. a retry
    /// decision).
    Instant,
}

impl EventKind {
    /// One-letter code used by the JSON encodings.
    pub fn code(self) -> &'static str {
        match self {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "I",
        }
    }
}

/// One emitted trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Record kind.
    pub kind: EventKind,
    /// The span this record belongs to (for `Instant`, a fresh id of
    /// its own).
    pub id: SpanId,
    /// Enclosing span, or [`SpanId::NONE`] for roots.
    pub parent: SpanId,
    /// Span or event name (`execute`, `wave`, `task`, `attempt`,
    /// `retry`, …).
    pub name: String,
    /// Monotonic nanoseconds since the tracer's epoch.
    pub mono_ns: u64,
    /// Wall-clock milliseconds since the Unix epoch (derived from the
    /// tracer's epoch pair, so it is consistent with `mono_ns`).
    pub wall_unix_ms: u64,
    /// Small integer lane for the emitting thread (0 = the thread that
    /// created the tracer saw it first).
    pub tid: u64,
    /// Typed attributes.
    pub attrs: Vec<(String, AttrValue)>,
}

impl TraceEvent {
    /// Returns an attribute value by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Returns a string attribute by key.
    pub fn attr_str(&self, key: &str) -> Option<&str> {
        match self.attr(key) {
            Some(AttrValue::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Encodes the event as one line of JSON (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"k\":\"");
        out.push_str(self.kind.code());
        out.push_str("\",\"id\":");
        out.push_str(&self.id.0.to_string());
        out.push_str(",\"p\":");
        out.push_str(&self.parent.0.to_string());
        out.push_str(",\"n\":");
        json::push_string(&mut out, &self.name);
        out.push_str(",\"t\":");
        out.push_str(&self.mono_ns.to_string());
        out.push_str(",\"w\":");
        out.push_str(&self.wall_unix_ms.to_string());
        out.push_str(",\"tid\":");
        out.push_str(&self.tid.to_string());
        if !self.attrs.is_empty() {
            out.push_str(",\"a\":");
            json::push_attrs(&mut out, &self.attrs);
        }
        out.push('}');
        out
    }
}

/// Minimal JSON encoding helpers (the crate is dependency-free).
pub(crate) mod json {
    use super::AttrValue;

    /// Appends `s` as a JSON string literal.
    pub fn push_string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Appends a float in a JSON-safe rendering (no NaN/Inf literals).
    pub fn push_float(out: &mut String, v: f64) {
        if v.is_finite() {
            out.push_str(&format!("{v}"));
        } else {
            out.push_str("null");
        }
    }

    /// Appends an attribute map `{"k":v,…}`.
    pub fn push_attrs(out: &mut String, attrs: &[(String, AttrValue)]) {
        out.push('{');
        for (i, (k, v)) in attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_string(out, k);
            out.push(':');
            match v {
                AttrValue::Str(s) => push_string(out, s),
                AttrValue::Int(n) => out.push_str(&n.to_string()),
                AttrValue::UInt(n) => out.push_str(&n.to_string()),
                AttrValue::Float(f) => push_float(out, *f),
                AttrValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            }
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_is_correct() {
        let ev = TraceEvent {
            kind: EventKind::Instant,
            id: SpanId(3),
            parent: SpanId(1),
            name: "quote\"back\\slash\nnewline\u{1}".into(),
            mono_ns: 42,
            wall_unix_ms: 7,
            tid: 0,
            attrs: vec![("k".into(), AttrValue::Float(f64::NAN))],
        };
        let j = ev.to_json();
        assert!(j.contains("quote\\\"back\\\\slash\\nnewline\\u0001"));
        assert!(j.contains("\"k\":null"), "NaN must not leak: {j}");
    }

    #[test]
    fn attr_lookup_and_builder() {
        let mut a = AttrList::default();
        a.str("s", "x").int("i", -1).uint("u", 2).bool("b", true);
        let pairs = a.into_pairs();
        let ev = TraceEvent {
            kind: EventKind::Begin,
            id: SpanId(1),
            parent: SpanId::NONE,
            name: "task".into(),
            mono_ns: 0,
            wall_unix_ms: 0,
            tid: 0,
            attrs: pairs,
        };
        assert_eq!(ev.attr_str("s"), Some("x"));
        assert_eq!(ev.attr("i"), Some(&AttrValue::Int(-1)));
        assert_eq!(ev.attr("missing"), None);
        assert!(SpanId::NONE.is_none());
        assert_eq!(SpanId(4).to_string(), "s4");
    }
}
