//! The workspace health model: a typed report aggregating store,
//! scheduler, cache, and analysis-index signals into ok/warn/critical.
//!
//! The report is computed from data the caller already has — a
//! [`MetricsSnapshot`], plus optional store and analysis summaries
//! supplied as plain structs so this crate stays dependency-free.
//! Thresholds are explicit and configurable ([`HealthThresholds`]);
//! the defaults are deliberately conservative (a fresh session is
//! `ok` across the board).
//!
//! Rate checks guard their denominators: a session that has not run
//! anything yet has no retry rate, not a zero retry rate that might
//! flap to warn on the first retry.

use crate::metrics::MetricsSnapshot;
use crate::span::json;

/// Severity of a single check or a whole report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthStatus {
    /// Operating normally.
    Ok,
    /// Degrading or approaching a limit; worth a look.
    Warn,
    /// Broken or data-endangering; needs an operator.
    Critical,
}

impl HealthStatus {
    /// Stable lowercase name (`ok` / `warn` / `critical`).
    pub fn as_str(self) -> &'static str {
        match self {
            HealthStatus::Ok => "ok",
            HealthStatus::Warn => "warn",
            HealthStatus::Critical => "critical",
        }
    }

    /// Numeric level for the `health.status` gauge (0/1/2).
    pub fn level(self) -> i64 {
        match self {
            HealthStatus::Ok => 0,
            HealthStatus::Warn => 1,
            HealthStatus::Critical => 2,
        }
    }
}

/// Configurable thresholds mapping raw signals to statuses.
#[derive(Debug, Clone)]
pub struct HealthThresholds {
    /// Ready-queue depth (gauge `exec.queue_depth`) above which the
    /// scheduler is considered backed up.
    pub queue_depth_warn: i64,
    /// Retry-per-run rate that warns / goes critical.
    pub retry_rate_warn: f64,
    /// See [`Self::retry_rate_warn`].
    pub retry_rate_critical: f64,
    /// Skipped-subtask rate (skips per run+skip) that warns / goes
    /// critical — skips mean committed partial failures.
    pub skip_rate_warn: f64,
    /// See [`Self::skip_rate_warn`].
    pub skip_rate_critical: f64,
    /// Cache hit rate *below* which the resume/extensional cache is
    /// considered cold (only checked once `min_cache_lookups` have
    /// happened).
    pub cache_hit_rate_warn: f64,
    /// Minimum `hits + runs` before the cache check activates.
    pub min_cache_lookups: u64,
    /// Journal segment-chain length that warns / goes critical (a
    /// long chain means `checkpoint` has not compacted in a while).
    pub segment_chain_warn: usize,
    /// See [`Self::segment_chain_warn`].
    pub segment_chain_critical: usize,
    /// Remaining lease milliseconds below which the writer should
    /// have renewed already.
    pub lease_remaining_warn_ms: i64,
    /// Stale-instance count (from the analysis index) that warns.
    pub stale_instances_warn: usize,
}

impl Default for HealthThresholds {
    fn default() -> HealthThresholds {
        HealthThresholds {
            queue_depth_warn: 64,
            retry_rate_warn: 0.10,
            retry_rate_critical: 0.50,
            skip_rate_warn: 0.05,
            skip_rate_critical: 0.25,
            cache_hit_rate_warn: 0.05,
            min_cache_lookups: 32,
            segment_chain_warn: 8,
            segment_chain_critical: 32,
            lease_remaining_warn_ms: 2_000,
            stale_instances_warn: 1,
        }
    }
}

/// Store-side inputs to the health model, extracted from the open
/// workspace and its `RecoveryReport` by the caller.
#[derive(Debug, Clone, Default)]
pub struct StoreHealth {
    /// Degraded-mode reason, if the store opened read-only.
    pub degraded: Option<String>,
    /// Lease owner recorded in the LEASE file.
    pub owner: String,
    /// Current fencing token (monotonic across takeovers).
    pub fencing_token: u64,
    /// Milliseconds until the held lease expires; negative if already
    /// expired, `None` when this handle holds no lease (degraded).
    pub lease_remaining_ms: Option<i64>,
    /// Checkpoint generation the store recovered to.
    pub generation: u64,
    /// Journal segments in the live MANIFEST chain.
    pub segment_chain_len: usize,
    /// Segments (or segment regions) quarantined aside by recovery or
    /// scrub — damage preserved for forensics.
    pub quarantined: usize,
    /// Bytes discarded from a torn tail during the last recovery.
    pub recovery_bytes_discarded: u64,
}

/// Analysis-index inputs: how fresh the revdep/lint layer is.
#[derive(Debug, Clone, Default)]
pub struct AnalysisHealth {
    /// Instances in the history database.
    pub instances_total: usize,
    /// Instances covered by the revdep index watermark.
    pub instances_indexed: usize,
    /// Instances currently flagged stale (HL0501/HL0502).
    pub stale_instances: usize,
}

/// One named signal with its computed status.
#[derive(Debug, Clone)]
pub struct HealthCheck {
    /// Stable dotted name (`store.mode`, `sched.retries`, …).
    pub name: String,
    /// Status this check resolved to.
    pub status: HealthStatus,
    /// Short value rendering (`"writable"`, `"3.2%"`, …).
    pub value: String,
    /// One-line human explanation.
    pub detail: String,
}

/// The aggregated health report.
#[derive(Debug, Clone, Default)]
pub struct HealthReport {
    /// Individual checks, in presentation order.
    pub checks: Vec<HealthCheck>,
    /// Wall-clock unix milliseconds when the report was computed.
    pub wall_unix_ms: u64,
}

impl HealthReport {
    /// Computes a report from whatever signals are available. `store`
    /// and `analysis` are `None` when no workspace / no index is
    /// attached — the corresponding checks then report `ok` with a
    /// "detached" value rather than guessing.
    pub fn build(
        wall_unix_ms: u64,
        store: Option<&StoreHealth>,
        analysis: Option<&AnalysisHealth>,
        metrics: &MetricsSnapshot,
        t: &HealthThresholds,
    ) -> HealthReport {
        let mut checks = Vec::new();
        let mut push = |name: &str, status: HealthStatus, value: String, detail: String| {
            checks.push(HealthCheck {
                name: name.to_owned(),
                status,
                value,
                detail,
            });
        };

        match store {
            None => push(
                "store.mode",
                HealthStatus::Ok,
                "detached".into(),
                "no workspace attached; nothing durable at risk".into(),
            ),
            Some(s) => {
                match &s.degraded {
                    Some(reason) => push(
                        "store.mode",
                        HealthStatus::Critical,
                        "degraded".into(),
                        format!("read-only: {reason}"),
                    ),
                    None => push(
                        "store.mode",
                        HealthStatus::Ok,
                        "writable".into(),
                        format!("generation {}", s.generation),
                    ),
                }
                match s.lease_remaining_ms {
                    None => push(
                        "store.lease",
                        HealthStatus::Warn,
                        "not held".into(),
                        "this handle holds no lease (degraded open)".into(),
                    ),
                    Some(ms) if ms < 0 => push(
                        "store.lease",
                        HealthStatus::Critical,
                        "expired".into(),
                        format!(
                            "owner {} token {} expired {}ms ago; the next open takes over",
                            s.owner, s.fencing_token, -ms
                        ),
                    ),
                    Some(ms) if ms < t.lease_remaining_warn_ms => push(
                        "store.lease",
                        HealthStatus::Warn,
                        format!("{ms}ms left"),
                        format!(
                            "owner {} token {}; renewal overdue",
                            s.owner, s.fencing_token
                        ),
                    ),
                    Some(ms) => push(
                        "store.lease",
                        HealthStatus::Ok,
                        format!("{ms}ms left"),
                        format!("owner {} token {}", s.owner, s.fencing_token),
                    ),
                }
                let seg_status = if s.segment_chain_len >= t.segment_chain_critical {
                    HealthStatus::Critical
                } else if s.segment_chain_len >= t.segment_chain_warn {
                    HealthStatus::Warn
                } else {
                    HealthStatus::Ok
                };
                push(
                    "store.segments",
                    seg_status,
                    format!("{} in chain", s.segment_chain_len),
                    if seg_status == HealthStatus::Ok {
                        "journal chain is short".into()
                    } else {
                        "long journal chain; `checkpoint` to compact".into()
                    },
                );
                push(
                    "store.quarantine",
                    if s.quarantined > 0 {
                        HealthStatus::Warn
                    } else {
                        HealthStatus::Ok
                    },
                    format!("{} quarantined", s.quarantined),
                    if s.quarantined > 0 {
                        "damaged regions preserved aside; inspect *.quarantined-<k>".into()
                    } else {
                        "no quarantined damage".into()
                    },
                );
                if s.recovery_bytes_discarded > 0 {
                    push(
                        "store.recovery",
                        HealthStatus::Warn,
                        format!("{}B discarded", s.recovery_bytes_discarded),
                        "last recovery truncated a torn journal tail".into(),
                    );
                } else {
                    push(
                        "store.recovery",
                        HealthStatus::Ok,
                        "clean".into(),
                        "last recovery replayed without loss".into(),
                    );
                }
            }
        }

        let counter = |name: &str| metrics.counters.get(name).copied().unwrap_or(0);
        let depth = metrics.gauges.get("exec.queue_depth").copied().unwrap_or(0);
        push(
            "sched.queue_depth",
            if depth > t.queue_depth_warn {
                HealthStatus::Warn
            } else {
                HealthStatus::Ok
            },
            depth.to_string(),
            "ready tasks awaiting a worker (last sample)".into(),
        );

        let runs = counter("exec.runs");
        let retries = counter("exec.retries");
        if runs > 0 {
            let rate = retries as f64 / runs as f64;
            let status = if rate >= t.retry_rate_critical {
                HealthStatus::Critical
            } else if rate >= t.retry_rate_warn {
                HealthStatus::Warn
            } else {
                HealthStatus::Ok
            };
            push(
                "sched.retries",
                status,
                format!("{:.1}% of runs", rate * 100.0),
                format!("{retries} retries over {runs} tool runs"),
            );
        } else {
            push(
                "sched.retries",
                HealthStatus::Ok,
                "no runs yet".into(),
                "retry rate undefined until a tool runs".into(),
            );
        }

        let skipped = counter("exec.skipped_subtasks");
        let attempts_den = runs + skipped;
        if attempts_den > 0 {
            let rate = skipped as f64 / attempts_den as f64;
            let status = if rate >= t.skip_rate_critical {
                HealthStatus::Critical
            } else if rate >= t.skip_rate_warn {
                HealthStatus::Warn
            } else {
                HealthStatus::Ok
            };
            push(
                "sched.skips",
                status,
                format!("{:.1}%", rate * 100.0),
                format!("{skipped} subtasks skipped after upstream failures"),
            );
        } else {
            push(
                "sched.skips",
                HealthStatus::Ok,
                "no runs yet".into(),
                "skip rate undefined until a tool runs".into(),
            );
        }

        let hits = counter("exec.cache_hits");
        let lookups = hits + runs;
        if lookups >= t.min_cache_lookups {
            let rate = hits as f64 / lookups as f64;
            push(
                "cache.hit_rate",
                if rate < t.cache_hit_rate_warn {
                    HealthStatus::Warn
                } else {
                    HealthStatus::Ok
                },
                format!("{:.1}%", rate * 100.0),
                format!("{hits} extensional hits over {lookups} lookups"),
            );
        } else {
            push(
                "cache.hit_rate",
                HealthStatus::Ok,
                "warming".into(),
                format!("{lookups} lookups so far (needs {})", t.min_cache_lookups),
            );
        }

        // Content-addressed result cache (the `cache.*` family): one
        // informational hit-rate check per tier that saw traffic, plus
        // a disk-store integrity check. Silent when no content cache
        // is attached — an absent subsystem is not a degraded one.
        let content_tiers = [
            ("cache.content.mem", "cache.mem.hits", "cache.mem.misses"),
            ("cache.content.disk", "cache.disk.hits", "cache.disk.misses"),
            (
                "cache.content.remote",
                "cache.remote.hits",
                "cache.remote.misses",
            ),
        ];
        let mut content_traffic = false;
        for (check, hits_name, misses_name) in content_tiers {
            let hits = counter(hits_name);
            let total = hits + counter(misses_name);
            if total == 0 {
                continue;
            }
            content_traffic = true;
            push(
                check,
                HealthStatus::Ok,
                format!("{:.1}%", hits as f64 / total as f64 * 100.0),
                format!("{hits} content hits over {total} lookups"),
            );
        }
        let io_errors = counter("cache.disk.io_errors");
        let dropped = counter("cache.disk.dropped_entries");
        let disk_healthy = metrics.gauges.get("cache.disk.healthy").copied();
        if content_traffic || io_errors > 0 || dropped > 0 || disk_healthy.is_some() {
            let (status, value, detail) = if disk_healthy == Some(0) {
                (
                    HealthStatus::Critical,
                    "failing".to_owned(),
                    format!("last disk-tier operation failed ({io_errors} I/O errors)"),
                )
            } else if io_errors > 0 || dropped > 0 {
                (
                    HealthStatus::Warn,
                    "degraded".to_owned(),
                    format!("{io_errors} I/O errors, {dropped} damaged entries dropped"),
                )
            } else {
                (
                    HealthStatus::Ok,
                    "clean".to_owned(),
                    "no I/O errors, no damaged entries".to_owned(),
                )
            };
            push("cache.content.store", status, value, detail);
        }

        match analysis {
            None => push(
                "analysis.index",
                HealthStatus::Ok,
                "detached".into(),
                "no analysis index loaded".into(),
            ),
            Some(a) => {
                let behind = a.instances_total.saturating_sub(a.instances_indexed);
                let stale_status = if a.stale_instances >= t.stale_instances_warn {
                    HealthStatus::Warn
                } else {
                    HealthStatus::Ok
                };
                let status = if behind > 0 {
                    HealthStatus::Warn.max(stale_status)
                } else {
                    stale_status
                };
                push(
                    "analysis.index",
                    status,
                    format!("{}/{} indexed", a.instances_indexed, a.instances_total),
                    if behind > 0 {
                        format!(
                            "revdep index {behind} instance(s) behind; {} stale",
                            a.stale_instances
                        )
                    } else {
                        format!("index fresh; {} stale instance(s)", a.stale_instances)
                    },
                );
            }
        }

        HealthReport {
            checks,
            wall_unix_ms,
        }
    }

    /// The worst status across all checks (`Ok` for an empty report).
    pub fn overall(&self) -> HealthStatus {
        self.checks
            .iter()
            .map(|c| c.status)
            .max()
            .unwrap_or(HealthStatus::Ok)
    }

    /// Multi-line rendering for the REPL `health` command.
    pub fn render_text(&self) -> String {
        let overall = self.overall();
        let warn = self
            .checks
            .iter()
            .filter(|c| c.status == HealthStatus::Warn)
            .count();
        let critical = self
            .checks
            .iter()
            .filter(|c| c.status == HealthStatus::Critical)
            .count();
        let mut out = format!(
            "health: {} ({} checks, {warn} warn, {critical} critical)\n",
            overall.as_str(),
            self.checks.len(),
        );
        for c in &self.checks {
            out.push_str(&format!(
                "  [{:<8}] {:<20} {:<16} {}\n",
                c.status.as_str(),
                c.name,
                c.value,
                c.detail
            ));
        }
        out
    }

    /// JSON rendering for `herctrace health --json` and tests.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"status\":");
        json::push_string(&mut out, self.overall().as_str());
        out.push_str(&format!(
            ",\"wall_unix_ms\":{},\"checks\":[",
            self.wall_unix_ms
        ));
        for (i, c) in self.checks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::push_string(&mut out, &c.name);
            out.push_str(",\"status\":");
            json::push_string(&mut out, c.status.as_str());
            out.push_str(",\"value\":");
            json::push_string(&mut out, &c.value);
            out.push_str(",\"detail\":");
            json::push_string(&mut out, &c.detail);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    fn healthy_store() -> StoreHealth {
        StoreHealth {
            degraded: None,
            owner: "amber".into(),
            fencing_token: 3,
            lease_remaining_ms: Some(9_000),
            generation: 2,
            segment_chain_len: 1,
            quarantined: 0,
            recovery_bytes_discarded: 0,
        }
    }

    #[test]
    fn fresh_session_is_ok_everywhere() {
        let report = HealthReport::build(
            1_577_836_800_000,
            Some(&healthy_store()),
            Some(&AnalysisHealth {
                instances_total: 4,
                instances_indexed: 4,
                stale_instances: 0,
            }),
            &Metrics::new().snapshot(),
            &HealthThresholds::default(),
        );
        assert_eq!(report.overall(), HealthStatus::Ok);
        let text = report.render_text();
        assert!(text.starts_with("health: ok"), "{text}");
        assert!(text.contains("store.mode"));
        assert!(text.contains("writable"));
        let json = report.to_json();
        assert!(json.contains("\"status\":\"ok\""));
        assert!(json.contains("\"name\":\"store.lease\""));
    }

    #[test]
    fn detached_report_is_ok_not_unknown() {
        let report = HealthReport::build(
            0,
            None,
            None,
            &Metrics::disabled().snapshot(),
            &HealthThresholds::default(),
        );
        assert_eq!(report.overall(), HealthStatus::Ok);
        assert!(report.render_text().contains("detached"));
    }

    #[test]
    fn degraded_store_is_critical_and_quarantine_warns() {
        let mut s = healthy_store();
        s.degraded = Some("lease held by bram".into());
        s.lease_remaining_ms = None;
        s.quarantined = 2;
        let report = HealthReport::build(
            0,
            Some(&s),
            None,
            &Metrics::new().snapshot(),
            &HealthThresholds::default(),
        );
        assert_eq!(report.overall(), HealthStatus::Critical);
        let by_name = |n: &str| {
            report
                .checks
                .iter()
                .find(|c| c.name == n)
                .unwrap_or_else(|| panic!("missing check {n}"))
                .status
        };
        assert_eq!(by_name("store.mode"), HealthStatus::Critical);
        assert_eq!(by_name("store.lease"), HealthStatus::Warn);
        assert_eq!(by_name("store.quarantine"), HealthStatus::Warn);
    }

    #[test]
    fn rate_checks_guard_their_denominators() {
        // No runs at all: retry/skip checks stay ok (undefined, not 0%).
        let report = HealthReport::build(
            0,
            None,
            None,
            &Metrics::new().snapshot(),
            &HealthThresholds::default(),
        );
        assert_eq!(report.overall(), HealthStatus::Ok);

        // Heavy retries trip critical; a cold cache past the lookup
        // floor trips warn.
        let m = Metrics::new();
        m.incr("exec.runs", 40);
        m.incr("exec.retries", 25);
        m.incr("exec.cache_hits", 0);
        let report =
            HealthReport::build(0, None, None, &m.snapshot(), &HealthThresholds::default());
        let by_name = |n: &str| report.checks.iter().find(|c| c.name == n).unwrap().status;
        assert_eq!(by_name("sched.retries"), HealthStatus::Critical);
        assert_eq!(by_name("cache.hit_rate"), HealthStatus::Warn);
        assert_eq!(report.overall(), HealthStatus::Critical);
    }

    #[test]
    fn thresholds_are_configurable() {
        let m = Metrics::new();
        m.gauge_set("exec.queue_depth", 10);
        let strict = HealthThresholds {
            queue_depth_warn: 5,
            ..HealthThresholds::default()
        };
        let report = HealthReport::build(0, None, None, &m.snapshot(), &strict);
        let depth = report
            .checks
            .iter()
            .find(|c| c.name == "sched.queue_depth")
            .unwrap();
        assert_eq!(depth.status, HealthStatus::Warn);
        let lax = HealthThresholds::default();
        let report = HealthReport::build(0, None, None, &m.snapshot(), &lax);
        assert_eq!(report.overall(), HealthStatus::Ok);
    }

    #[test]
    fn content_cache_checks_follow_tier_traffic() {
        // No cache.* activity at all: no content-cache checks emitted.
        let report = HealthReport::build(
            0,
            None,
            None,
            &Metrics::new().snapshot(),
            &HealthThresholds::default(),
        );
        assert!(
            !report
                .checks
                .iter()
                .any(|c| c.name.starts_with("cache.content")),
            "absent subsystem stays silent"
        );

        // Tier traffic produces per-tier rates and a clean store check.
        let m = Metrics::new();
        m.incr("cache.mem.hits", 3);
        m.incr("cache.mem.misses", 1);
        m.incr("cache.disk.hits", 1);
        m.incr("cache.disk.misses", 1);
        m.gauge_set("cache.disk.healthy", 1);
        let report =
            HealthReport::build(0, None, None, &m.snapshot(), &HealthThresholds::default());
        let by_name = |n: &str| report.checks.iter().find(|c| c.name == n).unwrap();
        assert_eq!(by_name("cache.content.mem").value, "75.0%");
        assert_eq!(by_name("cache.content.disk").value, "50.0%");
        assert!(!report
            .checks
            .iter()
            .any(|c| c.name == "cache.content.remote"));
        assert_eq!(by_name("cache.content.store").status, HealthStatus::Ok);

        // Dropped entries warn; a failing disk tier is critical.
        m.incr("cache.disk.dropped_entries", 2);
        let report =
            HealthReport::build(0, None, None, &m.snapshot(), &HealthThresholds::default());
        let store = report
            .checks
            .iter()
            .find(|c| c.name == "cache.content.store")
            .unwrap();
        assert_eq!(store.status, HealthStatus::Warn);
        assert!(store.detail.contains("2 damaged entries dropped"));
        m.gauge_set("cache.disk.healthy", 0);
        let report =
            HealthReport::build(0, None, None, &m.snapshot(), &HealthThresholds::default());
        let store = report
            .checks
            .iter()
            .find(|c| c.name == "cache.content.store")
            .unwrap();
        assert_eq!(store.status, HealthStatus::Critical);
    }

    #[test]
    fn stale_index_warns() {
        let report = HealthReport::build(
            0,
            None,
            Some(&AnalysisHealth {
                instances_total: 10,
                instances_indexed: 7,
                stale_instances: 2,
            }),
            &Metrics::new().snapshot(),
            &HealthThresholds::default(),
        );
        let idx = report
            .checks
            .iter()
            .find(|c| c.name == "analysis.index")
            .unwrap();
        assert_eq!(idx.status, HealthStatus::Warn);
        assert!(idx.detail.contains("3 instance(s) behind"));
    }
}
