//! Chrome `trace_event` export.
//!
//! Converts a flat event stream into the JSON array format loadable by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): spans
//! become `"X"` (complete) events with microsecond `ts`/`dur`, instants
//! become `"i"` events, and span attributes ride along in `args`.

use std::collections::HashMap;

use crate::span::{json, AttrValue, EventKind, SpanId, TraceEvent};

/// Renders `events` as a Chrome `trace_event` JSON document (an object
/// with a `traceEvents` array, which both viewers accept).
///
/// Begin/End pairs are matched by span id. A Begin with no matching End
/// (the run died mid-span) is emitted with the trace's final timestamp
/// as its end, so the truncated span is still visible.
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    // End events carry closing attrs; merge them into the span's args.
    let mut ends: HashMap<SpanId, &TraceEvent> = HashMap::new();
    let mut last_ns = 0u64;
    for ev in events {
        last_ns = last_ns.max(ev.mono_ns);
        if ev.kind == EventKind::End {
            ends.insert(ev.id, ev);
        }
    }

    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for ev in events {
        match ev.kind {
            EventKind::Begin => {
                let end = ends.get(&ev.id);
                let end_ns = end.map(|e| e.mono_ns).unwrap_or(last_ns);
                let dur_us = end_ns.saturating_sub(ev.mono_ns) / 1_000;
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str("{\"ph\":\"X\",\"name\":");
                json::push_string(&mut out, &ev.name);
                out.push_str(&format!(
                    ",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
                    ev.mono_ns / 1_000,
                    dur_us.max(1),
                    ev.tid
                ));
                push_args(&mut out, ev, end.copied());
                out.push('}');
            }
            EventKind::Instant => {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str("{\"ph\":\"i\",\"s\":\"t\",\"name\":");
                json::push_string(&mut out, &ev.name);
                out.push_str(&format!(
                    ",\"ts\":{},\"pid\":1,\"tid\":{}",
                    ev.mono_ns / 1_000,
                    ev.tid
                ));
                push_args(&mut out, ev, None);
                out.push('}');
            }
            EventKind::End => {}
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

fn push_args(out: &mut String, begin: &TraceEvent, end: Option<&TraceEvent>) {
    let end_attrs: &[(String, AttrValue)] = end.map(|e| e.attrs.as_slice()).unwrap_or(&[]);
    if begin.attrs.is_empty() && end_attrs.is_empty() && begin.parent.is_none() {
        return;
    }
    out.push_str(",\"args\":{");
    let mut first = true;
    if !begin.parent.is_none() {
        out.push_str("\"parent\":");
        out.push_str(&begin.parent.0.to_string());
        first = false;
    }
    for (k, v) in begin.attrs.iter().chain(end_attrs) {
        if !first {
            out.push(',');
        }
        first = false;
        json::push_string(out, k);
        out.push(':');
        match v {
            AttrValue::Str(s) => json::push_string(out, s),
            AttrValue::Int(n) => out.push_str(&n.to_string()),
            AttrValue::UInt(n) => out.push_str(&n.to_string()),
            AttrValue::Float(f) => json::push_float(out, *f),
            AttrValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::RingBuffer;
    use crate::tracer::Tracer;
    use std::sync::Arc;

    #[test]
    fn spans_become_complete_events() {
        let ring = Arc::new(RingBuffer::new(64));
        let t = Tracer::new(ring.clone());
        let root = t.begin("execute", SpanId::NONE);
        let task = t.begin_with("task", root, |a| {
            a.str("tool", "simulate");
        });
        t.instant("retry", task, |a| {
            a.uint("attempt", 1);
        });
        t.end_with(task, |a| {
            a.bool("ok", true);
        });
        t.end(root);
        let j = to_chrome_trace(&ring.snapshot());
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.contains("\"ph\":\"X\""));
        assert!(j.contains("\"ph\":\"i\""));
        assert!(j.contains("\"tool\":\"simulate\""));
        assert!(j.contains("\"ok\":true"), "end attrs merged into args: {j}");
        assert!(j.contains("\"attempt\":1"));
        // Two X events (execute, task) and one instant.
        assert_eq!(j.matches("\"ph\":\"X\"").count(), 2);
        assert_eq!(j.matches("\"ph\":\"i\"").count(), 1);
    }

    #[test]
    fn unclosed_span_is_truncated_not_dropped() {
        let ring = Arc::new(RingBuffer::new(64));
        let t = Tracer::new(ring.clone());
        let root = t.begin("execute", SpanId::NONE);
        let _leaked = t.begin("task", root);
        t.end(root);
        let j = to_chrome_trace(&ring.snapshot());
        assert_eq!(j.matches("\"ph\":\"X\"").count(), 2);
    }
}
