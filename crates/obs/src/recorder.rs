//! The always-on flight recorder: a bounded ring of encoded telemetry
//! records awaiting a flush to the workspace sidecar.
//!
//! The recorder sits between the [`Tracer`](crate::Tracer) (which
//! fans events into it via [`MultiCollector`](crate::MultiCollector))
//! and the durable `telemetry-N.jsonl` writer that lives with the
//! workspace. It is deliberately dumb about I/O: records are encoded
//! to JSONL lines immediately (so a crash can only lose whole lines,
//! never leave half-encoded state in memory) and buffered up to a
//! byte budget; whoever owns the file drains the ring with
//! [`FlightRecorder::drain`] at command boundaries. When the budget
//! overflows the *oldest* records are evicted — after a crash the
//! interesting records are the most recent ones.
//!
//! Record kinds on the wire (one JSON object per line):
//!
//! * `"B"`/`"E"`/`"I"` — span begin/end and instant events, exactly
//!   [`TraceEvent::to_json`];
//! * `"M"` — a periodic metrics delta (see
//!   [`FlightRecorder::record_metrics_delta`]);
//! * anything else (e.g. the `"S"` session stamp) is appended by the
//!   file owner directly and never passes through the ring.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::collect::Collector;
use crate::metrics::MetricsSnapshot;
use crate::span::TraceEvent;

/// Default byte budget for the in-memory ring: enough for the last
/// few seconds of a busy session while staying invisible in RSS.
pub const DEFAULT_RECORDER_BUDGET: usize = 256 * 1024;

#[derive(Debug, Default)]
struct RecorderInner {
    lines: VecDeque<String>,
    buffered_bytes: usize,
}

/// Bounded, thread-safe ring of encoded telemetry lines.
///
/// Implements [`Collector`] so a tracer can tee span events into it;
/// metric deltas and arbitrary pre-encoded lines are pushed with the
/// inherent methods.
#[derive(Debug, Default)]
pub struct FlightRecorder {
    inner: Mutex<RecorderInner>,
    budget: usize,
    records: AtomicU64,
    dropped: AtomicU64,
}

impl FlightRecorder {
    /// A recorder with the default byte budget.
    pub fn new() -> FlightRecorder {
        FlightRecorder::with_budget(DEFAULT_RECORDER_BUDGET)
    }

    /// A recorder holding at most `budget` bytes of pending lines
    /// (at least one line is always retained, however large).
    pub fn with_budget(budget: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Mutex::new(RecorderInner::default()),
            budget: budget.max(1),
            records: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends one already-encoded JSONL line (no trailing newline),
    /// evicting the oldest lines if the byte budget overflows.
    pub fn push_line(&self, line: String) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.buffered_bytes += line.len() + 1;
        inner.lines.push_back(line);
        self.records.fetch_add(1, Ordering::Relaxed);
        while inner.buffered_bytes > self.budget && inner.lines.len() > 1 {
            if let Some(evicted) = inner.lines.pop_front() {
                inner.buffered_bytes -= evicted.len() + 1;
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Encodes a metrics delta as one `"M"` record. Quiet deltas
    /// (nothing changed since the previous export) are skipped.
    ///
    /// The timestamps mirror span events: `t` is monotonic
    /// nanoseconds, `w` wall-clock unix milliseconds.
    pub fn record_metrics_delta(&self, delta: &MetricsSnapshot, mono_ns: u64, wall_unix_ms: u64) {
        if delta.is_empty() {
            return;
        }
        let line = format!(
            "{{\"k\":\"M\",\"t\":{mono_ns},\"w\":{wall_unix_ms},\"m\":{}}}",
            delta.to_json()
        );
        self.push_line(line);
    }

    /// Takes every pending line out of the ring as newline-terminated
    /// bytes, ready to append to the sidecar. Returns an empty vec
    /// when nothing is pending.
    pub fn drain(&self) -> Vec<u8> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.lines.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(inner.buffered_bytes);
        for line in inner.lines.drain(..) {
            out.extend_from_slice(line.as_bytes());
            out.push(b'\n');
        }
        inner.buffered_bytes = 0;
        out
    }

    /// Lines currently buffered (pending a drain).
    pub fn pending(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .lines
            .len()
    }

    /// Total records ever accepted.
    pub fn records(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Records evicted unflushed because the budget overflowed.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Collector for FlightRecorder {
    fn record(&self, event: &TraceEvent) {
        self.push_line(event.to_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::{SpanId, Tracer};
    use std::sync::Arc;

    #[test]
    fn ring_buffers_span_events_and_drains_in_order() {
        let rec = Arc::new(FlightRecorder::new());
        let tracer = Tracer::new(rec.clone());
        let root = tracer.begin("execute", SpanId::NONE);
        tracer.instant("note", root, |a| {
            a.str("cause", "test");
        });
        tracer.end(root);
        assert_eq!(rec.pending(), 3);
        let bytes = rec.drain();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"k\":\"B\""));
        assert!(lines[1].contains("\"k\":\"I\""));
        assert!(lines[2].contains("\"k\":\"E\""));
        assert!(text.ends_with('\n'));
        // Drained means gone.
        assert!(rec.drain().is_empty());
        assert_eq!(rec.records(), 3);
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn budget_overflow_evicts_oldest_first() {
        let rec = FlightRecorder::with_budget(64);
        for i in 0..10 {
            rec.push_line(format!("{{\"k\":\"I\",\"seq\":{i},\"pad\":\"xxxxxxxx\"}}"));
        }
        assert!(rec.dropped() > 0);
        assert_eq!(rec.records(), 10);
        let text = String::from_utf8(rec.drain()).unwrap();
        // The newest record always survives; the oldest are gone.
        assert!(text.contains("\"seq\":9"));
        assert!(!text.contains("\"seq\":0"));
    }

    #[test]
    fn oversized_single_line_is_still_retained() {
        let rec = FlightRecorder::with_budget(8);
        rec.push_line("x".repeat(100));
        assert_eq!(rec.pending(), 1);
        assert_eq!(rec.drain().len(), 101);
    }

    #[test]
    fn metrics_delta_record_shape() {
        let rec = FlightRecorder::new();
        let m = Metrics::new();
        let before = m.snapshot();
        m.incr("exec.runs", 3);
        m.observe("exec.task_wall_ns", 1024);
        let delta = m.snapshot().delta(&before);
        rec.record_metrics_delta(&delta, 42, 1_577_836_800_123);
        // A quiet delta writes nothing.
        rec.record_metrics_delta(&MetricsSnapshot::default(), 43, 1_577_836_800_124);
        let text = String::from_utf8(rec.drain()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("{\"k\":\"M\",\"t\":42,\"w\":1577836800123,\"m\":"));
        assert!(lines[0].contains("\"exec.runs\":3"));
        assert!(lines[0].contains("\"p95\":"));
    }
}
