//! Structured observability for the Hercules reproduction: spans,
//! metrics, and post-run critical-path profiling.
//!
//! The paper's framework services (§3.3) — automatic sequencing,
//! parallel disjoint sub-flows, design-history queries — are only
//! tunable once per-step timing and provenance are first-class data.
//! This crate supplies the substrate:
//!
//! * [`TraceEvent`] / [`SpanId`] — spans with ids, parents, monotonic
//!   *and* wall-clock timestamps, a thread lane, and typed attributes;
//! * [`Tracer`] — a cheap, clonable, thread-safe handle that allocates
//!   span ids and emits events; a disabled tracer is a few branch
//!   instructions per call site, so instrumentation can stay threaded
//!   through release builds;
//! * [`Collector`] — the pluggable sink trait, with a bounded
//!   [`RingBuffer`], a [`JsonlSink`] for streaming to disk, a
//!   [`MultiCollector`] fan-out, and [`chrome::to_chrome_trace`] for
//!   `about://tracing` / Perfetto-loadable `trace_event` JSON;
//! * [`Metrics`] — a registry of counters, gauges, and histograms with
//!   fixed log₂ bucket boundaries (reproducible across runs, mergeable
//!   across processes);
//! * [`FlightRecorder`] — a bounded ring of encoded telemetry lines
//!   (spans, instants, metric deltas) feeding the durable
//!   `telemetry-N.jsonl` workspace sidecar;
//! * [`HealthReport`] — typed ok/warn/critical aggregation of store,
//!   scheduler, cache, and analysis-index signals under configurable
//!   [`HealthThresholds`];
//! * [`render_prometheus`] — one-shot Prometheus text exposition of a
//!   metrics snapshot;
//! * [`profile`] — reconstructs the span tree, derives the task DAG
//!   from span attributes, and reports the critical path, achieved
//!   parallelism, and per-task self/total time.
//!
//! The crate has **zero dependencies** by design: every other Hercules
//! crate can link it without cycles, and its hand-rolled JSON encoder
//! keeps the JSONL and Chrome sinks available even in minimal builds.
//!
//! # Examples
//!
//! ```
//! use hercules_obs::{profile, RingBuffer, Tracer};
//! use std::sync::Arc;
//!
//! let ring = Arc::new(RingBuffer::new(1024));
//! let tracer = Tracer::new(ring.clone());
//! let root = tracer.begin("execute", hercules_obs::SpanId::NONE);
//! let task = tracer.begin_with("task", root, |a| {
//!     a.str("outputs", "n1");
//!     a.str("inputs", "n0");
//! });
//! tracer.end(task);
//! tracer.end(root);
//! let spans = profile::build_spans(&ring.snapshot());
//! assert_eq!(spans.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
mod collect;
mod export;
mod health;
mod metrics;
pub mod names;
pub mod profile;
mod recorder;
mod span;
mod tracer;

pub use collect::{Collector, JsonlSink, MultiCollector, NullCollector, RingBuffer};
pub use export::render_prometheus;
pub use health::{
    AnalysisHealth, HealthCheck, HealthReport, HealthStatus, HealthThresholds, StoreHealth,
};
pub use metrics::{HistogramSnapshot, Metrics, MetricsSnapshot};
pub use recorder::{FlightRecorder, DEFAULT_RECORDER_BUDGET};
pub use span::{AttrList, AttrValue, EventKind, SpanId, TraceEvent};
pub use tracer::{RealTime, TimeSource, Tracer};
