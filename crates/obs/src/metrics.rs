//! Metrics registry: counters, gauges, and log₂-bucket histograms.
//!
//! Histogram bucket boundaries are fixed powers of two, so snapshots
//! from different runs (or different processes) line up exactly and can
//! be merged by summing buckets — no configuration to drift.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::span::json;

/// Number of histogram buckets. Bucket `i` holds values `v` with
/// `floor(log2(v)) == i - 1` (bucket 0 holds zero); the last bucket is
/// a catch-all for anything ≥ 2^62.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Returns the bucket index for a value: 0 for 0, else
/// `min(64 - leading_zeros(v), HISTOGRAM_BUCKETS - 1)`.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `i` (0, 1, 2, 4, 8, …).
pub fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

#[derive(Debug, Default, Clone)]
struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    fn observe(&mut self, value: u64) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; HISTOGRAM_BUCKETS];
        }
        self.buckets[bucket_index(value)] += 1;
        if self.count == 0 || value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }
}

#[derive(Debug, Default)]
struct MetricsInner {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, i64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// A clonable, thread-safe metrics handle. Like [`Tracer`], a disabled
/// handle ([`Metrics::disabled`]) reduces every call to one branch.
///
/// [`Tracer`]: crate::Tracer
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Option<Arc<MetricsInner>>,
}

impl Metrics {
    /// A live registry.
    pub fn new() -> Metrics {
        Metrics {
            inner: Some(Arc::new(MetricsInner::default())),
        }
    }

    /// The no-op registry.
    pub fn disabled() -> Metrics {
        Metrics { inner: None }
    }

    /// Returns `true` when observations are recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `delta` to the counter `name`.
    pub fn incr(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            let mut counters = inner.counters.lock().unwrap_or_else(|e| e.into_inner());
            *counters.entry(name.to_owned()).or_insert(0) += delta;
        }
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: i64) {
        if let Some(inner) = &self.inner {
            let mut gauges = inner.gauges.lock().unwrap_or_else(|e| e.into_inner());
            gauges.insert(name.to_owned(), value);
        }
    }

    /// Records one observation into the histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            let mut hists = inner.histograms.lock().unwrap_or_else(|e| e.into_inner());
            hists.entry(name.to_owned()).or_default().observe(value);
        }
    }

    /// Records a duration into the histogram `name` in nanoseconds.
    pub fn observe_duration(&self, name: &str, duration: std::time::Duration) {
        if self.inner.is_some() {
            self.observe(name, duration.as_nanos() as u64);
        }
    }

    /// Takes a consistent point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let counters = inner
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        let gauges = inner
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        let histograms = inner
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, h)| {
                (
                    name.clone(),
                    HistogramSnapshot {
                        count: h.count,
                        sum: h.sum,
                        min: h.min,
                        max: h.max,
                        buckets: h.buckets.clone(),
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
    /// Smallest observed value (0 if empty).
    pub min: u64,
    /// Largest observed value (0 if empty).
    pub max: u64,
    /// Per-bucket counts (see [`bucket_index`]); empty if no
    /// observations.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean of observed values, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in 0..=1): the floor of the bucket
    /// holding the q-th observation. Exact at bucket boundaries, a
    /// lower bound inside a bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_floor(i);
            }
        }
        self.max
    }
}

/// Point-in-time copy of every metric in a registry.
#[derive(Debug, Default, Clone)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Returns `true` when no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The change from `prev` to `self`, for periodic telemetry export.
    ///
    /// Counters and histogram bucket/count/sum values subtract
    /// (saturating, so a registry swapped underneath us yields zeros
    /// rather than garbage); entries whose delta is zero are omitted.
    /// Gauges are levels, not rates, so the current value is reported
    /// whenever it changed (or is new). Histogram `min`/`max` in a
    /// delta are cumulative — buckets do not retain enough information
    /// to recover the window extremes — which keeps quantiles of the
    /// delta'd buckets exact while extremes stay lifetime-wide.
    pub fn delta(&self, prev: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for (name, &cur) in &self.counters {
            let d = cur.saturating_sub(prev.counters.get(name).copied().unwrap_or(0));
            if d != 0 {
                out.counters.insert(name.clone(), d);
            }
        }
        for (name, &cur) in &self.gauges {
            if prev.gauges.get(name) != Some(&cur) {
                out.gauges.insert(name.clone(), cur);
            }
        }
        for (name, cur) in &self.histograms {
            let base = prev.histograms.get(name);
            let prev_count = base.map(|h| h.count).unwrap_or(0);
            let d_count = cur.count.saturating_sub(prev_count);
            if d_count == 0 {
                continue;
            }
            let mut buckets = cur.buckets.clone();
            if let Some(base) = base {
                for (i, b) in buckets.iter_mut().enumerate() {
                    *b = b.saturating_sub(base.buckets.get(i).copied().unwrap_or(0));
                }
            }
            out.histograms.insert(
                name.clone(),
                HistogramSnapshot {
                    count: d_count,
                    sum: cur.sum.saturating_sub(base.map(|h| h.sum).unwrap_or(0)),
                    min: cur.min,
                    max: cur.max,
                    buckets,
                },
            );
        }
        out
    }

    /// Human-readable multi-line rendering (the REPL `stats` command).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("no metrics recorded\n");
            return out;
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<40} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<40} {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {name:<40} n={} mean={:.0} p50={} p95={} p99={} min={} max={}\n",
                    h.count,
                    h.mean(),
                    h.quantile(0.5),
                    h.quantile(0.95),
                    h.quantile(0.99),
                    h.min,
                    h.max,
                ));
            }
        }
        out
    }

    /// JSON object rendering (for `BENCH_exec.json` and tooling).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_string(&mut out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_string(&mut out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_string(&mut out, name);
            out.push_str(&format!(
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":",
                h.count, h.sum, h.min, h.max
            ));
            json::push_float(&mut out, h.mean());
            out.push_str(&format!(
                ",\"p50\":{},\"p95\":{},\"p99\":{}}}",
                h.quantile(0.5),
                h.quantile(0.95),
                h.quantile(0.99)
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Floors invert the index at exact powers of two.
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_floor(i)), i, "floor of bucket {i}");
        }
    }

    #[test]
    fn histogram_stats_and_quantiles() {
        let m = Metrics::new();
        for v in [1u64, 2, 3, 4, 100] {
            m.observe("lat", v);
        }
        let snap = m.snapshot();
        let h = &snap.histograms["lat"];
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 110);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 100);
        assert!((h.mean() - 22.0).abs() < 1e-9);
        // p50 = 3rd of 5 observations, which lives in the [2,4) bucket.
        assert_eq!(h.quantile(0.5), 2);
        // p99 lands on the last observation's bucket floor (64 ≤ 100).
        assert_eq!(h.quantile(0.99), 64);
        assert_eq!(h.quantile(0.0), 1);
    }

    #[test]
    fn quantile_edge_cases() {
        // Empty histogram: every quantile (and the extremes) is zero.
        let empty = HistogramSnapshot::default();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(empty.quantile(q), 0, "empty histogram at q={q}");
        }

        // Single observation: q=0.0 and q=1.0 both land on its bucket
        // floor, and out-of-range q values clamp instead of panicking.
        let m = Metrics::new();
        m.observe("one", 5);
        let h = m.snapshot().histograms["one"].clone();
        assert_eq!(h.quantile(0.0), 4);
        assert_eq!(h.quantile(1.0), 4);
        assert_eq!(h.quantile(-3.0), 4);
        assert_eq!(h.quantile(7.0), 4);

        // Everything in one bucket: all quantiles agree on its floor.
        let m = Metrics::new();
        for v in [16u64, 17, 20, 31] {
            m.observe("bucketed", v);
        }
        let h = m.snapshot().histograms["bucketed"].clone();
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 16, "single-bucket at q={q}");
        }

        // Saturating top bucket: u64::MAX lands in the catch-all last
        // bucket, whose floor is still a valid (huge) lower bound, and
        // q=1.0 walks off the end to the recorded max.
        let m = Metrics::new();
        m.observe("sat", 1);
        m.observe("sat", u64::MAX);
        let h = m.snapshot().histograms["sat"].clone();
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(1.0), bucket_floor(HISTOGRAM_BUCKETS - 1));
        assert_eq!(h.max, u64::MAX);
        // Sum saturates rather than wrapping.
        assert_eq!(h.sum, u64::MAX);
    }

    #[test]
    fn snapshot_delta_between_two_snapshots() {
        let m = Metrics::new();
        m.incr("ops", 10);
        m.gauge_set("depth", 3);
        m.gauge_set("steady", 7);
        m.observe("lat", 8);
        m.observe("lat", 9);
        let first = m.snapshot();

        m.incr("ops", 5);
        m.incr("fresh", 2);
        m.gauge_set("depth", 1);
        m.observe("lat", 100);
        m.observe("new_lat", 4);
        let second = m.snapshot();

        let d = second.delta(&first);
        // Counters subtract; unchanged ones vanish; new ones appear.
        assert_eq!(d.counters.get("ops"), Some(&5));
        assert_eq!(d.counters.get("fresh"), Some(&2));
        // Gauges report the current level only when it moved.
        assert_eq!(d.gauges.get("depth"), Some(&1));
        assert_eq!(d.gauges.get("steady"), None);
        // Histogram deltas carry only the window's observations.
        let lat = &d.histograms["lat"];
        assert_eq!(lat.count, 1);
        assert_eq!(lat.sum, 100);
        assert_eq!(lat.quantile(0.5), 64);
        // min/max stay cumulative (documented on `delta`).
        assert_eq!(lat.min, 8);
        assert_eq!(lat.max, 100);
        let fresh_h = &d.histograms["new_lat"];
        assert_eq!(fresh_h.count, 1);
        assert_eq!(fresh_h.quantile(1.0), 4);
        // A quiet histogram is omitted entirely.
        let third = m.snapshot();
        let quiet = third.delta(&second);
        assert!(quiet.is_empty());
        // Delta against self is empty; delta against default is self-like.
        assert!(second.delta(&second).is_empty());
        let full = second.delta(&MetricsSnapshot::default());
        assert_eq!(full.counters.get("ops"), Some(&15));
        assert_eq!(full.histograms["lat"].count, 3);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let m = Metrics::disabled();
        m.incr("c", 1);
        m.gauge_set("g", 5);
        m.observe("h", 10);
        let snap = m.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert_eq!(snap.render_text(), "no metrics recorded\n");
    }

    #[test]
    fn counters_gauges_and_json_shape() {
        let m = Metrics::new();
        m.incr("tasks", 2);
        m.incr("tasks", 3);
        m.gauge_set("workers", 4);
        m.gauge_set("workers", 8);
        m.observe("lat", 5);
        let snap = m.snapshot();
        assert_eq!(snap.counters["tasks"], 5);
        assert_eq!(snap.gauges["workers"], 8);
        let j = snap.to_json();
        assert!(j.contains("\"tasks\":5"));
        assert!(j.contains("\"workers\":8"));
        assert!(j.contains("\"count\":1"));
        let text = snap.render_text();
        assert!(text.contains("tasks"));
        assert!(text.contains("workers"));
        assert!(text.contains("lat"));
    }
}
