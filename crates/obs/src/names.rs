//! Well-known metric names emitted by the Hercules crates.
//!
//! [`Metrics`](crate::Metrics) is schemaless — any call site can mint
//! a counter by name — which is convenient right up until a dashboard
//! or test greps for a name that a refactor quietly changed. The
//! store-hardening family below is load-bearing (CI's scrub job and
//! the REPL surface them), so the names live here as constants and
//! the emit sites reference them instead of repeating string literals.
//!
//! All store metrics share the `store.` prefix; see each constant for
//! the semantics and the instrument kind (counter vs histogram).

/// Counter: completed [`scrub`](https://en.wikipedia.org/wiki/Data_scrubbing)
/// passes — every-byte CRC verification of the checkpoint and every
/// journal segment. Incremented once per scan, damaged or not.
pub const STORE_SCRUBS: &str = "store.scrubs";

/// Counter: scrub passes that found damage (rot, torn frames, or an
/// unreadable segment). `store.scrubs - store.scrub_damage` is the
/// clean-scan count.
pub const STORE_SCRUB_DAMAGE: &str = "store.scrub_damage";

/// Counter: journal segment rotations — the active segment reached
/// its size bound and a new numbered segment was opened and added to
/// the MANIFEST chain.
pub const STORE_SEGMENT_ROLLS: &str = "store.segment_rolls";

/// Histogram: bytes moved aside into `*.quarantined-<k>` files by a
/// recovery or scrub, one observation per quarantined region. Damage
/// is preserved for forensics, never silently dropped.
pub const STORE_QUARANTINED_BYTES: &str = "store.quarantined_bytes";

/// Counter: lease renewals — the writer re-asserted ownership by
/// rewriting the LEASE file with a fresh expiry.
pub const STORE_LEASE_RENEWALS: &str = "store.lease_renewals";

/// Counter: mutations rejected because this handle was fenced out by
/// a newer writer's takeover (its fencing token is no longer the
/// highest). A deposed writer increments this on every attempt.
pub const STORE_FENCED_WRITES: &str = "store.fenced_writes";

/// Counter: workspace opens that landed in degraded read-only mode —
/// a live foreign lease or unrepaired damage kept the store browsable
/// but immutable.
pub const STORE_DEGRADED_OPENS: &str = "store.degraded_opens";

/// Counter: queued group-commit batches discarded unflushed because
/// the handle lost its lease before the flusher drained them.
pub const STORE_GROUP_DISCARDED_BATCHES: &str = "store.group_discarded_batches";

#[cfg(test)]
mod tests {
    #[test]
    fn names_are_prefixed_and_distinct() {
        let all = [
            super::STORE_SCRUBS,
            super::STORE_SCRUB_DAMAGE,
            super::STORE_SEGMENT_ROLLS,
            super::STORE_QUARANTINED_BYTES,
            super::STORE_LEASE_RENEWALS,
            super::STORE_FENCED_WRITES,
            super::STORE_DEGRADED_OPENS,
            super::STORE_GROUP_DISCARDED_BATCHES,
        ];
        for (i, name) in all.iter().enumerate() {
            assert!(name.starts_with("store."), "{name} must be store-scoped");
            assert!(
                !all[..i].contains(name),
                "{name} registered twice in the well-known list"
            );
        }
    }
}
