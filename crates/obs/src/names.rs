//! Well-known metric names emitted by the Hercules crates.
//!
//! [`Metrics`](crate::Metrics) is schemaless — any call site can mint
//! a counter by name — which is convenient right up until a dashboard
//! or test greps for a name that a refactor quietly changed. The
//! store-hardening family below is load-bearing (CI's scrub job and
//! the REPL surface them), so the names live here as constants and
//! the emit sites reference them instead of repeating string literals.
//!
//! Names are grouped into families by prefix — `store.` for the
//! durable workspace, `telemetry.` for the flight recorder,
//! `health.` for the aggregated health model, and `analyze.` for the
//! lint/index layer — see each constant for the semantics and the
//! instrument kind (counter vs gauge vs histogram).

/// Counter: completed [`scrub`](https://en.wikipedia.org/wiki/Data_scrubbing)
/// passes — every-byte CRC verification of the checkpoint and every
/// journal segment. Incremented once per scan, damaged or not.
pub const STORE_SCRUBS: &str = "store.scrubs";

/// Counter: scrub passes that found damage (rot, torn frames, or an
/// unreadable segment). `store.scrubs - store.scrub_damage` is the
/// clean-scan count.
pub const STORE_SCRUB_DAMAGE: &str = "store.scrub_damage";

/// Counter: journal segment rotations — the active segment reached
/// its size bound and a new numbered segment was opened and added to
/// the MANIFEST chain.
pub const STORE_SEGMENT_ROLLS: &str = "store.segment_rolls";

/// Histogram: bytes moved aside into `*.quarantined-<k>` files by a
/// recovery or scrub, one observation per quarantined region. Damage
/// is preserved for forensics, never silently dropped.
pub const STORE_QUARANTINED_BYTES: &str = "store.quarantined_bytes";

/// Counter: lease renewals — the writer re-asserted ownership by
/// rewriting the LEASE file with a fresh expiry.
pub const STORE_LEASE_RENEWALS: &str = "store.lease_renewals";

/// Counter: mutations rejected because this handle was fenced out by
/// a newer writer's takeover (its fencing token is no longer the
/// highest). A deposed writer increments this on every attempt.
pub const STORE_FENCED_WRITES: &str = "store.fenced_writes";

/// Counter: workspace opens that landed in degraded read-only mode —
/// a live foreign lease or unrepaired damage kept the store browsable
/// but immutable.
pub const STORE_DEGRADED_OPENS: &str = "store.degraded_opens";

/// Counter: queued group-commit batches discarded unflushed because
/// the handle lost its lease before the flusher drained them.
pub const STORE_GROUP_DISCARDED_BATCHES: &str = "store.group_discarded_batches";

/// Counter: stale-lease takeovers — an open found a foreign lease
/// already expired and fenced the previous writer out by bumping the
/// fencing token past it.
pub const STORE_LEASE_TAKEOVERS: &str = "store.lease_takeovers";

/// Counter: bytes CRC-verified by scrub passes across checkpoint and
/// journal segments (damaged or not).
pub const STORE_SCRUB_BYTES: &str = "store.scrub_bytes";

/// Counter: records accepted by the flight-recorder ring (spans,
/// instants, metric deltas, and session stamps alike).
pub const TELEMETRY_RECORDS: &str = "telemetry.records";

/// Counter: records evicted from the flight-recorder ring before a
/// flush could persist them (the ring is bounded by bytes; sustained
/// bursts overwrite the oldest records first).
pub const TELEMETRY_DROPPED_RECORDS: &str = "telemetry.dropped_records";

/// Counter: flushes of the flight-recorder ring into the workspace
/// `telemetry-N.jsonl` sidecar.
pub const TELEMETRY_FLUSHES: &str = "telemetry.flushes";

/// Counter: bytes appended to telemetry sidecar files.
pub const TELEMETRY_BYTES: &str = "telemetry.bytes";

/// Counter: telemetry sidecar rotations — the active `telemetry-N`
/// file reached its size bound and a new numbered file was opened.
pub const TELEMETRY_ROTATIONS: &str = "telemetry.rotations";

/// Counter: telemetry writes swallowed because the sidecar could not
/// be written. Telemetry is best-effort by design: a dying disk must
/// never take the session down on the observability path.
pub const TELEMETRY_WRITE_ERRORS: &str = "telemetry.write_errors";

/// Counter: periodic `MetricsSnapshot` delta records exported into
/// the telemetry stream.
pub const TELEMETRY_METRIC_EXPORTS: &str = "telemetry.metric_exports";

/// Counter: health reports computed (REPL `health` or
/// `herctrace health`).
pub const HEALTH_CHECKS: &str = "health.checks";

/// Gauge: latest overall health status — 0 ok, 1 warn, 2 critical.
pub const HEALTH_STATUS: &str = "health.status";

/// Histogram: wall nanoseconds per whole-history lint run (full or
/// incremental), one observation per REPL `lint`/`stale`.
pub const ANALYZE_LINT_NS: &str = "analyze.lint_ns";

/// Histogram-name prefix: wall nanoseconds per individual lint pass.
/// The full metric name appends the lowercased pass code, e.g.
/// `analyze.pass_ns.hl0102` — one histogram per pass, one observation
/// per run of that pass.
pub const ANALYZE_PASS_NS: &str = "analyze.pass_ns";

/// Histogram: instances actually analyzed per lint run — the full
/// instance count for a full lint, the dirty cone for an incremental
/// one.
pub const ANALYZE_CONE_INSTANCES: &str = "analyze.cone_instances";

/// Histogram: rerun-set size per retrace-cone prediction (REPL
/// `stale` and HL0503).
pub const ANALYZE_RETRACE_RERUN: &str = "analyze.retrace_rerun";

/// Counter: revdep-index reuses — an `open` or incremental lint found
/// the persisted/cached index fingerprint-valid and skipped the
/// rebuild.
pub const ANALYZE_INDEX_HITS: &str = "analyze.index_hits";

/// Counter: revdep-index rebuilds from scratch (no sidecar, stale
/// fingerprint, or watermark ahead of the database).
pub const ANALYZE_INDEX_REBUILDS: &str = "analyze.index_rebuilds";

/// Counter: content-cache lookups answered by the in-memory tier.
pub const CACHE_MEM_HITS: &str = "cache.mem.hits";

/// Counter: content-cache lookups the in-memory tier could not answer
/// (the lookup falls through to the disk tier, when one is attached).
pub const CACHE_MEM_MISSES: &str = "cache.mem.misses";

/// Gauge: entries currently resident in the in-memory tier.
pub const CACHE_MEM_ENTRIES: &str = "cache.mem.entries";

/// Histogram: wall nanoseconds per in-memory tier probe.
pub const CACHE_MEM_LOOKUP_NS: &str = "cache.mem.lookup_ns";

/// Counter: content-cache lookups answered by the on-disk tier.
pub const CACHE_DISK_HITS: &str = "cache.disk.hits";

/// Counter: on-disk tier probes that found no (valid) entry.
pub const CACHE_DISK_MISSES: &str = "cache.disk.misses";

/// Histogram: wall nanoseconds per on-disk tier probe (read + CRC
/// validation + decode).
pub const CACHE_DISK_LOOKUP_NS: &str = "cache.disk.lookup_ns";

/// Counter: on-disk entries dropped because validation failed — a
/// torn write, bit rot, or a key/entry mismatch. Dropped entries are
/// deleted and reported as misses, never served.
pub const CACHE_DISK_DROPPED: &str = "cache.disk.dropped_entries";

/// Counter: I/O errors on the on-disk tier's lookup or write-back
/// path. The cache is best-effort: errors degrade it to a smaller
/// cache, they never fail the execution.
pub const CACHE_DISK_IO_ERRORS: &str = "cache.disk.io_errors";

/// Gauge: entries currently stored by the on-disk tier.
pub const CACHE_DISK_ENTRIES: &str = "cache.disk.entries";

/// Gauge: bytes currently stored by the on-disk tier.
pub const CACHE_DISK_BYTES: &str = "cache.disk.bytes";

/// Gauge: on-disk tier health — 1 while lookups and write-backs
/// succeed, 0 after any I/O error until a later operation succeeds.
pub const CACHE_DISK_HEALTHY: &str = "cache.disk.healthy";

/// Counter: content-cache lookups answered by the remote tier.
pub const CACHE_REMOTE_HITS: &str = "cache.remote.hits";

/// Counter: remote tier probes that found no (valid) entry.
pub const CACHE_REMOTE_MISSES: &str = "cache.remote.misses";

/// Counter: remote tier fetch/store failures (timeouts, injected
/// faults, unreachable backends). Best-effort, like the disk tier.
pub const CACHE_REMOTE_ERRORS: &str = "cache.remote.errors";

/// Histogram: wall nanoseconds per remote tier probe — under an
/// injected-latency test remote this is where the degradation shows.
pub const CACHE_REMOTE_LOOKUP_NS: &str = "cache.remote.lookup_ns";

/// Counter: entries inserted into the cache (one per produced tool
/// run that was written back, whatever tiers it reached).
pub const CACHE_INSERTS: &str = "cache.inserts";

/// Histogram: wall nanoseconds per write-back (disk + remote store).
/// In the real environment write-backs run on a background thread, so
/// this measures cache work, not executor hot-path stalls.
pub const CACHE_WRITEBACK_NS: &str = "cache.writeback_ns";

/// Counter: size-budget GC passes over the on-disk tier.
pub const CACHE_GC_RUNS: &str = "cache.gc_runs";

/// Counter: entries evicted by GC passes (oldest first).
pub const CACHE_GC_EVICTED: &str = "cache.gc_evicted";

#[cfg(test)]
mod tests {
    /// Every well-known name, paired with its required family prefix.
    /// New constants must be added here; the drift test below keeps
    /// the list honest.
    const ALL: &[(&str, &str)] = &[
        (super::STORE_SCRUBS, "store."),
        (super::STORE_SCRUB_DAMAGE, "store."),
        (super::STORE_SEGMENT_ROLLS, "store."),
        (super::STORE_QUARANTINED_BYTES, "store."),
        (super::STORE_LEASE_RENEWALS, "store."),
        (super::STORE_FENCED_WRITES, "store."),
        (super::STORE_DEGRADED_OPENS, "store."),
        (super::STORE_GROUP_DISCARDED_BATCHES, "store."),
        (super::STORE_LEASE_TAKEOVERS, "store."),
        (super::STORE_SCRUB_BYTES, "store."),
        (super::TELEMETRY_RECORDS, "telemetry."),
        (super::TELEMETRY_DROPPED_RECORDS, "telemetry."),
        (super::TELEMETRY_FLUSHES, "telemetry."),
        (super::TELEMETRY_BYTES, "telemetry."),
        (super::TELEMETRY_ROTATIONS, "telemetry."),
        (super::TELEMETRY_WRITE_ERRORS, "telemetry."),
        (super::TELEMETRY_METRIC_EXPORTS, "telemetry."),
        (super::HEALTH_CHECKS, "health."),
        (super::HEALTH_STATUS, "health."),
        (super::ANALYZE_LINT_NS, "analyze."),
        (super::ANALYZE_PASS_NS, "analyze."),
        (super::ANALYZE_CONE_INSTANCES, "analyze."),
        (super::ANALYZE_RETRACE_RERUN, "analyze."),
        (super::ANALYZE_INDEX_HITS, "analyze."),
        (super::ANALYZE_INDEX_REBUILDS, "analyze."),
        (super::CACHE_MEM_HITS, "cache."),
        (super::CACHE_MEM_MISSES, "cache."),
        (super::CACHE_MEM_ENTRIES, "cache."),
        (super::CACHE_MEM_LOOKUP_NS, "cache."),
        (super::CACHE_DISK_HITS, "cache."),
        (super::CACHE_DISK_MISSES, "cache."),
        (super::CACHE_DISK_LOOKUP_NS, "cache."),
        (super::CACHE_DISK_DROPPED, "cache."),
        (super::CACHE_DISK_IO_ERRORS, "cache."),
        (super::CACHE_DISK_ENTRIES, "cache."),
        (super::CACHE_DISK_BYTES, "cache."),
        (super::CACHE_DISK_HEALTHY, "cache."),
        (super::CACHE_REMOTE_HITS, "cache."),
        (super::CACHE_REMOTE_MISSES, "cache."),
        (super::CACHE_REMOTE_ERRORS, "cache."),
        (super::CACHE_REMOTE_LOOKUP_NS, "cache."),
        (super::CACHE_INSERTS, "cache."),
        (super::CACHE_WRITEBACK_NS, "cache."),
        (super::CACHE_GC_RUNS, "cache."),
        (super::CACHE_GC_EVICTED, "cache."),
    ];

    #[test]
    fn names_are_prefixed_and_distinct() {
        for (i, (name, family)) in ALL.iter().enumerate() {
            assert!(
                name.starts_with(family),
                "{name} must live in the {family} family"
            );
            assert!(
                name.len() > family.len(),
                "{name} must have a member name after the family prefix"
            );
            assert!(
                !ALL[..i].iter().any(|(n, _)| n == name),
                "{name} registered twice in the well-known list"
            );
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "{name} must be lowercase dotted snake_case"
            );
        }
    }
}
