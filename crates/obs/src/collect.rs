//! Collectors: pluggable sinks for trace events.

use std::io::Write;
use std::sync::{Arc, Mutex};

use crate::span::TraceEvent;

/// A sink for trace events. Implementations must be cheap and
/// non-blocking-ish: they run inline on the executing (possibly worker)
/// thread.
pub trait Collector: Send + Sync {
    /// Records one event.
    fn record(&self, event: &TraceEvent);
}

/// Discards everything (useful as an explicit "measure the overhead of
/// the hooks themselves" baseline; prefer [`Tracer::disabled`]
/// otherwise).
///
/// [`Tracer::disabled`]: crate::Tracer::disabled
#[derive(Debug, Default, Clone, Copy)]
pub struct NullCollector;

impl Collector for NullCollector {
    fn record(&self, _event: &TraceEvent) {}
}

/// A bounded in-memory buffer keeping the most recent events. The
/// default sink for interactive sessions: `trace`/`profile` commands
/// read a snapshot, old events age out instead of growing without
/// bound.
#[derive(Debug)]
pub struct RingBuffer {
    capacity: usize,
    events: Mutex<std::collections::VecDeque<TraceEvent>>,
    dropped: Mutex<u64>,
}

impl RingBuffer {
    /// A ring keeping at most `capacity` events (clamped to ≥ 16).
    pub fn new(capacity: usize) -> RingBuffer {
        let capacity = capacity.max(16);
        RingBuffer {
            capacity,
            events: Mutex::new(std::collections::VecDeque::with_capacity(
                capacity.min(1024),
            )),
            dropped: Mutex::new(0),
        }
    }

    /// Copies out the buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        *self.dropped.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Empties the ring (the `trace clear` of a long session).
    pub fn clear(&self) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

impl Collector for RingBuffer {
    fn record(&self, event: &TraceEvent) {
        let mut events = self.events.lock().unwrap_or_else(|e| e.into_inner());
        if events.len() == self.capacity {
            events.pop_front();
            *self.dropped.lock().unwrap_or_else(|e| e.into_inner()) += 1;
        }
        events.push_back(event.clone());
    }
}

/// Streams events as JSON Lines to any writer (a file, a pipe, a
/// `Vec<u8>` in tests). Each event is one line; a torn final line — the
/// process died mid-write — is detectable by the missing newline.
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink {
            writer: Mutex::new(writer),
        }
    }

    /// Flushes and returns the writer.
    pub fn into_inner(self) -> W {
        let mut w = self.writer.into_inner().unwrap_or_else(|e| e.into_inner());
        let _ = w.flush();
        w
    }
}

impl<W: Write + Send> Collector for JsonlSink<W> {
    fn record(&self, event: &TraceEvent) {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        // A full disk must not take the execution down with it; the
        // trace just ends early.
        let _ = writeln!(w, "{}", event.to_json());
    }
}

/// Fans every event out to several collectors (e.g. ring buffer for the
/// REPL plus a JSONL file for later analysis).
#[derive(Clone)]
pub struct MultiCollector {
    sinks: Vec<Arc<dyn Collector>>,
}

impl MultiCollector {
    /// Builds a fan-out over `sinks`.
    pub fn new(sinks: Vec<Arc<dyn Collector>>) -> MultiCollector {
        MultiCollector { sinks }
    }
}

impl Collector for MultiCollector {
    fn record(&self, event: &TraceEvent) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{EventKind, SpanId};

    fn ev(n: u64) -> TraceEvent {
        TraceEvent {
            kind: EventKind::Instant,
            id: SpanId(n),
            parent: SpanId::NONE,
            name: format!("e{n}"),
            mono_ns: n,
            wall_unix_ms: n,
            tid: 0,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let ring = RingBuffer::new(16);
        for n in 0..20 {
            ring.record(&ev(n));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 16);
        assert_eq!(snap[0].id, SpanId(4), "oldest evicted first");
        assert_eq!(ring.dropped(), 4);
        ring.clear();
        assert!(ring.snapshot().is_empty());
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        let sink = JsonlSink::new(Vec::new());
        sink.record(&ev(1));
        sink.record(&ev(2));
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).expect("utf8");
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn multi_fans_out() {
        let a = Arc::new(RingBuffer::new(16));
        let b = Arc::new(RingBuffer::new(16));
        let multi = MultiCollector::new(vec![a.clone(), b.clone()]);
        multi.record(&ev(7));
        assert_eq!(a.snapshot().len(), 1);
        assert_eq!(b.snapshot().len(), 1);
        NullCollector.record(&ev(8));
    }
}
