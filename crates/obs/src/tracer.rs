//! The tracer: span-id allocation, the monotonic/wall clock pair, and
//! event emission.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::collect::Collector;
use crate::span::{AttrList, EventKind, SpanId, TraceEvent};

/// Where a tracer's timestamps come from.
///
/// The two clocks are tied together by construction:
/// `wall_unix_ms = epoch_wall_ms() + mono_ns() / 1e6`, so they can
/// never disagree within one trace. The default ([`RealTime`]) reads
/// the machine clocks; a simulation harness can substitute a virtual
/// clock via [`Tracer::with_time_source`] so traces replay
/// byte-identically from a seed.
pub trait TimeSource: Send + Sync {
    /// Monotonic nanoseconds since this source's epoch.
    fn mono_ns(&self) -> u64;
    /// The wall-clock reading (Unix milliseconds) at that epoch.
    fn epoch_wall_ms(&self) -> u64;
}

/// The default [`TimeSource`]: machine monotonic + wall clocks,
/// with the epoch captured at construction.
pub struct RealTime {
    epoch: Instant,
    epoch_wall_ms: u64,
}

impl RealTime {
    /// Captures both clocks now.
    pub fn new() -> RealTime {
        let epoch_wall_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        RealTime {
            epoch: Instant::now(),
            epoch_wall_ms,
        }
    }
}

impl Default for RealTime {
    fn default() -> RealTime {
        RealTime::new()
    }
}

impl TimeSource for RealTime {
    fn mono_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn epoch_wall_ms(&self) -> u64 {
        self.epoch_wall_ms
    }
}

struct TracerInner {
    /// Both clocks: monotonic offset plus the wall epoch it is
    /// measured against.
    time: Arc<dyn TimeSource>,
    next_id: AtomicU64,
    collector: Arc<dyn Collector>,
    /// Compact per-thread lanes for trace viewers: first thread seen
    /// gets lane 0, the next lane 1, and so on.
    lanes: Mutex<HashMap<ThreadId, u64>>,
}

/// A clonable, thread-safe tracing handle.
///
/// A disabled tracer ([`Tracer::disabled`]) reduces every call to a
/// branch on an `Option`, so instrumented code pays nothing when
/// tracing is off — the hooks stay compiled into release builds.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(inner) => f
                .debug_struct("Tracer")
                .field("next_id", &inner.next_id.load(Ordering::Relaxed))
                .finish_non_exhaustive(),
            None => f.write_str("Tracer(disabled)"),
        }
    }
}

impl Tracer {
    /// A tracer emitting into `collector`. The epoch (both clocks) is
    /// captured here.
    pub fn new(collector: Arc<dyn Collector>) -> Tracer {
        Tracer::with_time_source(collector, Arc::new(RealTime::new()))
    }

    /// A tracer whose timestamps come from `time` instead of the
    /// machine clocks — the hook a deterministic simulator uses to
    /// make trace output replayable.
    pub fn with_time_source(collector: Arc<dyn Collector>, time: Arc<dyn TimeSource>) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                time,
                next_id: AtomicU64::new(1),
                collector,
                lanes: Mutex::new(HashMap::new()),
            })),
        }
    }

    /// The no-op tracer: every emission is skipped, every returned span
    /// id is [`SpanId::NONE`].
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// Returns `true` when events are actually recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Monotonic nanoseconds since the tracer's epoch (0 when
    /// disabled).
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.time.mono_ns(),
            None => 0,
        }
    }

    /// Wall-clock Unix milliseconds consistent with [`Tracer::now_ns`]
    /// (0 when disabled).
    pub fn wall_unix_ms(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.time.epoch_wall_ms() + inner.time.mono_ns() / 1_000_000,
            None => 0,
        }
    }

    fn lane(inner: &TracerInner) -> u64 {
        let id = std::thread::current().id();
        let mut lanes = inner.lanes.lock().unwrap_or_else(|e| e.into_inner());
        let next = lanes.len() as u64;
        *lanes.entry(id).or_insert(next)
    }

    fn emit(
        &self,
        kind: EventKind,
        id: SpanId,
        parent: SpanId,
        name: &str,
        attrs: Vec<(String, crate::AttrValue)>,
    ) {
        if let Some(inner) = &self.inner {
            let mono_ns = inner.time.mono_ns();
            inner.collector.record(&TraceEvent {
                kind,
                id,
                parent,
                name: name.to_owned(),
                mono_ns,
                wall_unix_ms: inner.time.epoch_wall_ms() + mono_ns / 1_000_000,
                tid: Tracer::lane(inner),
                attrs,
            });
        }
    }

    /// Opens a span; returns its id ([`SpanId::NONE`] when disabled).
    pub fn begin(&self, name: &str, parent: SpanId) -> SpanId {
        self.begin_with(name, parent, |_| {})
    }

    /// Opens a span with attributes. The builder closure only runs when
    /// tracing is enabled, so attribute strings are never allocated for
    /// a disabled tracer.
    pub fn begin_with(
        &self,
        name: &str,
        parent: SpanId,
        build: impl FnOnce(&mut AttrList),
    ) -> SpanId {
        let Some(inner) = &self.inner else {
            return SpanId::NONE;
        };
        let id = SpanId(inner.next_id.fetch_add(1, Ordering::Relaxed));
        let mut attrs = AttrList::default();
        build(&mut attrs);
        self.emit(EventKind::Begin, id, parent, name, attrs.into_pairs());
        id
    }

    /// Closes a span. Ending [`SpanId::NONE`] is a no-op, so guards
    /// compose with disabled tracers.
    pub fn end(&self, id: SpanId) {
        if id.is_none() {
            return;
        }
        self.emit(EventKind::End, id, SpanId::NONE, "", Vec::new());
    }

    /// Closes a span, attaching final attributes to the end record
    /// (e.g. an outcome computed while the span ran).
    pub fn end_with(&self, id: SpanId, build: impl FnOnce(&mut AttrList)) {
        if id.is_none() || self.inner.is_none() {
            return;
        }
        let mut attrs = AttrList::default();
        build(&mut attrs);
        self.emit(EventKind::End, id, SpanId::NONE, "", attrs.into_pairs());
    }

    /// Emits a point-in-time event under `parent`.
    pub fn instant(&self, name: &str, parent: SpanId, build: impl FnOnce(&mut AttrList)) {
        let Some(inner) = &self.inner else {
            return;
        };
        let id = SpanId(inner.next_id.fetch_add(1, Ordering::Relaxed));
        let mut attrs = AttrList::default();
        build(&mut attrs);
        self.emit(EventKind::Instant, id, parent, name, attrs.into_pairs());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::RingBuffer;

    #[test]
    fn disabled_tracer_emits_nothing_and_costs_no_ids() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let id = t.begin_with("x", SpanId::NONE, |a| {
            a.str("never", "built");
        });
        assert!(id.is_none());
        t.end(id);
        t.instant("e", id, |_| {});
        assert_eq!(t.now_ns(), 0);
        assert_eq!(t.wall_unix_ms(), 0);
        assert_eq!(format!("{t:?}"), "Tracer(disabled)");
    }

    #[test]
    fn spans_nest_and_timestamps_are_monotonic() {
        let ring = Arc::new(RingBuffer::new(16));
        let t = Tracer::new(ring.clone());
        let root = t.begin("execute", SpanId::NONE);
        let child = t.begin("task", root);
        t.instant("retry", child, |a| {
            a.uint("attempt", 2);
        });
        t.end(child);
        t.end(root);
        let events = ring.snapshot();
        assert_eq!(events.len(), 5);
        assert!(events.windows(2).all(|w| w[0].mono_ns <= w[1].mono_ns));
        assert_eq!(events[1].parent, root);
        assert_eq!(events[2].name, "retry");
        // Wall stamps derive from the same epoch, so they are plausible
        // "now" values and non-decreasing too.
        assert!(events[0].wall_unix_ms > 1_600_000_000_000);
        assert!(events
            .windows(2)
            .all(|w| w[0].wall_unix_ms <= w[1].wall_unix_ms));
    }

    #[test]
    fn threads_get_distinct_lanes() {
        let ring = Arc::new(RingBuffer::new(64));
        let t = Tracer::new(ring.clone());
        let root = t.begin("execute", SpanId::NONE);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let t = t.clone();
                s.spawn(move || {
                    let id = t.begin("task", root);
                    t.end(id);
                });
            }
        });
        t.end(root);
        let lanes: std::collections::HashSet<u64> = ring.snapshot().iter().map(|e| e.tid).collect();
        assert!(lanes.len() >= 2, "worker threads occupy their own lanes");
    }
}
