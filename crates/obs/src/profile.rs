//! Post-run profiling: span-tree reconstruction, task-DAG critical
//! path, and text renderings (report / Gantt / tree).
//!
//! The profiler consumes only [`TraceEvent`]s — it never sees the flow
//! graph. Task spans carry their dependency structure in two string
//! attributes: `outputs` and `inputs`, each a space-separated list of
//! data-node names. Task A precedes task B iff an output of A is an
//! input of B. This keeps the crate dependency-free while letting the
//! executor (which knows the graph) encode the exact DAG it ran.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::span::{AttrValue, EventKind, SpanId, TraceEvent};

/// A reconstructed span: one Begin matched with its End.
#[derive(Debug, Clone)]
pub struct Span {
    /// Span id.
    pub id: SpanId,
    /// Parent span id ([`SpanId::NONE`] for roots).
    pub parent: SpanId,
    /// Span name.
    pub name: String,
    /// Start, monotonic ns.
    pub start_ns: u64,
    /// End, monotonic ns. Unclosed spans are truncated at the trace's
    /// last timestamp.
    pub end_ns: u64,
    /// Thread lane.
    pub tid: u64,
    /// Begin and End attributes, merged (End wins on key collision
    /// order — both are kept, lookups find the first).
    pub attrs: Vec<(String, AttrValue)>,
}

impl Span {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// First attribute value for `key`.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// First string attribute for `key`.
    pub fn attr_str(&self, key: &str) -> Option<&str> {
        match self.attr(key) {
            Some(AttrValue::Str(s)) => Some(s),
            _ => None,
        }
    }
}

/// Pairs Begin/End events into [`Span`]s, ordered by start time (ties
/// broken by span id, so the order is deterministic). Instant events
/// are skipped; unclosed spans are truncated at the last timestamp.
pub fn build_spans(events: &[TraceEvent]) -> Vec<Span> {
    let last_ns = events.iter().map(|e| e.mono_ns).max().unwrap_or(0);
    let mut ends: HashMap<SpanId, &TraceEvent> = HashMap::new();
    for ev in events {
        if ev.kind == EventKind::End {
            ends.insert(ev.id, ev);
        }
    }
    let mut spans: Vec<Span> = events
        .iter()
        .filter(|e| e.kind == EventKind::Begin)
        .map(|b| {
            let end = ends.get(&b.id);
            let mut attrs = b.attrs.clone();
            if let Some(e) = end {
                attrs.extend(e.attrs.iter().cloned());
            }
            Span {
                id: b.id,
                parent: b.parent,
                name: b.name.clone(),
                start_ns: b.mono_ns,
                end_ns: end.map(|e| e.mono_ns).unwrap_or(last_ns),
                tid: b.tid,
                attrs,
            }
        })
        .collect();
    spans.sort_by_key(|s| (s.start_ns, s.id));
    spans
}

/// One task in the profiled DAG.
#[derive(Debug, Clone)]
pub struct TaskProfile {
    /// Display label (the span's `task` attribute, falling back to the
    /// span name).
    pub label: String,
    /// Wall duration of the task span.
    pub total_ns: u64,
    /// Duration not covered by child spans inside the task span.
    pub self_ns: u64,
    /// Start offset, monotonic ns.
    pub start_ns: u64,
    /// Thread lane the task ran on. Under the dataflow scheduler this
    /// is the persistent worker that dispatched the task, so one Gantt
    /// row per lane is one worker's timeline.
    pub tid: u64,
    /// Labels of tasks this task depends on (deterministic order).
    pub deps: Vec<String>,
    /// Whether the task was served from the invocation cache.
    pub cache_hit: bool,
    /// How long the task sat ready in the scheduler queue before a
    /// worker picked it up (the span's `queue_wait_ns` attribute; 0
    /// when the trace predates the attribute).
    pub queue_wait_ns: u64,
}

/// Critical-path profile of one execution trace.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Wall-clock duration of the execution (root span if present, else
    /// the task envelope).
    pub wall_ns: u64,
    /// Sum of task durations ("area under the Gantt bars").
    pub busy_ns: u64,
    /// Length of the longest dependency chain, weighted by measured
    /// task durations.
    pub critical_path_ns: u64,
    /// Task labels along the critical path, in execution order.
    pub critical_path: Vec<String>,
    /// Achieved parallelism: `busy_ns / wall_ns`.
    pub achieved_parallelism: f64,
    /// DAG-theoretic maximum parallelism with these durations:
    /// `busy_ns / critical_path_ns`.
    pub max_parallelism: f64,
    /// Per-task rows, ordered by start time.
    pub tasks: Vec<TaskProfile>,
}

/// Builds a [`ProfileReport`] from a raw event stream.
///
/// Tasks are spans named `task`; dependencies come from their
/// `outputs`/`inputs` attributes (see module docs). When no root
/// `execute` span exists (e.g. a synthesized trace), wall time is the
/// envelope of the task spans.
pub fn profile(events: &[TraceEvent]) -> ProfileReport {
    let spans = build_spans(events);
    profile_spans(&spans)
}

/// Like [`profile`], over already-reconstructed spans.
pub fn profile_spans(spans: &[Span]) -> ProfileReport {
    // Self time: subtract each span's children from its duration.
    let mut child_ns: HashMap<SpanId, u64> = HashMap::new();
    for s in spans {
        if !s.parent.is_none() {
            *child_ns.entry(s.parent).or_insert(0) += s.duration_ns();
        }
    }

    let tasks: Vec<&Span> = spans.iter().filter(|s| s.name == "task").collect();

    // Map each produced node to the producing task's label.
    let label_of = |s: &Span| -> String {
        s.attr_str("task")
            .map(str::to_owned)
            .unwrap_or_else(|| format!("{}@{}", s.name, s.id))
    };
    let mut producer: HashMap<&str, String> = HashMap::new();
    for t in &tasks {
        if let Some(outputs) = t.attr_str("outputs") {
            for node in outputs.split_whitespace() {
                producer.insert(node, label_of(t));
            }
        }
    }

    let mut profiles: Vec<TaskProfile> = Vec::with_capacity(tasks.len());
    for t in &tasks {
        let label = label_of(t);
        let mut deps: Vec<String> = t
            .attr_str("inputs")
            .map(|inputs| {
                inputs
                    .split_whitespace()
                    .filter_map(|node| producer.get(node).cloned())
                    .filter(|d| *d != label)
                    .collect()
            })
            .unwrap_or_default();
        deps.sort();
        deps.dedup();
        let cache_hit = matches!(t.attr("cache_hit"), Some(AttrValue::Bool(true)));
        let queue_wait_ns = match t.attr("queue_wait_ns") {
            Some(AttrValue::UInt(n)) => *n,
            _ => 0,
        };
        profiles.push(TaskProfile {
            label,
            total_ns: t.duration_ns(),
            self_ns: t
                .duration_ns()
                .saturating_sub(child_ns.get(&t.id).copied().unwrap_or(0)),
            start_ns: t.start_ns,
            tid: t.tid,
            deps,
            cache_hit,
            queue_wait_ns,
        });
    }

    let busy_ns: u64 = profiles.iter().map(|t| t.total_ns).sum();
    let wall_ns = spans
        .iter()
        .find(|s| s.name == "execute")
        .map(|s| s.duration_ns())
        .unwrap_or_else(|| {
            let start = tasks.iter().map(|t| t.start_ns).min().unwrap_or(0);
            let end = tasks.iter().map(|t| t.end_ns).max().unwrap_or(0);
            end.saturating_sub(start)
        });

    let (critical_path_ns, critical_path) = critical_path(&profiles);

    ProfileReport {
        wall_ns,
        busy_ns,
        critical_path_ns,
        critical_path,
        achieved_parallelism: ratio(busy_ns, wall_ns),
        max_parallelism: ratio(busy_ns, critical_path_ns),
        tasks: profiles,
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Longest dependency chain over `tasks`, weighted by `total_ns`.
/// Returns `(length_ns, labels along the chain)`. Ties are broken by
/// preferring the lexicographically smaller chain, so the result is
/// stable across runs. Duplicate labels (re-executions) accumulate into
/// one node with summed weight.
pub fn critical_path(tasks: &[TaskProfile]) -> (u64, Vec<String>) {
    // Collapse to label-keyed nodes; deterministic iteration via BTreeMap.
    let mut weight: BTreeMap<&str, u64> = BTreeMap::new();
    let mut deps: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for t in tasks {
        *weight.entry(&t.label).or_insert(0) += t.total_ns;
        let entry = deps.entry(&t.label).or_default();
        for d in &t.deps {
            if !entry.contains(&d.as_str()) {
                entry.push(d);
            }
        }
    }
    for ds in deps.values_mut() {
        ds.sort();
    }

    // Longest path via memoized DFS; cycle guard (a malformed trace
    // must not hang the profiler) treats back-edges as absent.
    struct Ctx<'a> {
        weight: &'a BTreeMap<&'a str, u64>,
        deps: &'a BTreeMap<&'a str, Vec<&'a str>>,
        best: HashMap<&'a str, (u64, Vec<&'a str>)>,
        visiting: HashSet<&'a str>,
    }
    fn solve<'a>(ctx: &mut Ctx<'a>, label: &'a str) -> (u64, Vec<&'a str>) {
        if let Some(hit) = ctx.best.get(label) {
            return hit.clone();
        }
        if !ctx.visiting.insert(label) {
            return (0, Vec::new());
        }
        let mut best_len = 0u64;
        let mut best_chain: Vec<&str> = Vec::new();
        if let Some(ds) = ctx.deps.get(label) {
            for d in ds.clone() {
                if !ctx.weight.contains_key(d) {
                    continue;
                }
                let (len, chain) = solve(ctx, d);
                if len > best_len || (len == best_len && chain < best_chain) {
                    best_len = len;
                    best_chain = chain;
                }
            }
        }
        ctx.visiting.remove(label);
        let w = ctx.weight.get(label).copied().unwrap_or(0);
        let mut chain = best_chain;
        chain.push(label);
        let result = (best_len + w, chain);
        ctx.best.insert(label, result.clone());
        result
    }

    let labels: Vec<&str> = weight.keys().copied().collect();
    let mut ctx = Ctx {
        weight: &weight,
        deps: &deps,
        best: HashMap::new(),
        visiting: HashSet::new(),
    };
    let mut best: (u64, Vec<&str>) = (0, Vec::new());
    for label in labels {
        let (len, chain) = solve(&mut ctx, label);
        if len > best.0 || (len == best.0 && (best.1.is_empty() || chain < best.1)) {
            best = (len, chain);
        }
    }
    (best.0, best.1.into_iter().map(str::to_owned).collect())
}

/// Per-task *downstream* critical-path length: each task's weight plus
/// the heaviest dependency chain hanging below it (through the tasks
/// that depend on it, transitively). A task with the largest value is
/// the one whose delay pushes the makespan out the furthest, so these
/// lengths are the natural static dispatch priorities for a dataflow
/// scheduler: the executor feeds estimated costs in as `total_ns` and
/// dispatches ready tasks in descending order of the result.
///
/// Duplicate labels accumulate weight exactly as in [`critical_path`];
/// cycles (malformed inputs) are tolerated by treating back-edges as
/// absent.
pub fn downstream_critical(tasks: &[TaskProfile]) -> BTreeMap<String, u64> {
    // Collapse to label-keyed nodes and reverse the edges: consumers
    // of a label are the tasks listing it in `deps`.
    let mut weight: BTreeMap<&str, u64> = BTreeMap::new();
    let mut consumers: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for t in tasks {
        *weight.entry(&t.label).or_insert(0) += t.total_ns;
        consumers.entry(&t.label).or_default();
    }
    for t in tasks {
        for d in &t.deps {
            if !weight.contains_key(d.as_str()) {
                continue;
            }
            let entry = consumers.entry(d).or_default();
            if !entry.contains(&t.label.as_str()) {
                entry.push(&t.label);
            }
        }
    }

    struct Ctx<'a> {
        weight: &'a BTreeMap<&'a str, u64>,
        consumers: &'a BTreeMap<&'a str, Vec<&'a str>>,
        best: HashMap<&'a str, u64>,
        visiting: HashSet<&'a str>,
    }
    fn solve<'a>(ctx: &mut Ctx<'a>, label: &'a str) -> u64 {
        if let Some(&hit) = ctx.best.get(label) {
            return hit;
        }
        if !ctx.visiting.insert(label) {
            return 0;
        }
        let mut tail = 0u64;
        if let Some(cs) = ctx.consumers.get(label) {
            for c in cs.clone() {
                tail = tail.max(solve(ctx, c));
            }
        }
        ctx.visiting.remove(label);
        let result = ctx.weight.get(label).copied().unwrap_or(0) + tail;
        ctx.best.insert(label, result);
        result
    }

    let labels: Vec<&str> = weight.keys().copied().collect();
    let mut ctx = Ctx {
        weight: &weight,
        consumers: &consumers,
        best: HashMap::new(),
        visiting: HashSet::new(),
    };
    labels
        .into_iter()
        .map(|l| {
            let v = solve(&mut ctx, l);
            (l.to_owned(), v)
        })
        .collect()
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl ProfileReport {
    /// Multi-line text report: the REPL `profile` command.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "wall {}  busy {}  critical path {}\n",
            fmt_ns(self.wall_ns),
            fmt_ns(self.busy_ns),
            fmt_ns(self.critical_path_ns)
        ));
        out.push_str(&format!(
            "parallelism: achieved {:.2}x, max (DAG limit) {:.2}x\n",
            self.achieved_parallelism, self.max_parallelism
        ));
        if !self.critical_path.is_empty() {
            out.push_str("critical path: ");
            out.push_str(&self.critical_path.join(" -> "));
            out.push('\n');
        }
        if !self.tasks.is_empty() {
            let on_path: HashSet<&str> = self.critical_path.iter().map(String::as_str).collect();
            out.push_str(&format!(
                "{:<28} {:>8} {:>10} {:>10} {:>10}  {}\n",
                "task", "worker", "total", "self", "wait", "flags"
            ));
            for t in &self.tasks {
                let mut flags = String::new();
                if on_path.contains(t.label.as_str()) {
                    flags.push('*');
                }
                if t.cache_hit {
                    flags.push('c');
                }
                out.push_str(&format!(
                    "{:<28} {:>8} {:>10} {:>10} {:>10}  {}\n",
                    t.label,
                    t.tid,
                    fmt_ns(t.total_ns),
                    fmt_ns(t.self_ns),
                    fmt_ns(t.queue_wait_ns),
                    flags
                ));
            }
            out.push_str("(* = on critical path, c = cache hit)\n");
        }
        out
    }

    /// Text Gantt chart: one row per task, bars positioned on a shared
    /// timeline, `width` columns wide. The lane column is the scheduler
    /// dispatch lane (worker id); a task's queue wait — the time it sat
    /// ready before its worker picked it up — renders as `·` in front
    /// of the run bar, so wait vs run time is visible per worker.
    pub fn render_gantt(&self, width: usize) -> String {
        let width = width.clamp(20, 400);
        let mut out = String::new();
        if self.tasks.is_empty() {
            out.push_str("no tasks traced\n");
            return out;
        }
        let t0 = self
            .tasks
            .iter()
            .map(|t| t.start_ns.saturating_sub(t.queue_wait_ns))
            .min()
            .unwrap_or(0);
        let t1 = self
            .tasks
            .iter()
            .map(|t| t.start_ns + t.total_ns)
            .max()
            .unwrap_or(t0 + 1);
        let span = (t1 - t0).max(1);
        let col = |ns: u64| -> usize {
            ((ns.saturating_sub(t0)) as u128 * width as u128 / span as u128) as usize
        };
        let mut any_wait = false;
        for t in &self.tasks {
            let enqueued = col(t.start_ns.saturating_sub(t.queue_wait_ns)).min(width - 1);
            let start = col(t.start_ns).clamp(enqueued, width - 1);
            let end = col(t.start_ns + t.total_ns).clamp(start + 1, width);
            let mut bar = String::with_capacity(width);
            for _ in 0..enqueued {
                bar.push(' ');
            }
            for _ in enqueued..start {
                bar.push('·');
                any_wait = true;
            }
            let fill = if t.cache_hit { '░' } else { '█' };
            for _ in start..end {
                bar.push(fill);
            }
            out.push_str(&format!(
                "{:<24} worker{:<2} |{:<w$}| {}\n",
                truncate(&t.label, 24),
                t.tid,
                bar,
                fmt_ns(t.total_ns),
                w = width
            ));
        }
        out.push_str(&format!(
            "timeline: {} .. {} ({})\n",
            fmt_ns(0),
            fmt_ns(span),
            fmt_ns(span)
        ));
        if any_wait {
            out.push_str("(· = ready in queue, █ = running, ░ = cache hit)\n");
        }
        out
    }
}

/// Indented text rendering of a span tree (the REPL `trace` command and
/// `herctrace --format tree`).
pub fn render_tree(spans: &[Span]) -> String {
    let mut children: HashMap<SpanId, Vec<&Span>> = HashMap::new();
    let ids: HashSet<SpanId> = spans.iter().map(|s| s.id).collect();
    let mut roots: Vec<&Span> = Vec::new();
    for s in spans {
        if s.parent.is_none() || !ids.contains(&s.parent) {
            roots.push(s);
        } else {
            children.entry(s.parent).or_default().push(s);
        }
    }
    let mut out = String::new();
    fn walk(out: &mut String, span: &Span, depth: usize, children: &HashMap<SpanId, Vec<&Span>>) {
        let label = span
            .attr_str("task")
            .map(|t| format!("{} [{}]", span.name, t))
            .unwrap_or_else(|| span.name.clone());
        out.push_str(&format!(
            "{:indent$}{} {} (+{})\n",
            "",
            label,
            fmt_ns(span.duration_ns()),
            fmt_ns(span.start_ns),
            indent = depth * 2
        ));
        if let Some(kids) = children.get(&span.id) {
            for k in kids {
                walk(out, k, depth + 1, children);
            }
        }
    }
    for r in roots {
        walk(&mut out, r, 0, &children);
    }
    if out.is_empty() {
        out.push_str("no spans recorded\n");
    }
    out
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_owned()
    } else {
        let mut t: String = s.chars().take(n.saturating_sub(1)).collect();
        t.push('…');
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a task profile row with explicit deps and duration.
    fn task(label: &str, total_ns: u64, deps: &[&str]) -> TaskProfile {
        TaskProfile {
            label: label.into(),
            total_ns,
            self_ns: total_ns,
            start_ns: 0,
            tid: 0,
            deps: deps.iter().map(|s| s.to_string()).collect(),
            cache_hit: false,
            queue_wait_ns: 0,
        }
    }

    #[test]
    fn critical_path_single_chain() {
        // a -> b -> c, the degenerate serial case: path is everything.
        let tasks = vec![
            task("a", 10, &[]),
            task("b", 20, &["a"]),
            task("c", 5, &["b"]),
        ];
        let (len, chain) = critical_path(&tasks);
        assert_eq!(len, 35);
        assert_eq!(chain, ["a", "b", "c"]);
    }

    #[test]
    fn critical_path_diamond_picks_heavier_arm() {
        //    / b(30) \
        // a(5)        d(5)
        //    \ c(10) /
        let tasks = vec![
            task("a", 5, &[]),
            task("b", 30, &["a"]),
            task("c", 10, &["a"]),
            task("d", 5, &["b", "c"]),
        ];
        let (len, chain) = critical_path(&tasks);
        assert_eq!(len, 40);
        assert_eq!(chain, ["a", "b", "d"]);
    }

    #[test]
    fn critical_path_tie_breaks_deterministically() {
        // Both arms weigh 30: the lexicographically smaller chain wins.
        let tasks = vec![
            task("a", 5, &[]),
            task("b", 30, &["a"]),
            task("c", 30, &["a"]),
            task("d", 5, &["b", "c"]),
        ];
        let (len, chain) = critical_path(&tasks);
        assert_eq!(len, 40);
        assert_eq!(chain, ["a", "b", "d"], "ties prefer the smaller label");
    }

    #[test]
    fn critical_path_ignores_unknown_deps_and_survives_cycles() {
        let tasks = vec![
            task("a", 10, &["ghost"]),
            // Malformed: b and c depend on each other.
            task("b", 5, &["c"]),
            task("c", 5, &["b"]),
        ];
        let (len, chain) = critical_path(&tasks);
        assert_eq!(len, 10);
        assert_eq!(chain, ["a"]);
    }

    #[test]
    fn critical_path_empty() {
        let (len, chain) = critical_path(&[]);
        assert_eq!(len, 0);
        assert!(chain.is_empty());
    }

    #[test]
    fn downstream_critical_ranks_the_long_pole_first() {
        //    / b(30) - d(5)
        // a(5)
        //    \ c(10)
        let tasks = vec![
            task("a", 5, &[]),
            task("b", 30, &["a"]),
            task("c", 10, &["a"]),
            task("d", 5, &["b"]),
        ];
        let down = downstream_critical(&tasks);
        assert_eq!(down["a"], 40, "a + heaviest chain below (b, d)");
        assert_eq!(down["b"], 35);
        assert_eq!(down["c"], 10);
        assert_eq!(down["d"], 5);
        // Dispatch priority: the straggler arm outranks the light one.
        assert!(down["b"] > down["c"]);
    }

    #[test]
    fn downstream_critical_tolerates_cycles_and_ghost_deps() {
        let tasks = vec![
            task("a", 10, &["ghost"]),
            task("b", 5, &["c"]),
            task("c", 5, &["b"]),
        ];
        let down = downstream_critical(&tasks);
        assert_eq!(down["a"], 10);
        assert!(down["b"] >= 5 && down["c"] >= 5, "cycle guard terminates");
    }

    fn ev(kind: EventKind, id: u64, parent: u64, name: &str, t: u64) -> TraceEvent {
        TraceEvent {
            kind,
            id: SpanId(id),
            parent: SpanId(parent),
            name: name.into(),
            mono_ns: t,
            wall_unix_ms: 0,
            tid: 0,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn profile_derives_dag_from_span_attrs() {
        // execute [0,100]; t1 produces n1 [0,40]; t2 consumes n1 [40,90].
        let mut e1 = ev(EventKind::Begin, 2, 1, "task", 0);
        e1.attrs = vec![
            ("task".into(), AttrValue::Str("t1".into())),
            ("outputs".into(), AttrValue::Str("n1".into())),
            ("inputs".into(), AttrValue::Str("n0".into())),
        ];
        let mut e2 = ev(EventKind::Begin, 3, 1, "task", 40);
        e2.attrs = vec![
            ("task".into(), AttrValue::Str("t2".into())),
            ("outputs".into(), AttrValue::Str("n2".into())),
            ("inputs".into(), AttrValue::Str("n1".into())),
        ];
        let events = vec![
            ev(EventKind::Begin, 1, 0, "execute", 0),
            e1,
            ev(EventKind::End, 2, 0, "", 40),
            e2,
            ev(EventKind::End, 3, 0, "", 90),
            ev(EventKind::End, 1, 0, "", 100),
        ];
        let report = profile(&events);
        assert_eq!(report.wall_ns, 100);
        assert_eq!(report.busy_ns, 90);
        assert_eq!(report.critical_path_ns, 90);
        assert_eq!(report.critical_path, ["t1", "t2"]);
        assert_eq!(report.tasks.len(), 2);
        assert_eq!(report.tasks[1].deps, ["t1"]);
        assert!((report.achieved_parallelism - 0.9).abs() < 1e-9);
        let text = report.render_text();
        assert!(text.contains("critical path: t1 -> t2"));
        let gantt = report.render_gantt(40);
        assert!(gantt.contains("t1"));
        assert!(gantt.contains("worker"));
    }

    #[test]
    fn self_time_subtracts_children() {
        let events = vec![
            ev(EventKind::Begin, 1, 0, "execute", 0),
            ev(EventKind::Begin, 2, 1, "task", 10),
            ev(EventKind::Begin, 3, 2, "attempt", 20),
            ev(EventKind::End, 3, 0, "", 50),
            ev(EventKind::End, 2, 0, "", 60),
            ev(EventKind::End, 1, 0, "", 70),
        ];
        let report = profile(&events);
        assert_eq!(report.tasks.len(), 1);
        assert_eq!(report.tasks[0].total_ns, 50);
        assert_eq!(report.tasks[0].self_ns, 20, "50 total - 30 in attempt");
        let spans = build_spans(&events);
        let tree = render_tree(&spans);
        assert!(tree.contains("execute"));
        assert!(tree.contains("  task"));
        assert!(tree.contains("    attempt"));
    }
}
