//! One-shot Prometheus text-format rendering of a [`MetricsSnapshot`].
//!
//! Hercules has no HTTP endpoint (yet — that arrives with `hercd`),
//! so the renderer is a pure function: feed it a snapshot, write the
//! result wherever a scraper can find it. Counters and gauges map
//! directly; histograms render as Prometheus *summaries* (quantile
//! series plus `_sum`/`_count`), because the log₂ buckets already
//! give exact quantiles at bucket floors and shipping 64 `_bucket`
//! series per histogram would drown a dashboard.
//!
//! Metric names are sanitized to `[a-z0-9_]` (dots become
//! underscores) and prefixed with `hercules_` to namespace them in a
//! shared scrape.

use crate::metrics::MetricsSnapshot;

/// Rewrites a dotted metric name into a Prometheus-legal series name.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 9);
    out.push_str("hercules_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders the snapshot in Prometheus text exposition format.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snapshot.counters {
        let s = sanitize(name);
        out.push_str(&format!("# TYPE {s} counter\n{s} {v}\n"));
    }
    for (name, v) in &snapshot.gauges {
        let s = sanitize(name);
        out.push_str(&format!("# TYPE {s} gauge\n{s} {v}\n"));
    }
    for (name, h) in &snapshot.histograms {
        let s = sanitize(name);
        out.push_str(&format!("# TYPE {s} summary\n"));
        for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
            out.push_str(&format!("{s}{{quantile=\"{label}\"}} {}\n", h.quantile(q)));
        }
        out.push_str(&format!("{s}_sum {}\n{s}_count {}\n", h.sum, h.count));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    #[test]
    fn renders_all_three_instrument_kinds() {
        let m = Metrics::new();
        m.incr("store.scrubs", 2);
        m.gauge_set("exec.queue_depth", 7);
        for v in [1u64, 2, 3, 4, 100] {
            m.observe("exec.task_wall_ns", v);
        }
        let text = render_prometheus(&m.snapshot());
        assert!(text.contains("# TYPE hercules_store_scrubs counter\nhercules_store_scrubs 2\n"));
        assert!(
            text.contains("# TYPE hercules_exec_queue_depth gauge\nhercules_exec_queue_depth 7\n")
        );
        assert!(text.contains("# TYPE hercules_exec_task_wall_ns summary\n"));
        assert!(text.contains("hercules_exec_task_wall_ns{quantile=\"0.5\"} 2\n"));
        assert!(text.contains("hercules_exec_task_wall_ns{quantile=\"0.99\"} 64\n"));
        assert!(text.contains("hercules_exec_task_wall_ns_sum 110\n"));
        assert!(text.contains("hercules_exec_task_wall_ns_count 5\n"));
        // Every non-comment line is "name[{labels}] value".
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split(' ');
            let series = parts.next().unwrap();
            assert!(series.starts_with("hercules_"), "{line}");
            assert!(parts.next().unwrap().parse::<f64>().is_ok(), "{line}");
            assert!(parts.next().is_none(), "{line}");
        }
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(render_prometheus(&Metrics::disabled().snapshot()), "");
    }
}
