//! Four-valued logic and waveforms.

use std::fmt;
use std::ops::Not;

use serde::{Deserialize, Serialize};

/// A four-valued logic level, as used by switch- and gate-level
/// simulators of the COSMOS era.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Logic {
    /// Strong low.
    Zero,
    /// Strong high.
    One,
    /// Unknown.
    X,
    /// High impedance.
    Z,
}

impl Logic {
    /// Parses a single-character logic level (`0`, `1`, `x`/`X`,
    /// `z`/`Z`).
    pub fn from_char(c: char) -> Option<Logic> {
        match c {
            '0' => Some(Logic::Zero),
            '1' => Some(Logic::One),
            'x' | 'X' => Some(Logic::X),
            'z' | 'Z' => Some(Logic::Z),
            _ => None,
        }
    }

    /// Returns `true` for the two driven, known levels.
    pub fn is_known(self) -> bool {
        matches!(self, Logic::Zero | Logic::One)
    }

    /// Converts a boolean to a logic level.
    pub fn from_bool(b: bool) -> Logic {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// Three-input majority-style AND over four-valued logic.
    pub fn and(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }

    /// Four-valued OR.
    pub fn or(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Four-valued XOR (unknown if either side is unknown/floating).
    pub fn xor(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::Zero, Logic::Zero) | (Logic::One, Logic::One) => Logic::Zero,
            (Logic::Zero, Logic::One) | (Logic::One, Logic::Zero) => Logic::One,
            _ => Logic::X,
        }
    }
}

impl Not for Logic {
    type Output = Logic;

    fn not(self) -> Logic {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            _ => Logic::X,
        }
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::X => 'X',
            Logic::Z => 'Z',
        };
        write!(f, "{c}")
    }
}

/// One signal's value changes over time: `(time, value)` pairs in
/// non-decreasing time order.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Waveform {
    /// Change events in time order.
    pub events: Vec<(u64, Logic)>,
}

impl Waveform {
    /// Creates an empty waveform (implicitly `X` everywhere).
    pub fn new() -> Waveform {
        Waveform::default()
    }

    /// Appends a change, dropping it if the value did not change.
    pub fn push(&mut self, time: u64, value: Logic) {
        if let Some(&(_, last)) = self.events.last() {
            if last == value {
                return;
            }
        }
        self.events.push((time, value));
    }

    /// Returns the value at `time` (the most recent change at or before
    /// it), or `X` before the first event.
    pub fn at(&self, time: u64) -> Logic {
        self.events
            .iter()
            .take_while(|&&(t, _)| t <= time)
            .last()
            .map(|&(_, v)| v)
            .unwrap_or(Logic::X)
    }

    /// Returns the number of value changes (transitions), not counting
    /// the initial assignment.
    pub fn transitions(&self) -> usize {
        self.events.len().saturating_sub(1)
    }

    /// Returns the final value, or `X` for an empty waveform.
    pub fn last_value(&self) -> Logic {
        self.events.last().map(|&(_, v)| v).unwrap_or(Logic::X)
    }

    /// Returns the time of the last change, or 0 when empty.
    pub fn last_change(&self) -> u64 {
        self.events.last().map(|&(t, _)| t).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tables() {
        use Logic::{One, Zero, X, Z};
        assert_eq!(Zero.and(One), Zero);
        assert_eq!(One.and(One), One);
        assert_eq!(X.and(One), X);
        assert_eq!(X.and(Zero), Zero, "0 dominates and");
        assert_eq!(One.or(X), One, "1 dominates or");
        assert_eq!(Zero.or(Zero), Zero);
        assert_eq!(Z.or(Zero), X);
        assert_eq!(One.xor(Zero), One);
        assert_eq!(One.xor(One), Zero);
        assert_eq!(One.xor(X), X);
        assert_eq!(!One, Zero);
        assert_eq!(!Z, X);
    }

    #[test]
    fn char_round_trip() {
        for c in ['0', '1', 'X', 'Z'] {
            let v = Logic::from_char(c).expect("valid");
            assert_eq!(v.to_string(), c.to_string());
        }
        assert_eq!(Logic::from_char('q'), None);
        assert!(Logic::One.is_known());
        assert!(!Logic::Z.is_known());
        assert_eq!(Logic::from_bool(true), Logic::One);
    }

    #[test]
    fn waveform_queries() {
        let mut w = Waveform::new();
        w.push(0, Logic::Zero);
        w.push(5, Logic::One);
        w.push(5, Logic::One); // duplicate value dropped
        w.push(9, Logic::Zero);
        assert_eq!(w.at(0), Logic::Zero);
        assert_eq!(w.at(4), Logic::Zero);
        assert_eq!(w.at(5), Logic::One);
        assert_eq!(w.at(100), Logic::Zero);
        assert_eq!(w.transitions(), 2);
        assert_eq!(w.last_change(), 9);
        assert_eq!(Waveform::new().at(3), Logic::X);
        assert_eq!(Waveform::new().transitions(), 0);
    }
}
