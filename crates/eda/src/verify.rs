//! The verifier tool (the `Verifier` of Fig. 1): LVS-style comparison
//! of two netlists, used by the Fig. 8b flow to check that the physical
//! view corresponds to the transistor view.

use serde::{Deserialize, Serialize};

use crate::error::EdaError;
use crate::netlist::{Device, Netlist};

/// One discrepancy found during comparison.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mismatch {
    /// Human-readable description.
    pub description: String,
}

/// A verification report (the `Verification` entity).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Verification {
    /// Name of the reference netlist.
    pub reference: String,
    /// Name of the compared netlist.
    pub compared: String,
    /// `true` when the netlists are structurally equivalent.
    pub matched: bool,
    /// Discrepancies, empty when matched.
    pub mismatches: Vec<Mismatch>,
}

impl Verification {
    /// Emits the canonical byte form (JSON).
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("verification serializes")
    }

    /// Parses the canonical byte form.
    ///
    /// # Errors
    ///
    /// Returns [`EdaError::Parse`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Verification, EdaError> {
        serde_json::from_slice(bytes).map_err(|e| EdaError::Parse {
            what: "verification".into(),
            detail: e.to_string(),
        })
    }
}

/// Canonical signature of one gate: kind plus the *names* of its nets,
/// with inputs sorted (gate inputs are commutative in this library).
fn gate_signature(netlist: &Netlist, device: &Device) -> Option<String> {
    match device {
        Device::Gate {
            kind,
            inputs,
            output,
        } => {
            let mut ins: Vec<&str> = inputs.iter().map(|&i| netlist.net_name(i)).collect();
            ins.sort_unstable();
            Some(format!(
                "{} ({}) -> {}",
                kind.keyword(),
                ins.join(","),
                netlist.net_name(*output)
            ))
        }
        Device::Dff { d, clk, q } => Some(format!(
            "dff ({},{}) -> {}",
            netlist.net_name(*d),
            netlist.net_name(*clk),
            netlist.net_name(*q)
        )),
        Device::Mos { .. } => None,
    }
}

/// Compares two gate-level netlists structurally: same ports, and the
/// same multiset of gate signatures (net-name based — the extractor
/// preserves names, as real extractors preserve labels).
///
/// # Errors
///
/// Returns [`EdaError::Incomparable`] when either netlist is
/// transistor-level (compare like with like).
///
/// # Examples
///
/// ```
/// use hercules_eda::{cells, verify};
///
/// # fn main() -> Result<(), hercules_eda::EdaError> {
/// let a = cells::full_adder();
/// let report = verify(&a, &a)?;
/// assert!(report.matched);
/// # Ok(())
/// # }
/// ```
pub fn verify(reference: &Netlist, compared: &Netlist) -> Result<Verification, EdaError> {
    if !reference.is_gate_level() || !compared.is_gate_level() {
        return Err(EdaError::Incomparable {
            reason: "both netlists must be gate-level".into(),
        });
    }
    let mut mismatches = Vec::new();

    let ports = |n: &Netlist| -> (Vec<String>, Vec<String>) {
        let mut ins: Vec<String> = n
            .inputs()
            .iter()
            .map(|&i| n.net_name(i).to_owned())
            .collect();
        let mut outs: Vec<String> = n
            .outputs()
            .iter()
            .map(|&o| n.net_name(o).to_owned())
            .collect();
        ins.sort();
        outs.sort();
        (ins, outs)
    };
    let (ri, ro) = ports(reference);
    let (ci, co) = ports(compared);
    if ri != ci {
        mismatches.push(Mismatch {
            description: format!("input ports differ: {ri:?} vs {ci:?}"),
        });
    }
    if ro != co {
        mismatches.push(Mismatch {
            description: format!("output ports differ: {ro:?} vs {co:?}"),
        });
    }

    let sigs = |n: &Netlist| -> Vec<String> {
        let mut s: Vec<String> = n
            .devices()
            .iter()
            .filter_map(|d| gate_signature(n, d))
            .collect();
        s.sort();
        s
    };
    let rs = sigs(reference);
    let cs = sigs(compared);
    for s in &rs {
        if !cs.contains(s) {
            mismatches.push(Mismatch {
                description: format!("missing in compared: {s}"),
            });
        }
    }
    for s in &cs {
        if !rs.contains(s) {
            mismatches.push(Mismatch {
                description: format!("extra in compared: {s}"),
            });
        }
    }

    Ok(Verification {
        reference: reference.name.clone(),
        compared: compared.name.clone(),
        matched: mismatches.is_empty(),
        mismatches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells;
    use crate::extract::extract;
    use crate::place::{place, PlacementRules};

    #[test]
    fn extracted_netlist_matches_source() {
        let n = cells::ripple_adder(4);
        let layout = place(&n, &PlacementRules::default()).expect("ok");
        let (ex, _) = extract(&layout);
        let report = verify(&n, &ex.netlist).expect("comparable");
        assert!(report.matched, "{:?}", report.mismatches);
    }

    #[test]
    fn modified_netlist_is_detected() {
        let a = cells::full_adder();
        let mut b = cells::full_adder();
        // Swap a gate kind: a real LVS error.
        if let Device::Gate { kind, .. } = &mut b.devices_mut()[0] {
            *kind = crate::netlist::GateKind::Nand;
        }
        let report = verify(&a, &b).expect("comparable");
        assert!(!report.matched);
        assert!(report.mismatches.len() >= 2, "missing + extra signature");
    }

    #[test]
    fn port_differences_are_reported() {
        let a = cells::full_adder();
        let b = cells::inverter();
        let report = verify(&a, &b).expect("comparable");
        assert!(!report.matched);
        assert!(report
            .mismatches
            .iter()
            .any(|m| m.description.contains("input ports differ")));
    }

    #[test]
    fn transistor_netlists_are_incomparable() {
        let a = cells::inverter();
        let b = cells::inverter_transistors();
        assert!(matches!(
            verify(&a, &b).unwrap_err(),
            EdaError::Incomparable { .. }
        ));
    }

    #[test]
    fn commutative_inputs_match() {
        let mut a = Netlist::new("a");
        let x = a.add_port_in("x");
        let y = a.add_port_in("y");
        let z = a.add_port_out("z");
        a.add_gate(crate::netlist::GateKind::And, &[x, y], z);
        let mut b = Netlist::new("b");
        let y2 = b.add_port_in("y");
        let x2 = b.add_port_in("x");
        let z2 = b.add_port_out("z");
        b.add_gate(crate::netlist::GateKind::And, &[y2, x2], z2);
        assert!(verify(&a, &b).expect("comparable").matched);
    }

    #[test]
    fn byte_round_trip() {
        let a = cells::full_adder();
        let report = verify(&a, &a).expect("ok");
        assert_eq!(
            Verification::from_bytes(&report.to_bytes()).expect("ok"),
            report
        );
        assert!(Verification::from_bytes(b"x").is_err());
    }
}
