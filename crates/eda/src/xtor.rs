//! Gate-level → transistor-level synthesis (static CMOS mapping).
//!
//! The Fig. 2 flow compiles a *transistor-level* netlist into a
//! switch-level simulator; design entry in the examples is gate-level,
//! so this pass expands each gate into its static CMOS network:
//!
//! * `inv` → 1 PMOS + 1 NMOS;
//! * `nand`/`nor` (n inputs) → n parallel + n series devices;
//! * `buf`, `and`, `or` → the inverting core plus an output inverter;
//! * `xor`/`xnor` → four NANDs (plus an inverter for `xnor`), each
//!   expanded recursively.

use crate::error::EdaError;
use crate::netlist::{Device, GateKind, MosKind, Netlist};

/// Expands a gate-level netlist into static CMOS transistors. Port
/// names are preserved, so stimuli written for the gate-level netlist
/// drive the transistor-level one unchanged.
///
/// # Errors
///
/// Returns [`EdaError::WrongNetlistLevel`] if the input already
/// contains transistors.
///
/// # Examples
///
/// ```
/// use hercules_eda::{cells, to_transistor_level};
///
/// # fn main() -> Result<(), hercules_eda::EdaError> {
/// let gates = cells::full_adder();
/// let xtors = to_transistor_level(&gates)?;
/// assert!(xtors.is_transistor_level());
/// assert!(xtors.mos_count() > gates.gate_count());
/// # Ok(())
/// # }
/// ```
pub fn to_transistor_level(netlist: &Netlist) -> Result<Netlist, EdaError> {
    if !netlist.is_gate_level() || netlist.is_sequential() {
        return Err(EdaError::WrongNetlistLevel {
            expected: "combinational gate".into(),
        });
    }
    let mut out = Netlist::new(&format!("{}_xtor", netlist.name));
    // Recreate nets in order (preserves indexes and port names).
    for i in 2..netlist.net_count() {
        out.add_net(netlist.net_name(i));
    }
    for &i in netlist.inputs() {
        out.add_port_in(netlist.net_name(i));
    }
    for &o in netlist.outputs() {
        out.add_port_out(netlist.net_name(o));
    }
    let mut fresh = 0usize;
    for d in netlist.devices() {
        let Device::Gate {
            kind,
            inputs,
            output,
        } = d
        else {
            continue;
        };
        emit_gate(&mut out, *kind, inputs, *output, &mut fresh);
    }
    Ok(out)
}

/// Allocates an internal net.
fn internal(out: &mut Netlist, fresh: &mut usize) -> usize {
    let net = out.add_net(&format!("_x{fresh}"));
    *fresh += 1;
    net
}

fn emit_gate(
    out: &mut Netlist,
    kind: GateKind,
    inputs: &[usize],
    output: usize,
    fresh: &mut usize,
) {
    match kind {
        GateKind::Inv => emit_inverter(out, inputs[0], output),
        GateKind::Buf => {
            let mid = internal(out, fresh);
            emit_inverter(out, inputs[0], mid);
            emit_inverter(out, mid, output);
        }
        GateKind::Nand => emit_nand(out, inputs, output),
        GateKind::Nor => emit_nor(out, inputs, output),
        GateKind::And => {
            let mid = internal(out, fresh);
            emit_nand(out, inputs, mid);
            emit_inverter(out, mid, output);
        }
        GateKind::Or => {
            let mid = internal(out, fresh);
            emit_nor(out, inputs, mid);
            emit_inverter(out, mid, output);
        }
        GateKind::Xor => emit_xor(out, inputs[0], inputs[1], output, fresh),
        GateKind::Xnor => {
            let mid = internal(out, fresh);
            emit_xor(out, inputs[0], inputs[1], mid, fresh);
            emit_inverter(out, mid, output);
        }
    }
}

fn emit_inverter(out: &mut Netlist, input: usize, output: usize) {
    out.add_mos(MosKind::Pmos, input, Netlist::VDD, output);
    out.add_mos(MosKind::Nmos, input, Netlist::GND, output);
}

/// Parallel PMOS pull-up, series NMOS pull-down.
fn emit_nand(out: &mut Netlist, inputs: &[usize], output: usize) {
    for &i in inputs {
        out.add_mos(MosKind::Pmos, i, Netlist::VDD, output);
    }
    let mut below = Netlist::GND;
    for (k, &i) in inputs.iter().enumerate() {
        let above = if k + 1 == inputs.len() {
            output
        } else {
            out.add_net(&format!("_nd{}_{}", output, k))
        };
        out.add_mos(MosKind::Nmos, i, below, above);
        below = above;
    }
}

/// Series PMOS pull-up, parallel NMOS pull-down.
fn emit_nor(out: &mut Netlist, inputs: &[usize], output: usize) {
    let mut above = Netlist::VDD;
    for (k, &i) in inputs.iter().enumerate() {
        let below = if k + 1 == inputs.len() {
            output
        } else {
            out.add_net(&format!("_nr{}_{}", output, k))
        };
        out.add_mos(MosKind::Pmos, i, above, below);
        above = below;
    }
    for &i in inputs {
        out.add_mos(MosKind::Nmos, i, Netlist::GND, output);
    }
}

/// Four-NAND XOR: y = (a ⊼ m) ⊼ (b ⊼ m) with m = a ⊼ b.
fn emit_xor(out: &mut Netlist, a: usize, b: usize, output: usize, fresh: &mut usize) {
    let m = internal(out, fresh);
    let p = internal(out, fresh);
    let q = internal(out, fresh);
    emit_nand(out, &[a, b], m);
    emit_nand(out, &[a, m], p);
    emit_nand(out, &[b, m], q);
    emit_nand(out, &[p, q], output);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells;
    use crate::cosmos::compile;
    use crate::logic_sim::{simulate, NetDelays};
    use crate::signal::Logic;
    use crate::stimuli::Stimuli;

    /// The synthesized transistor netlist must agree with the gate-level
    /// simulation on every input vector.
    fn check_equivalence(gates: &Netlist, input_names: &[&str]) {
        let xtors = to_transistor_level(gates).expect("synthesizable");
        let sim = compile(&xtors).expect("compilable");
        let all = Stimuli::exhaustive(input_names, 32);
        let gate_result = simulate(gates, &all, &NetDelays::default()).expect("ok");
        let switch_result = sim.run(&all).expect("ok");
        for &o in gates.outputs() {
            let name = gates.net_name(o);
            let g = gate_result.wave(name).expect("gate wave");
            let s = switch_result.output(name).expect("switch wave");
            // Compare final steady-state per vector time.
            for v in 0..(1u64 << input_names.len()) {
                // Gate-level values settle within the vector period;
                // switch-level values are instantaneous.
                assert_eq!(g.at(v * 32 + 31), s.at(v * 32), "output {name} vector {v}");
            }
        }
        let _ = Logic::X; // keep the import obviously used
    }

    #[test]
    fn inverter_equivalent() {
        check_equivalence(&cells::inverter(), &["in"]);
    }

    #[test]
    fn full_adder_equivalent() {
        check_equivalence(&cells::full_adder(), &["a", "b", "cin"]);
    }

    #[test]
    fn pla_equivalent() {
        check_equivalence(&cells::full_adder_pla(), &["i0", "i1", "i2"]);
    }

    #[test]
    fn ports_are_preserved() {
        let gates = cells::full_adder();
        let xtors = to_transistor_level(&gates).expect("ok");
        assert_eq!(gates.inputs().len(), xtors.inputs().len());
        assert_eq!(gates.outputs().len(), xtors.outputs().len());
        assert!(xtors.net_index("sum").is_some());
    }

    #[test]
    fn transistor_input_is_rejected() {
        let x = cells::inverter_transistors();
        assert!(to_transistor_level(&x).is_err());
    }

    #[test]
    fn device_counts_match_cmos_rules() {
        let inv = to_transistor_level(&cells::inverter()).expect("ok");
        assert_eq!(inv.mos_count(), 2);
        let mut nand3 = Netlist::new("nand3");
        let a = nand3.add_port_in("a");
        let b = nand3.add_port_in("b");
        let c = nand3.add_port_in("c");
        let y = nand3.add_port_out("y");
        nand3.add_gate(GateKind::Nand, &[a, b, c], y);
        let x = to_transistor_level(&nand3).expect("ok");
        assert_eq!(x.mos_count(), 6, "3 parallel pmos + 3 series nmos");
    }
}
