//! Simulation stimuli: timed input events with a text format and
//! deterministic generators.

use std::fmt;

use rand::Rng as _;
use rand::SeedableRng as _;
use serde::{Deserialize, Serialize};

use crate::error::EdaError;
use crate::signal::Logic;

/// A stimulus set: events `(time, signal, value)` applied to primary
/// inputs during simulation.
///
/// # Examples
///
/// ```
/// use hercules_eda::{Logic, Stimuli};
///
/// let mut s = Stimuli::new("pulse");
/// s.set(0, "a", Logic::Zero);
/// s.set(10, "a", Logic::One);
/// assert_eq!(s.len(), 2);
/// let back = Stimuli::parse(&s.to_text()).expect("round-trips");
/// assert_eq!(back, s);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stimuli {
    /// Stimulus-set name.
    pub name: String,
    events: Vec<(u64, String, Logic)>,
}

impl Stimuli {
    /// Creates an empty stimulus set.
    pub fn new(name: &str) -> Stimuli {
        Stimuli {
            name: name.to_owned(),
            events: Vec::new(),
        }
    }

    /// Schedules `signal` to take `value` at `time`.
    pub fn set(&mut self, time: u64, signal: &str, value: Logic) {
        self.events.push((time, signal.to_owned(), value));
        self.events.sort_by_key(|e| e.0);
    }

    /// Returns the events in time order.
    pub fn events(&self) -> &[(u64, String, Logic)] {
        &self.events
    }

    /// Returns the number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if there are no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Returns the latest event time (0 when empty).
    pub fn end_time(&self) -> u64 {
        self.events.iter().map(|e| e.0).max().unwrap_or(0)
    }

    /// Returns the distinct signal names driven, in first-use order.
    pub fn signals(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for (_, s, _) in &self.events {
            if !out.contains(&s.as_str()) {
                out.push(s);
            }
        }
        out
    }

    /// Generates an exhaustive walk over all 2^n combinations of the
    /// given inputs, one combination every `period` time units.
    ///
    /// # Panics
    ///
    /// Panics if more than 16 inputs are requested (65536 vectors).
    pub fn exhaustive(inputs: &[&str], period: u64) -> Stimuli {
        assert!(
            inputs.len() <= 16,
            "exhaustive stimuli limited to 16 inputs"
        );
        let mut s = Stimuli::new("exhaustive");
        for v in 0..(1u32 << inputs.len()) {
            let t = u64::from(v) * period;
            for (i, name) in inputs.iter().enumerate() {
                s.set(t, name, Logic::from_bool(v >> i & 1 == 1));
            }
        }
        s
    }

    /// Generates `vectors` random input combinations from a seed, one
    /// every `period` time units. Deterministic for a given seed.
    pub fn random(inputs: &[&str], vectors: usize, period: u64, seed: u64) -> Stimuli {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut s = Stimuli::new("random");
        for v in 0..vectors {
            let t = v as u64 * period;
            for name in inputs {
                s.set(t, name, Logic::from_bool(rng.random::<bool>()));
            }
        }
        s
    }

    /// Emits the canonical text form.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, ".stimuli {}", self.name);
        for (t, sig, v) in &self.events {
            let _ = writeln!(out, "{t} {sig} {v}");
        }
        out.push_str(".end\n");
        out
    }

    /// Emits the canonical byte form.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_text().into_bytes()
    }

    /// Parses the canonical text form.
    ///
    /// # Errors
    ///
    /// Returns [`EdaError::Parse`] on malformed input.
    pub fn parse(text: &str) -> Result<Stimuli, EdaError> {
        let err = |detail: &str| EdaError::Parse {
            what: "stimuli".into(),
            detail: detail.to_owned(),
        };
        let mut out: Option<Stimuli> = None;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix(".stimuli") {
                out = Some(Stimuli::new(rest.trim()));
                continue;
            }
            if line == ".end" {
                break;
            }
            let s = out.as_mut().ok_or_else(|| err("event before .stimuli"))?;
            let mut parts = line.split_whitespace();
            let t: u64 = parts
                .next()
                .ok_or_else(|| err("missing time"))?
                .parse()
                .map_err(|_| err("bad time"))?;
            let sig = parts.next().ok_or_else(|| err("missing signal"))?;
            let v = parts
                .next()
                .and_then(|v| v.chars().next())
                .and_then(Logic::from_char)
                .ok_or_else(|| err("bad value"))?;
            s.set(t, sig, v);
        }
        out.ok_or_else(|| err("no .stimuli directive"))
    }

    /// Parses the canonical byte form.
    ///
    /// # Errors
    ///
    /// Returns [`EdaError::Parse`] on malformed or non-UTF-8 input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Stimuli, EdaError> {
        let text = std::str::from_utf8(bytes).map_err(|_| EdaError::Parse {
            what: "stimuli".into(),
            detail: "not utf-8".into(),
        })?;
        Stimuli::parse(text)
    }
}

impl fmt::Display for Stimuli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} events)", self.name, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_sort_by_time() {
        let mut s = Stimuli::new("t");
        s.set(10, "a", Logic::One);
        s.set(0, "a", Logic::Zero);
        assert_eq!(s.events()[0].0, 0);
        assert_eq!(s.end_time(), 10);
        assert_eq!(s.signals(), vec!["a"]);
    }

    #[test]
    fn exhaustive_covers_all_vectors() {
        let s = Stimuli::exhaustive(&["a", "b"], 5);
        assert_eq!(s.len(), 8, "4 vectors x 2 signals");
        assert_eq!(s.end_time(), 15);
        // Vector 3 = a=1, b=1 at t=15.
        let last: Vec<_> = s.events().iter().filter(|e| e.0 == 15).collect();
        assert!(last.iter().all(|e| e.2 == Logic::One));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = Stimuli::random(&["x", "y"], 10, 3, 42);
        let b = Stimuli::random(&["x", "y"], 10, 3, 42);
        let c = Stimuli::random(&["x", "y"], 10, 3, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 20);
    }

    #[test]
    fn text_round_trip() {
        let s = Stimuli::exhaustive(&["a"], 4);
        let back = Stimuli::parse(&s.to_text()).expect("ok");
        assert_eq!(back, s);
        let back = Stimuli::from_bytes(&s.to_bytes()).expect("ok");
        assert_eq!(back, s);
    }

    #[test]
    fn parse_errors() {
        assert!(Stimuli::parse("").is_err());
        assert!(Stimuli::parse("0 a 1").is_err());
        assert!(Stimuli::parse(".stimuli s\nnope a 1").is_err());
        assert!(Stimuli::parse(".stimuli s\n0 a q").is_err());
        assert!(Stimuli::from_bytes(&[0xff]).is_err());
    }
}
