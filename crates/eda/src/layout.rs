//! The physical layout data model (the `Layout` entity of Fig. 1).
//!
//! A layout is a row-based placement of library cells plus point-to-
//! point wires. It carries enough information for the extractor to
//! rebuild a netlist *with parasitics*, which is what makes the Fig. 8
//! synthesis/verification flows meaningful.

use serde::{Deserialize, Serialize};

use crate::error::EdaError;
use crate::netlist::GateKind;

/// One placed cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacedCell {
    /// Instance name (unique within the layout).
    pub name: String,
    /// Library cell implemented (a gate kind).
    pub kind: GateKind,
    /// Input net names in pin order.
    pub inputs: Vec<String>,
    /// Output net name.
    pub output: String,
    /// Lower-left x coordinate.
    pub x: i64,
    /// Lower-left y coordinate.
    pub y: i64,
}

impl PlacedCell {
    /// Cell width in layout units (wider cells for bigger gates).
    pub fn width(&self) -> i64 {
        match self.kind {
            GateKind::Inv | GateKind::Buf => 4,
            GateKind::Nand | GateKind::Nor => 6,
            GateKind::And | GateKind::Or => 8,
            GateKind::Xor | GateKind::Xnor => 10,
        }
    }

    /// Cell height in layout units (single row height).
    pub fn height(&self) -> i64 {
        8
    }

    /// Cell center, used for wire-length estimation.
    pub fn center(&self) -> (i64, i64) {
        (self.x + self.width() / 2, self.y + self.height() / 2)
    }
}

/// A physical layout: placed cells and the nets connecting them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layout {
    /// Layout name (usually the circuit name).
    pub name: String,
    /// Placed cells in placement order.
    pub cells: Vec<PlacedCell>,
    /// Primary input net names.
    pub inputs: Vec<String>,
    /// Primary output net names.
    pub outputs: Vec<String>,
}

impl Layout {
    /// Creates an empty layout.
    pub fn new(name: &str) -> Layout {
        Layout {
            name: name.to_owned(),
            cells: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Returns the bounding-box area of the placement.
    pub fn area(&self) -> i64 {
        if self.cells.is_empty() {
            return 0;
        }
        let min_x = self.cells.iter().map(|c| c.x).min().expect("nonempty");
        let max_x = self
            .cells
            .iter()
            .map(|c| c.x + c.width())
            .max()
            .expect("nonempty");
        let min_y = self.cells.iter().map(|c| c.y).min().expect("nonempty");
        let max_y = self
            .cells
            .iter()
            .map(|c| c.y + c.height())
            .max()
            .expect("nonempty");
        (max_x - min_x) * (max_y - min_y)
    }

    /// Estimates each net's wire length as the half-perimeter of the
    /// bounding box of the pins on it. Returns `(net name, length)`
    /// pairs sorted by name.
    pub fn wire_lengths(&self) -> Vec<(String, i64)> {
        use std::collections::HashMap;
        let mut pins: HashMap<&str, Vec<(i64, i64)>> = HashMap::new();
        for c in &self.cells {
            for i in &c.inputs {
                pins.entry(i).or_default().push(c.center());
            }
            pins.entry(&c.output).or_default().push(c.center());
        }
        let mut out: Vec<(String, i64)> = pins
            .into_iter()
            .map(|(net, ps)| {
                let min_x = ps.iter().map(|p| p.0).min().expect("nonempty");
                let max_x = ps.iter().map(|p| p.0).max().expect("nonempty");
                let min_y = ps.iter().map(|p| p.1).min().expect("nonempty");
                let max_y = ps.iter().map(|p| p.1).max().expect("nonempty");
                (net.to_owned(), (max_x - min_x) + (max_y - min_y))
            })
            .collect();
        out.sort();
        out
    }

    /// Returns the total estimated wire length.
    pub fn total_wire_length(&self) -> i64 {
        self.wire_lengths().iter().map(|(_, l)| l).sum()
    }

    /// Returns whether two placed cells overlap.
    pub fn has_overlaps(&self) -> bool {
        for (i, a) in self.cells.iter().enumerate() {
            for b in &self.cells[i + 1..] {
                let sep_x = a.x + a.width() <= b.x || b.x + b.width() <= a.x;
                let sep_y = a.y + a.height() <= b.y || b.y + b.height() <= a.y;
                if !sep_x && !sep_y {
                    return true;
                }
            }
        }
        false
    }

    /// Emits the canonical byte form (JSON).
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("layout serializes")
    }

    /// Parses the canonical byte form.
    ///
    /// # Errors
    ///
    /// Returns [`EdaError::Parse`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Layout, EdaError> {
        serde_json::from_slice(bytes).map_err(|e| EdaError::Parse {
            what: "layout".into(),
            detail: e.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cell_layout() -> Layout {
        let mut l = Layout::new("t");
        l.inputs.push("a".into());
        l.outputs.push("y".into());
        l.cells.push(PlacedCell {
            name: "u1".into(),
            kind: GateKind::Inv,
            inputs: vec!["a".into()],
            output: "m".into(),
            x: 0,
            y: 0,
        });
        l.cells.push(PlacedCell {
            name: "u2".into(),
            kind: GateKind::Inv,
            inputs: vec!["m".into()],
            output: "y".into(),
            x: 10,
            y: 0,
        });
        l
    }

    #[test]
    fn area_and_wires() {
        let l = two_cell_layout();
        assert_eq!(l.area(), 14 * 8);
        let wires = l.wire_lengths();
        let m = wires.iter().find(|(n, _)| n == "m").expect("net m");
        assert_eq!(m.1, 10, "half-perimeter between the two cell centers");
        assert!(l.total_wire_length() >= 10);
        assert!(!l.has_overlaps());
    }

    #[test]
    fn overlap_detection() {
        let mut l = two_cell_layout();
        l.cells[1].x = 2; // on top of u1
        assert!(l.has_overlaps());
    }

    #[test]
    fn byte_round_trip() {
        let l = two_cell_layout();
        let back = Layout::from_bytes(&l.to_bytes()).expect("ok");
        assert_eq!(back, l);
        assert!(Layout::from_bytes(b"junk").is_err());
    }

    #[test]
    fn empty_layout_has_zero_area() {
        let l = Layout::new("empty");
        assert_eq!(l.area(), 0);
        assert!(l.wire_lengths().is_empty());
    }
}
