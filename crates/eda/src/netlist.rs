//! The netlist data model: gate-level and transistor-level circuits
//! with a canonical text format.
//!
//! Tool encapsulations exchange design data as bytes (the 1993 tools
//! read and wrote files); [`Netlist::to_text`] / [`Netlist::parse`] are
//! that file format.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::EdaError;

/// A combinational gate kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// Inverter (1 input).
    Inv,
    /// Buffer (1 input).
    Buf,
    /// N-input AND.
    And,
    /// N-input OR.
    Or,
    /// N-input NAND.
    Nand,
    /// N-input NOR.
    Nor,
    /// 2-input XOR.
    Xor,
    /// 2-input XNOR.
    Xnor,
}

impl GateKind {
    /// Parses a lowercase gate keyword.
    pub fn from_keyword(kw: &str) -> Option<GateKind> {
        match kw {
            "inv" => Some(GateKind::Inv),
            "buf" => Some(GateKind::Buf),
            "and" => Some(GateKind::And),
            "or" => Some(GateKind::Or),
            "nand" => Some(GateKind::Nand),
            "nor" => Some(GateKind::Nor),
            "xor" => Some(GateKind::Xor),
            "xnor" => Some(GateKind::Xnor),
            _ => None,
        }
    }

    /// Returns the lowercase keyword for the text format.
    pub fn keyword(self) -> &'static str {
        match self {
            GateKind::Inv => "inv",
            GateKind::Buf => "buf",
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
        }
    }

    /// Nominal propagation delay in simulator time units.
    pub fn delay(self) -> u64 {
        match self {
            GateKind::Inv | GateKind::Buf => 1,
            GateKind::Nand | GateKind::Nor => 2,
            GateKind::And | GateKind::Or => 3,
            GateKind::Xor | GateKind::Xnor => 4,
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// MOS transistor polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MosKind {
    /// N-channel device (passes 0 when gate is 1).
    Nmos,
    /// P-channel device (passes 1 when gate is 0).
    Pmos,
}

/// A circuit element: a logic gate or a MOS transistor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Device {
    /// A combinational gate driving `output` from `inputs`.
    Gate {
        /// Gate kind.
        kind: GateKind,
        /// Input net indexes.
        inputs: Vec<usize>,
        /// Output net index.
        output: usize,
    },
    /// A rising-edge D flip-flop: `q` samples `d` on each 0→1
    /// transition of `clk`.
    Dff {
        /// Data input net index.
        d: usize,
        /// Clock net index.
        clk: usize,
        /// Output net index.
        q: usize,
    },
    /// A MOS transistor between `source` and `drain`, controlled by
    /// `gate`, with a `width` sizing attribute the optimizers adjust.
    Mos {
        /// Polarity.
        kind: MosKind,
        /// Gate net index.
        gate: usize,
        /// Source net index.
        source: usize,
        /// Drain net index.
        drain: usize,
        /// Channel width in arbitrary units (sized by optimizers).
        width: f64,
    },
}

impl Device {
    /// Returns the net driven by this device (gate output or MOS drain).
    pub fn driven_net(&self) -> usize {
        match self {
            Device::Gate { output, .. } => *output,
            Device::Dff { q, .. } => *q,
            Device::Mos { drain, .. } => *drain,
        }
    }
}

/// A netlist: named nets, port lists, and devices.
///
/// # Examples
///
/// ```
/// use hercules_eda::{GateKind, Netlist};
///
/// let mut n = Netlist::new("inv_chain");
/// let a = n.add_port_in("a");
/// let m = n.add_net("m");
/// let y = n.add_port_out("y");
/// n.add_gate(GateKind::Inv, &[a], m);
/// n.add_gate(GateKind::Inv, &[m], y);
/// assert_eq!(n.gate_count(), 2);
/// let text = n.to_text();
/// let back = Netlist::parse(&text).expect("canonical format round-trips");
/// assert_eq!(back, n);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    /// Circuit name.
    pub name: String,
    nets: Vec<String>,
    inputs: Vec<usize>,
    outputs: Vec<usize>,
    devices: Vec<Device>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: &str) -> Netlist {
        let mut n = Netlist {
            name: name.to_owned(),
            nets: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            devices: Vec::new(),
        };
        // Net 0/1 are the implicit supply rails.
        n.add_net("gnd");
        n.add_net("vdd");
        n
    }

    /// Index of the ground rail.
    pub const GND: usize = 0;
    /// Index of the supply rail.
    pub const VDD: usize = 1;

    /// Adds (or finds) a net by name; returns its index.
    pub fn add_net(&mut self, name: &str) -> usize {
        if let Some(i) = self.net_index(name) {
            return i;
        }
        self.nets.push(name.to_owned());
        self.nets.len() - 1
    }

    /// Adds a net and declares it a primary input.
    pub fn add_port_in(&mut self, name: &str) -> usize {
        let i = self.add_net(name);
        if !self.inputs.contains(&i) {
            self.inputs.push(i);
        }
        i
    }

    /// Adds a net and declares it a primary output.
    pub fn add_port_out(&mut self, name: &str) -> usize {
        let i = self.add_net(name);
        if !self.outputs.contains(&i) {
            self.outputs.push(i);
        }
        i
    }

    /// Adds a gate device.
    pub fn add_gate(&mut self, kind: GateKind, inputs: &[usize], output: usize) {
        self.devices.push(Device::Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
        });
    }

    /// Adds a rising-edge D flip-flop.
    pub fn add_dff(&mut self, d: usize, clk: usize, q: usize) {
        self.devices.push(Device::Dff { d, clk, q });
    }

    /// Adds a MOS transistor with default width 1.0.
    pub fn add_mos(&mut self, kind: MosKind, gate: usize, source: usize, drain: usize) {
        self.devices.push(Device::Mos {
            kind,
            gate,
            source,
            drain,
            width: 1.0,
        });
    }

    /// Returns the index of a net by name.
    pub fn net_index(&self, name: &str) -> Option<usize> {
        self.nets.iter().position(|n| n == name)
    }

    /// Returns a net's name.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn net_name(&self, index: usize) -> &str {
        &self.nets[index]
    }

    /// Returns the number of nets (including the rails).
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Returns the primary input net indexes.
    pub fn inputs(&self) -> &[usize] {
        &self.inputs
    }

    /// Returns the primary output net indexes.
    pub fn outputs(&self) -> &[usize] {
        &self.outputs
    }

    /// Returns the devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Returns mutable access to the devices (for the optimizers'
    /// width adjustments).
    pub fn devices_mut(&mut self) -> &mut [Device] {
        &mut self.devices
    }

    /// Returns the number of gate devices.
    pub fn gate_count(&self) -> usize {
        self.devices
            .iter()
            .filter(|d| matches!(d, Device::Gate { .. }))
            .count()
    }

    /// Returns the number of flip-flops.
    pub fn dff_count(&self) -> usize {
        self.devices
            .iter()
            .filter(|d| matches!(d, Device::Dff { .. }))
            .count()
    }

    /// Returns `true` if the netlist contains flip-flops (sequential
    /// logic).
    pub fn is_sequential(&self) -> bool {
        self.dff_count() > 0
    }

    /// Returns the number of MOS devices.
    pub fn mos_count(&self) -> usize {
        self.devices
            .iter()
            .filter(|d| matches!(d, Device::Mos { .. }))
            .count()
    }

    /// Returns `true` if the netlist contains only gates.
    pub fn is_gate_level(&self) -> bool {
        self.mos_count() == 0
    }

    /// Returns `true` if the netlist contains only transistors.
    pub fn is_transistor_level(&self) -> bool {
        self.gate_count() == 0 && self.dff_count() == 0
    }

    // ------------------------------------------------------------------
    // Canonical text format.
    // ------------------------------------------------------------------

    /// Emits the canonical text form.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, ".circuit {}", self.name);
        // Declare nets in index order so parsing reproduces the exact
        // numbering (rails are implicit).
        for net in &self.nets[2..] {
            let _ = writeln!(out, ".net {net}");
        }
        for &i in &self.inputs {
            let _ = writeln!(out, ".input {}", self.nets[i]);
        }
        for &o in &self.outputs {
            let _ = writeln!(out, ".output {}", self.nets[o]);
        }
        for d in &self.devices {
            match d {
                Device::Gate {
                    kind,
                    inputs,
                    output,
                } => {
                    let ins: Vec<&str> = inputs.iter().map(|&i| self.nets[i].as_str()).collect();
                    let _ = writeln!(
                        out,
                        ".gate {} {} -> {}",
                        kind.keyword(),
                        ins.join(" "),
                        self.nets[*output]
                    );
                }
                Device::Dff { d, clk, q } => {
                    let _ = writeln!(
                        out,
                        ".dff d={} clk={} q={}",
                        self.nets[*d], self.nets[*clk], self.nets[*q]
                    );
                }
                Device::Mos {
                    kind,
                    gate,
                    source,
                    drain,
                    width,
                } => {
                    let kw = match kind {
                        MosKind::Nmos => "nmos",
                        MosKind::Pmos => "pmos",
                    };
                    let _ = writeln!(
                        out,
                        ".{kw} g={} s={} d={} w={width}",
                        self.nets[*gate], self.nets[*source], self.nets[*drain]
                    );
                }
            }
        }
        out.push_str(".end\n");
        out
    }

    /// Emits the canonical text form as bytes (the blob payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_text().into_bytes()
    }

    /// Parses the canonical text form.
    ///
    /// # Errors
    ///
    /// Returns [`EdaError::Parse`] on malformed input.
    pub fn parse(text: &str) -> Result<Netlist, EdaError> {
        let err = |detail: &str| EdaError::Parse {
            what: "netlist".into(),
            detail: detail.to_owned(),
        };
        let mut netlist: Option<Netlist> = None;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let keyword = parts.next().ok_or_else(|| err("empty line"))?;
            match keyword {
                ".circuit" => {
                    let name = parts.next().ok_or_else(|| err("missing circuit name"))?;
                    netlist = Some(Netlist::new(name));
                }
                ".end" => break,
                _ => {
                    let n = netlist
                        .as_mut()
                        .ok_or_else(|| err("directive before .circuit"))?;
                    match keyword {
                        ".net" => {
                            let name = parts.next().ok_or_else(|| err("missing net name"))?;
                            n.add_net(name);
                        }
                        ".input" => {
                            let name = parts.next().ok_or_else(|| err("missing input name"))?;
                            n.add_port_in(name);
                        }
                        ".output" => {
                            let name = parts.next().ok_or_else(|| err("missing output name"))?;
                            n.add_port_out(name);
                        }
                        ".gate" => {
                            let kindkw = parts.next().ok_or_else(|| err("missing gate kind"))?;
                            let kind = GateKind::from_keyword(kindkw).ok_or_else(|| {
                                err(&format!("unknown gate kind `{kindkw}` (line {lineno})"))
                            })?;
                            let rest: Vec<&str> = parts.collect();
                            let arrow = rest
                                .iter()
                                .position(|&t| t == "->")
                                .ok_or_else(|| err("gate missing `->`"))?;
                            if arrow + 2 != rest.len() {
                                return Err(err("gate must have exactly one output"));
                            }
                            let inputs: Vec<usize> =
                                rest[..arrow].iter().map(|t| n.add_net(t)).collect();
                            if inputs.is_empty() {
                                return Err(err("gate has no inputs"));
                            }
                            let output = n.add_net(rest[arrow + 1]);
                            n.add_gate(kind, &inputs, output);
                        }
                        ".dff" => {
                            let mut fields: HashMap<&str, &str> = HashMap::new();
                            for p in parts {
                                let (k, v) =
                                    p.split_once('=').ok_or_else(|| err("bad dff field"))?;
                                fields.insert(k, v);
                            }
                            let get = |k: &str| {
                                fields
                                    .get(k)
                                    .copied()
                                    .ok_or_else(|| err(&format!("dff missing `{k}=`")))
                            };
                            let d = n.add_net(get("d")?);
                            let clk = n.add_net(get("clk")?);
                            let q = n.add_net(get("q")?);
                            n.add_dff(d, clk, q);
                        }
                        ".nmos" | ".pmos" => {
                            let kind = if keyword == ".nmos" {
                                MosKind::Nmos
                            } else {
                                MosKind::Pmos
                            };
                            let mut fields: HashMap<&str, &str> = HashMap::new();
                            for p in parts {
                                let (k, v) =
                                    p.split_once('=').ok_or_else(|| err("bad mos field"))?;
                                fields.insert(k, v);
                            }
                            let get = |k: &str| {
                                fields
                                    .get(k)
                                    .copied()
                                    .ok_or_else(|| err(&format!("mos missing `{k}=`")))
                            };
                            let gate = n.add_net(get("g")?);
                            let source = n.add_net(get("s")?);
                            let drain = n.add_net(get("d")?);
                            let width: f64 = fields
                                .get("w")
                                .map(|w| w.parse())
                                .transpose()
                                .map_err(|_| err("bad width"))?
                                .unwrap_or(1.0);
                            n.devices.push(Device::Mos {
                                kind,
                                gate,
                                source,
                                drain,
                                width,
                            });
                        }
                        other => {
                            return Err(err(&format!(
                                "unknown directive `{other}` (line {lineno})"
                            )))
                        }
                    }
                }
            }
        }
        netlist.ok_or_else(|| err("no .circuit directive"))
    }

    /// Parses the canonical byte form.
    ///
    /// # Errors
    ///
    /// Returns [`EdaError::Parse`] on malformed or non-UTF-8 input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Netlist, EdaError> {
        let text = std::str::from_utf8(bytes).map_err(|_| EdaError::Parse {
            what: "netlist".into(),
            detail: "not utf-8".into(),
        })?;
        Netlist::parse(text)
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} nets, {} gates, {} mos)",
            self.name,
            self.net_count(),
            self.gate_count(),
            self.mos_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nand_chain() -> Netlist {
        let mut n = Netlist::new("chain");
        let a = n.add_port_in("a");
        let b = n.add_port_in("b");
        let m = n.add_net("m");
        let y = n.add_port_out("y");
        n.add_gate(GateKind::Nand, &[a, b], m);
        n.add_gate(GateKind::Inv, &[m], y);
        n
    }

    #[test]
    fn build_and_query() {
        let n = nand_chain();
        assert_eq!(n.net_count(), 6, "gnd, vdd, a, b, m, y");
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.outputs().len(), 1);
        assert_eq!(n.gate_count(), 2);
        assert!(n.is_gate_level());
        assert!(!n.is_transistor_level());
        assert_eq!(n.net_index("m"), Some(4));
        assert_eq!(n.net_name(4), "m");
    }

    #[test]
    fn duplicate_net_names_are_merged() {
        let mut n = Netlist::new("t");
        let a1 = n.add_net("a");
        let a2 = n.add_net("a");
        assert_eq!(a1, a2);
        let p = n.add_port_in("a");
        assert_eq!(p, a1);
        n.add_port_in("a");
        assert_eq!(n.inputs().len(), 1, "ports deduplicate");
    }

    #[test]
    fn text_round_trip_gate_level() {
        let n = nand_chain();
        let text = n.to_text();
        assert!(text.contains(".gate nand a b -> m"));
        let back = Netlist::parse(&text).expect("valid");
        assert_eq!(back, n);
    }

    #[test]
    fn text_round_trip_transistor_level() {
        let mut n = Netlist::new("inv");
        let a = n.add_port_in("a");
        let y = n.add_port_out("y");
        n.add_mos(MosKind::Pmos, a, Netlist::VDD, y);
        n.add_mos(MosKind::Nmos, a, Netlist::GND, y);
        let text = n.to_text();
        assert!(text.contains(".pmos g=a s=vdd d=y w=1"));
        let back = Netlist::parse(&text).expect("valid");
        assert_eq!(back, n);
        assert!(back.is_transistor_level());
    }

    #[test]
    fn parse_errors() {
        assert!(Netlist::parse("").is_err());
        assert!(Netlist::parse(".input a").is_err());
        assert!(Netlist::parse(".circuit c\n.gate frob a -> y").is_err());
        assert!(Netlist::parse(".circuit c\n.gate and a b y").is_err());
        assert!(Netlist::parse(".circuit c\n.gate and -> y").is_err());
        assert!(Netlist::parse(".circuit c\n.nmos g=a s=b").is_err());
        assert!(Netlist::parse(".circuit c\n.frob x").is_err());
        assert!(Netlist::from_bytes(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let n = Netlist::parse(".circuit c\n# a comment\n\n.input a\n.end\n").expect("ok");
        assert_eq!(n.inputs().len(), 1);
    }

    #[test]
    fn dff_text_round_trip_and_counts() {
        let mut n = Netlist::new("seq");
        let d = n.add_port_in("d");
        let clk = n.add_port_in("clk");
        let q = n.add_port_out("q");
        n.add_dff(d, clk, q);
        assert_eq!(n.dff_count(), 1);
        assert!(n.is_sequential());
        assert!(n.is_gate_level(), "dffs live at gate level");
        assert!(!n.is_transistor_level());
        let back = Netlist::parse(&n.to_text()).expect("ok");
        assert_eq!(back, n);
        assert!(Netlist::parse(".circuit c\n.dff d=a clk=b").is_err());
    }

    #[test]
    fn gate_kind_keywords_round_trip() {
        for kind in [
            GateKind::Inv,
            GateKind::Buf,
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            assert_eq!(GateKind::from_keyword(kind.keyword()), Some(kind));
            assert!(kind.delay() >= 1);
        }
        assert_eq!(GateKind::from_keyword("flux"), None);
    }
}
