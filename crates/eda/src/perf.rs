//! Performance analysis: the `Performance` entity produced by the
//! `Simulator` task of Fig. 1.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::device::DeviceModels;
use crate::error::EdaError;
use crate::logic_sim::{simulate, NetDelays, SimResult};
use crate::netlist::Netlist;
use crate::stimuli::Stimuli;

/// Per-output timing of one simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutputTiming {
    /// Output net name.
    pub net: String,
    /// Time of the last change on this output.
    pub settle_time: u64,
    /// Number of transitions observed.
    pub transitions: usize,
}

/// A circuit performance report: the artifact the simulator produces
/// and the plotter consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Performance {
    /// Circuit name.
    pub circuit: String,
    /// Stimulus-set name.
    pub stimuli: String,
    /// Worst-case output settle time (critical delay), scaled by the
    /// device models' drive strength.
    pub delay: f64,
    /// Total transitions across all nets (dynamic activity).
    pub transitions: usize,
    /// Estimated dynamic power: activity × Vdd².
    pub power: f64,
    /// Gate evaluations spent by the simulator.
    pub evaluations: u64,
    /// Per-output detail.
    pub outputs: Vec<OutputTiming>,
}

impl Performance {
    /// Analyzes a gate-level netlist under stimuli and device models,
    /// with optional extracted parasitics.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (wrong netlist level, unknown
    /// signals).
    pub fn analyze(
        netlist: &Netlist,
        stimuli: &Stimuli,
        models: &DeviceModels,
        parasitics: &NetDelays,
    ) -> Result<Performance, EdaError> {
        let result = simulate(netlist, stimuli, parasitics)?;
        Ok(Performance::from_sim(netlist, stimuli, models, &result))
    }

    /// Builds the report from an existing simulation result.
    pub fn from_sim(
        netlist: &Netlist,
        stimuli: &Stimuli,
        models: &DeviceModels,
        result: &SimResult,
    ) -> Performance {
        // Drive strength scales delay inversely: weaker k = slower.
        let strength = (models.nmos.k + models.pmos.k) / 2.0;
        let outputs: Vec<OutputTiming> = netlist
            .outputs()
            .iter()
            .map(|&o| OutputTiming {
                net: netlist.net_name(o).to_owned(),
                settle_time: result.waves[o].last_change(),
                transitions: result.waves[o].transitions(),
            })
            .collect();
        let worst = outputs.iter().map(|o| o.settle_time).max().unwrap_or(0);
        let transitions = result.total_transitions();
        Performance {
            circuit: netlist.name.clone(),
            stimuli: stimuli.name.clone(),
            delay: worst as f64 / strength.max(1e-9),
            transitions,
            power: transitions as f64 * models.vdd * models.vdd,
            evaluations: result.evaluations,
            outputs,
        }
    }

    /// Emits the canonical byte form (JSON).
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("performance serializes")
    }

    /// Parses the canonical byte form.
    ///
    /// # Errors
    ///
    /// Returns [`EdaError::Parse`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Performance, EdaError> {
        serde_json::from_slice(bytes).map_err(|e| EdaError::Parse {
            what: "performance".into(),
            detail: e.to_string(),
        })
    }

    /// Returns the settle-time series (output name, time) used by the
    /// plotter.
    pub fn series(&self) -> Vec<(&str, u64)> {
        self.outputs
            .iter()
            .map(|o| (o.net.as_str(), o.settle_time))
            .collect()
    }
}

/// Computes extracted-parasitic delays from wire lengths: one extra
/// time unit per `units_per_delay` of wire attached to each net.
pub fn parasitics_from_wire_lengths(
    wire_lengths: &HashMap<usize, u64>,
    units_per_delay: u64,
) -> NetDelays {
    wire_lengths
        .iter()
        .map(|(&net, &len)| (net, len / units_per_delay.max(1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells;

    fn adder_perf(models: &DeviceModels) -> Performance {
        let n = cells::full_adder();
        let s = Stimuli::exhaustive(&["a", "b", "cin"], 50);
        Performance::analyze(&n, &s, models, &NetDelays::default()).expect("ok")
    }

    #[test]
    fn report_contains_outputs_and_positive_delay() {
        let p = adder_perf(&DeviceModels::default_1993());
        assert_eq!(p.circuit, "full_adder");
        assert_eq!(p.outputs.len(), 2);
        assert!(p.delay > 0.0);
        assert!(p.power > 0.0);
        assert!(p.evaluations > 0);
        assert_eq!(p.series().len(), 2);
    }

    #[test]
    fn weaker_models_report_longer_delay() {
        let strong = DeviceModels::default_1993();
        let mut weak = strong.clone();
        weak.nmos.k = 0.5;
        weak.pmos.k = 0.2;
        let p_strong = adder_perf(&strong);
        let p_weak = adder_perf(&weak);
        assert!(p_weak.delay > p_strong.delay);
    }

    #[test]
    fn parasitics_increase_delay() {
        let n = cells::full_adder();
        let s = Stimuli::exhaustive(&["a", "b", "cin"], 50);
        let m = DeviceModels::default_1993();
        let ideal = Performance::analyze(&n, &s, &m, &NetDelays::default()).expect("ok");
        let mut heavy = NetDelays::default();
        for i in 0..n.net_count() {
            heavy.insert(i, 5);
        }
        let loaded = Performance::analyze(&n, &s, &m, &heavy).expect("ok");
        assert!(loaded.delay > ideal.delay);
    }

    #[test]
    fn byte_round_trip() {
        let p = adder_perf(&DeviceModels::default_1993());
        let back = Performance::from_bytes(&p.to_bytes()).expect("ok");
        assert_eq!(back, p);
        assert!(Performance::from_bytes(b"not json").is_err());
    }

    #[test]
    fn wire_length_conversion() {
        let mut lens = HashMap::new();
        lens.insert(3usize, 100u64);
        lens.insert(4usize, 9u64);
        let d = parasitics_from_wire_lengths(&lens, 10);
        assert_eq!(d.get(&3), Some(&10));
        assert_eq!(d.get(&4), Some(&0));
    }
}
