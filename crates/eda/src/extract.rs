//! The extractor tool (the `Extractor` of Fig. 1): layout →
//! extracted netlist + extraction statistics.
//!
//! The extracted netlist carries wire parasitics, so simulating it gives
//! different (slower) performance than the ideal netlist — the
//! difference that makes the Fig. 8 verification flow worth running.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::EdaError;
use crate::layout::Layout;
use crate::logic_sim::NetDelays;
use crate::netlist::Netlist;

/// An extracted netlist: the recovered connectivity plus per-net wire
/// lengths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtractedNetlist {
    /// The recovered gate-level netlist.
    pub netlist: Netlist,
    /// Per-net wire lengths (net name → layout units).
    pub wire_lengths: Vec<(String, i64)>,
}

impl ExtractedNetlist {
    /// Converts the wire lengths into simulator net delays for the
    /// recovered netlist, at `units_per_delay` layout units per time
    /// unit.
    pub fn parasitics(&self, units_per_delay: i64) -> NetDelays {
        let mut out = NetDelays::default();
        for (name, len) in &self.wire_lengths {
            if let Some(net) = self.netlist.net_index(name) {
                out.insert(net, (*len / units_per_delay.max(1)) as u64);
            }
        }
        out
    }

    /// Emits the canonical byte form (JSON).
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("extracted netlist serializes")
    }

    /// Parses the canonical byte form.
    ///
    /// # Errors
    ///
    /// Returns [`EdaError::Parse`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<ExtractedNetlist, EdaError> {
        serde_json::from_slice(bytes).map_err(|e| EdaError::Parse {
            what: "extracted netlist".into(),
            detail: e.to_string(),
        })
    }
}

/// Extraction statistics (the `ExtractionStatistics` entity — the second
/// output of the same extraction subtask in Fig. 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtractionStatistics {
    /// Layout name.
    pub layout: String,
    /// Cells recovered.
    pub cell_count: usize,
    /// Nets recovered.
    pub net_count: usize,
    /// Total estimated wire length.
    pub total_wire_length: i64,
    /// Placement bounding-box area.
    pub area: i64,
}

impl ExtractionStatistics {
    /// Emits the canonical byte form (JSON).
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("statistics serialize")
    }

    /// Parses the canonical byte form.
    ///
    /// # Errors
    ///
    /// Returns [`EdaError::Parse`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<ExtractionStatistics, EdaError> {
        serde_json::from_slice(bytes).map_err(|e| EdaError::Parse {
            what: "extraction statistics".into(),
            detail: e.to_string(),
        })
    }
}

/// Extracts the netlist and statistics from a layout — one tool
/// invocation, two outputs (Fig. 5's multi-output subtask).
///
/// # Examples
///
/// ```
/// use hercules_eda::{cells, extract, place, PlacementRules};
///
/// # fn main() -> Result<(), hercules_eda::EdaError> {
/// let adder = cells::full_adder();
/// let layout = place(&adder, &PlacementRules::default())?;
/// let (extracted, stats) = extract(&layout);
/// assert_eq!(extracted.netlist.gate_count(), adder.gate_count());
/// assert_eq!(stats.cell_count, adder.gate_count());
/// # Ok(())
/// # }
/// ```
pub fn extract(layout: &Layout) -> (ExtractedNetlist, ExtractionStatistics) {
    let mut netlist = Netlist::new(&format!("{}_extracted", layout.name));
    for i in &layout.inputs {
        netlist.add_port_in(i);
    }
    for o in &layout.outputs {
        netlist.add_port_out(o);
    }
    for cell in &layout.cells {
        let inputs: Vec<usize> = cell.inputs.iter().map(|n| netlist.add_net(n)).collect();
        let output = netlist.add_net(&cell.output);
        netlist.add_gate(cell.kind, &inputs, output);
    }
    let wire_lengths = layout.wire_lengths();
    let stats = ExtractionStatistics {
        layout: layout.name.clone(),
        cell_count: layout.cells.len(),
        net_count: netlist.net_count(),
        total_wire_length: layout.total_wire_length(),
        area: layout.area(),
    };
    (
        ExtractedNetlist {
            netlist,
            wire_lengths,
        },
        stats,
    )
}

/// Convenience: per-net wire lengths by net index for a netlist.
pub fn wire_length_index(extracted: &ExtractedNetlist) -> HashMap<usize, i64> {
    extracted
        .wire_lengths
        .iter()
        .filter_map(|(name, len)| extracted.netlist.net_index(name).map(|i| (i, *len)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells;
    use crate::device::DeviceModels;
    use crate::perf::Performance;
    use crate::place::{place, PlacementRules};
    use crate::stimuli::Stimuli;

    #[test]
    fn extraction_recovers_function() {
        let n = cells::full_adder();
        let layout = place(&n, &PlacementRules::default()).expect("ok");
        let (ex, stats) = extract(&layout);
        assert_eq!(ex.netlist.gate_count(), n.gate_count());
        assert_eq!(stats.cell_count, 5);
        assert!(stats.area > 0);
        assert!(stats.total_wire_length > 0);

        // Function preserved: exhaustive simulation matches.
        let s = Stimuli::exhaustive(&["a", "b", "cin"], 100);
        let m = DeviceModels::default_1993();
        let ideal = Performance::analyze(&n, &s, &m, &Default::default()).expect("ok");
        let recovered = Performance::analyze(&ex.netlist, &s, &m, &Default::default()).expect("ok");
        assert_eq!(ideal.transitions, recovered.transitions);
    }

    #[test]
    fn parasitics_make_extracted_netlist_slower() {
        let n = cells::ripple_adder(8);
        let layout = place(&n, &PlacementRules::default()).expect("ok");
        let (ex, _) = extract(&layout);
        let inputs: Vec<String> = (0..8)
            .flat_map(|i| [format!("a{i}"), format!("b{i}")])
            .chain(["cin".to_owned()])
            .collect();
        let input_refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
        let s = Stimuli::random(&input_refs, 16, 200, 7);
        let m = DeviceModels::default_1993();

        let ideal = Performance::analyze(&ex.netlist, &s, &m, &Default::default()).expect("ok");
        let loaded = Performance::analyze(&ex.netlist, &s, &m, &ex.parasitics(4)).expect("ok");
        assert!(
            loaded.delay > ideal.delay,
            "wire parasitics must slow the circuit: {} vs {}",
            loaded.delay,
            ideal.delay
        );
    }

    #[test]
    fn byte_round_trips() {
        let n = cells::full_adder();
        let layout = place(&n, &PlacementRules::default()).expect("ok");
        let (ex, stats) = extract(&layout);
        assert_eq!(
            ExtractedNetlist::from_bytes(&ex.to_bytes()).expect("ok"),
            ex
        );
        assert_eq!(
            ExtractionStatistics::from_bytes(&stats.to_bytes()).expect("ok"),
            stats
        );
        assert!(ExtractedNetlist::from_bytes(b"x").is_err());
        assert!(ExtractionStatistics::from_bytes(b"x").is_err());
    }

    #[test]
    fn wire_length_index_maps_names_to_indexes() {
        let n = cells::full_adder();
        let layout = place(&n, &PlacementRules::default()).expect("ok");
        let (ex, _) = extract(&layout);
        let idx = wire_length_index(&ex);
        assert!(!idx.is_empty());
        for (net, len) in &idx {
            assert!(*net < ex.netlist.net_count());
            assert!(*len >= 0);
        }
    }
}
