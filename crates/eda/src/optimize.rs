//! Statistical circuit optimizers.
//!
//! §3.3: "we have encapsulated three statistical circuit optimization
//! tools that take exactly the same input arguments and produce the same
//! type of output using this technique [shared encapsulation code]."
//! The three tools here — hill climbing, annealing, random search — all
//! have the signature `(netlist, device models, budget, seed) →
//! optimized netlist + report`, sizing MOS widths to minimize expected
//! delay under Monte-Carlo process variation.

use rand::Rng as _;
use rand::SeedableRng as _;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::device::DeviceModels;
use crate::error::EdaError;
use crate::netlist::{Device, MosKind, Netlist};

/// Which of the three optimizers to run. All three share this module's
/// encapsulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Greedy coordinate hill climbing.
    HillClimb,
    /// Simulated annealing with a geometric cooling schedule.
    Anneal,
    /// Pure random search (the baseline of baselines).
    RandomSearch,
}

impl OptimizerKind {
    /// All three tools, in catalog order.
    pub fn all() -> [OptimizerKind; 3] {
        [
            OptimizerKind::HillClimb,
            OptimizerKind::Anneal,
            OptimizerKind::RandomSearch,
        ]
    }

    /// Display name used for tool instances.
    pub fn name(self) -> &'static str {
        match self {
            OptimizerKind::HillClimb => "hillclimb",
            OptimizerKind::Anneal => "anneal",
            OptimizerKind::RandomSearch => "random-search",
        }
    }
}

/// The optimization report accompanying the optimized netlist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptReport {
    /// Optimizer that ran.
    pub kind: OptimizerKind,
    /// Cost of the input sizing.
    pub initial_cost: f64,
    /// Cost of the final sizing.
    pub final_cost: f64,
    /// Cost evaluations spent.
    pub evaluations: u64,
}

impl OptReport {
    /// Relative improvement, 0 when the optimizer achieved nothing.
    pub fn improvement(&self) -> f64 {
        if self.initial_cost <= 0.0 {
            return 0.0;
        }
        (self.initial_cost - self.final_cost) / self.initial_cost
    }
}

/// Expected-cost model: Monte-Carlo over process variation.
///
/// Per transistor: delay ≈ load / (k · width), with `k` sampled around
/// the model value; area penalty proportional to total width. The load
/// of a device is the fan-out of its drain net.
pub fn cost(netlist: &Netlist, models: &DeviceModels, samples: u32, seed: u64) -> f64 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut fanout = vec![0u32; netlist.net_count()];
    for d in netlist.devices() {
        if let Device::Mos { gate, .. } = d {
            fanout[*gate] += 1;
        }
    }
    let mut total = 0.0;
    for _ in 0..samples.max(1) {
        let mut sample_cost = 0.0;
        for d in netlist.devices() {
            if let Device::Mos {
                kind, drain, width, ..
            } = d
            {
                let m = match kind {
                    MosKind::Nmos => &models.nmos,
                    MosKind::Pmos => &models.pmos,
                };
                // Uniform variation in ±2 sigma, deterministic per seed.
                let variation = 1.0 + m.sigma * (rng.random::<f64>() * 4.0 - 2.0);
                let k = (m.k * variation).max(1e-6);
                let load = 1.0 + f64::from(fanout[*drain]);
                sample_cost += load / (k * width.max(0.05));
            }
        }
        total += sample_cost;
    }
    let area: f64 = netlist
        .devices()
        .iter()
        .filter_map(|d| match d {
            Device::Mos { width, .. } => Some(*width),
            Device::Gate { .. } | Device::Dff { .. } => None,
        })
        .sum();
    total / f64::from(samples.max(1)) + 0.1 * area
}

fn widths(netlist: &Netlist) -> Vec<f64> {
    netlist
        .devices()
        .iter()
        .filter_map(|d| match d {
            Device::Mos { width, .. } => Some(*width),
            Device::Gate { .. } | Device::Dff { .. } => None,
        })
        .collect()
}

fn set_widths(netlist: &mut Netlist, ws: &[f64]) {
    let mut i = 0;
    for d in netlist.devices_mut() {
        if let Device::Mos { width, .. } = d {
            *width = ws[i].clamp(0.1, 16.0);
            i += 1;
        }
    }
}

/// Runs one of the three optimizers for `budget` cost evaluations.
/// Returns the re-sized netlist and its report. Deterministic per seed.
///
/// # Errors
///
/// Returns [`EdaError::NothingToOptimize`] for netlists without MOS
/// devices.
///
/// # Examples
///
/// ```
/// use hercules_eda::{cosmos, optimize, DeviceModels, OptimizerKind};
///
/// # fn main() -> Result<(), hercules_eda::EdaError> {
/// let netlist = cosmos::nand2_transistors();
/// let models = DeviceModels::default_1993();
/// let (better, report) =
///     optimize(OptimizerKind::HillClimb, &netlist, &models, 200, 1)?;
/// assert!(report.final_cost <= report.initial_cost);
/// assert_eq!(better.mos_count(), netlist.mos_count());
/// # Ok(())
/// # }
/// ```
pub fn optimize(
    kind: OptimizerKind,
    netlist: &Netlist,
    models: &DeviceModels,
    budget: u64,
    seed: u64,
) -> Result<(Netlist, OptReport), EdaError> {
    let mut current = netlist.clone();
    let n_widths = widths(&current).len();
    if n_widths == 0 {
        return Err(EdaError::NothingToOptimize);
    }
    let samples = 8u32;
    let mut evaluations = 0u64;
    let eval = |n: &Netlist, evals: &mut u64| {
        *evals += 1;
        cost(n, models, samples, seed)
    };
    let initial_cost = eval(&current, &mut evaluations);
    let mut current_cost = initial_cost;
    let mut best = current.clone();
    let mut best_cost = current_cost;
    let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(kind as u64));

    while evaluations < budget {
        let mut ws = widths(&current);
        match kind {
            OptimizerKind::HillClimb => {
                let i = rng.random_range(0..n_widths);
                let step = if rng.random::<bool>() { 1.25 } else { 0.8 };
                ws[i] *= step;
                let mut cand = current.clone();
                set_widths(&mut cand, &ws);
                let c = eval(&cand, &mut evaluations);
                if c < current_cost {
                    current = cand;
                    current_cost = c;
                }
            }
            OptimizerKind::Anneal => {
                let i = rng.random_range(0..n_widths);
                ws[i] *= 1.0 + (rng.random::<f64>() - 0.5);
                let mut cand = current.clone();
                set_widths(&mut cand, &ws);
                let c = eval(&cand, &mut evaluations);
                let temp = 1.0 * (1.0 - evaluations as f64 / budget as f64).max(1e-3);
                let accept =
                    c < current_cost || rng.random::<f64>() < (-(c - current_cost) / temp).exp();
                if accept {
                    current = cand;
                    current_cost = c;
                }
            }
            OptimizerKind::RandomSearch => {
                for w in ws.iter_mut() {
                    *w = 0.1 + rng.random::<f64>() * 7.9;
                }
                let mut cand = current.clone();
                set_widths(&mut cand, &ws);
                current_cost = eval(&cand, &mut evaluations);
                current = cand;
            }
        }
        if current_cost < best_cost {
            best_cost = current_cost;
            best = current.clone();
        }
    }

    let mut optimized = best;
    optimized.name = format!("{}_opt_{}", netlist.name, kind.name());
    Ok((
        optimized,
        OptReport {
            kind,
            initial_cost,
            final_cost: best_cost,
            evaluations,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosmos::nand2_transistors;

    #[test]
    fn all_three_optimizers_improve_or_hold() {
        let n = nand2_transistors();
        let m = DeviceModels::default_1993();
        for kind in OptimizerKind::all() {
            let (out, report) = optimize(kind, &n, &m, 300, 7).expect("ok");
            assert!(
                report.final_cost <= report.initial_cost,
                "{kind:?} regressed"
            );
            assert!(report.improvement() >= 0.0);
            assert_eq!(out.mos_count(), n.mos_count());
            assert!(out.name.contains(kind.name()));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let n = nand2_transistors();
        let m = DeviceModels::default_1993();
        let (a, ra) = optimize(OptimizerKind::Anneal, &n, &m, 200, 11).expect("ok");
        let (b, rb) = optimize(OptimizerKind::Anneal, &n, &m, 200, 11).expect("ok");
        assert_eq!(a, b);
        assert_eq!(ra, rb);
        let (_, rc) = optimize(OptimizerKind::Anneal, &n, &m, 200, 12).expect("ok");
        assert_ne!(ra.final_cost, rc.final_cost);
    }

    #[test]
    fn hill_climb_beats_random_search_on_average() {
        let n = nand2_transistors();
        let m = DeviceModels::default_1993();
        let mut hc_total = 0.0;
        let mut rs_total = 0.0;
        for seed in 0..5 {
            hc_total += optimize(OptimizerKind::HillClimb, &n, &m, 400, seed)
                .expect("ok")
                .1
                .final_cost;
            rs_total += optimize(OptimizerKind::RandomSearch, &n, &m, 400, seed)
                .expect("ok")
                .1
                .final_cost;
        }
        assert!(
            hc_total <= rs_total * 1.05,
            "hill climbing should be at least competitive: {hc_total} vs {rs_total}"
        );
    }

    #[test]
    fn gate_level_netlist_has_nothing_to_optimize() {
        let n = crate::cells::full_adder();
        let m = DeviceModels::default_1993();
        assert_eq!(
            optimize(OptimizerKind::HillClimb, &n, &m, 10, 0).unwrap_err(),
            EdaError::NothingToOptimize
        );
    }

    #[test]
    fn widths_stay_in_bounds() {
        let n = nand2_transistors();
        let m = DeviceModels::default_1993();
        let (out, _) = optimize(OptimizerKind::RandomSearch, &n, &m, 100, 3).expect("ok");
        for d in out.devices() {
            if let Device::Mos { width, .. } = d {
                assert!(*width >= 0.1 && *width <= 16.0);
            }
        }
    }

    #[test]
    fn cost_is_deterministic() {
        let n = nand2_transistors();
        let m = DeviceModels::default_1993();
        assert_eq!(cost(&n, &m, 8, 5), cost(&n, &m, 8, 5));
    }
}
