//! The plotter tool (the `Plotter` of Fig. 1): renders performance
//! reports and waveforms as ASCII plots (the `PerformancePlot` entity).

use serde::{Deserialize, Serialize};

use crate::error::EdaError;
use crate::perf::Performance;
use crate::signal::{Logic, Waveform};

/// A rendered plot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Plot {
    /// Plot title.
    pub title: String,
    /// Rendered text lines.
    pub lines: Vec<String>,
}

impl Plot {
    /// Renders a bar chart of output settle times from a performance
    /// report.
    ///
    /// # Examples
    ///
    /// ```
    /// use hercules_eda::{cells, DeviceModels, Performance, Plot, Stimuli};
    ///
    /// # fn main() -> Result<(), hercules_eda::EdaError> {
    /// let adder = cells::full_adder();
    /// let stim = Stimuli::exhaustive(&["a", "b", "cin"], 50);
    /// let perf = Performance::analyze(
    ///     &adder, &stim, &DeviceModels::default_1993(), &Default::default())?;
    /// let plot = Plot::from_performance(&perf);
    /// assert!(plot.to_text().contains("sum"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_performance(perf: &Performance) -> Plot {
        let series = perf.series();
        let max = series.iter().map(|&(_, v)| v).max().unwrap_or(0).max(1);
        let width = 40usize;
        let name_w = series.iter().map(|(n, _)| n.len()).max().unwrap_or(4);
        let mut lines = Vec::new();
        lines.push(format!(
            "circuit {} / stimuli {} (delay {:.1}, power {:.0})",
            perf.circuit, perf.stimuli, perf.delay, perf.power
        ));
        for (name, v) in series {
            let bars = (v as usize * width) / max as usize;
            lines.push(format!(
                "{name:<name_w$} | {}{} {v}",
                "#".repeat(bars),
                " ".repeat(width - bars)
            ));
        }
        Plot {
            title: format!("settle times: {}", perf.circuit),
            lines,
        }
    }

    /// Renders waveforms as timing diagrams, one row per signal, with
    /// `end_time / width` time units per column.
    pub fn from_waveforms(title: &str, waves: &[(&str, &Waveform)], end_time: u64) -> Plot {
        let width = 60usize;
        let name_w = waves.iter().map(|(n, _)| n.len()).max().unwrap_or(4);
        let mut lines = Vec::new();
        for (name, w) in waves {
            let mut row = String::new();
            for col in 0..width {
                let t = end_time * col as u64 / width.max(1) as u64;
                row.push(match w.at(t) {
                    Logic::Zero => '_',
                    Logic::One => '#',
                    Logic::X => 'x',
                    Logic::Z => '.',
                });
            }
            lines.push(format!("{name:<name_w$} {row}"));
        }
        Plot {
            title: title.to_owned(),
            lines,
        }
    }

    /// Returns the full rendered text.
    pub fn to_text(&self) -> String {
        let mut out = format!("== {} ==\n", self.title);
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    /// Emits the canonical byte form (JSON).
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("plot serializes")
    }

    /// Parses the canonical byte form.
    ///
    /// # Errors
    ///
    /// Returns [`EdaError::Parse`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Plot, EdaError> {
        serde_json::from_slice(bytes).map_err(|e| EdaError::Parse {
            what: "plot".into(),
            detail: e.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells;
    use crate::device::DeviceModels;
    use crate::stimuli::Stimuli;

    fn perf() -> Performance {
        let adder = cells::full_adder();
        let stim = Stimuli::exhaustive(&["a", "b", "cin"], 50);
        Performance::analyze(
            &adder,
            &stim,
            &DeviceModels::default_1993(),
            &Default::default(),
        )
        .expect("ok")
    }

    #[test]
    fn performance_plot_shows_every_output() {
        let plot = Plot::from_performance(&perf());
        let text = plot.to_text();
        assert!(text.contains("sum"));
        assert!(text.contains("cout"));
        assert!(text.contains('#'));
    }

    #[test]
    fn waveform_plot_shows_levels() {
        let mut w = Waveform::new();
        w.push(0, Logic::Zero);
        w.push(30, Logic::One);
        let plot = Plot::from_waveforms("t", &[("sig", &w)], 60);
        let text = plot.to_text();
        assert!(text.contains('_'), "low level drawn");
        assert!(text.contains('#'), "high level drawn");
        assert!(text.starts_with("== t =="));
    }

    #[test]
    fn byte_round_trip() {
        let plot = Plot::from_performance(&perf());
        assert_eq!(Plot::from_bytes(&plot.to_bytes()).expect("ok"), plot);
        assert!(Plot::from_bytes(b"x").is_err());
    }
}
