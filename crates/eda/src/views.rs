//! Multiple views of a cell (Fig. 7) and the circuit composite.
//!
//! "Designers often think of a design in terms of different views such
//! as a logic view, a transistor level view, or a physical view"; flows
//! represent the transformations between them (Fig. 8).

use serde::{Deserialize, Serialize};

use crate::cells;
use crate::device::DeviceModels;
use crate::error::EdaError;
use crate::layout::Layout;
use crate::netlist::Netlist;
use crate::place::{place, PlacementRules};

/// The three views of Fig. 7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellViews {
    /// Gate-level (logic) view.
    pub logic: Netlist,
    /// Transistor-level view.
    pub transistor: Netlist,
    /// Physical (layout) view.
    pub physical: Layout,
}

/// Builds the three views of the Fig. 7 inverter cell.
///
/// # Examples
///
/// ```
/// let views = hercules_eda::views::inverter_views();
/// assert!(views.logic.is_gate_level());
/// assert!(views.transistor.is_transistor_level());
/// assert_eq!(views.physical.cells.len(), 1);
/// ```
pub fn inverter_views() -> CellViews {
    let logic = cells::inverter();
    let transistor = cells::inverter_transistors();
    let physical = place(&logic, &PlacementRules::default()).expect("inverter places");
    CellViews {
        logic,
        transistor,
        physical,
    }
}

/// The `Circuit` composite entity of Fig. 1: device models grouped with
/// a netlist. Its implicit *composition function* checks consistency —
/// "can these device models be used with this circuit?" (§3.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    /// The grouped device models.
    pub models: DeviceModels,
    /// The grouped netlist.
    pub netlist: Netlist,
}

impl Circuit {
    /// Composes models and a netlist, running the implicit consistency
    /// check: a transistor-level netlist needs a positive supply and
    /// nonzero transconductances.
    ///
    /// # Errors
    ///
    /// Returns [`EdaError::Incomparable`] when the models cannot drive
    /// the netlist.
    pub fn compose(models: DeviceModels, netlist: Netlist) -> Result<Circuit, EdaError> {
        if models.vdd <= 0.0 {
            return Err(EdaError::Incomparable {
                reason: "device models have a non-positive supply".into(),
            });
        }
        if netlist.mos_count() > 0 && (models.nmos.k <= 0.0 || models.pmos.k <= 0.0) {
            return Err(EdaError::Incomparable {
                reason: "zero transconductance cannot drive transistors".into(),
            });
        }
        Ok(Circuit { models, netlist })
    }

    /// The implicit *decomposition function*: splits the composite back
    /// into its parts.
    pub fn decompose(self) -> (DeviceModels, Netlist) {
        (self.models, self.netlist)
    }

    /// Emits the canonical byte form (JSON).
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("circuit serializes")
    }

    /// Parses the canonical byte form.
    ///
    /// # Errors
    ///
    /// Returns [`EdaError::Parse`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Circuit, EdaError> {
        serde_json::from_slice(bytes).map_err(|e| EdaError::Parse {
            what: "circuit".into(),
            detail: e.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract;
    use crate::verify::verify;

    #[test]
    fn inverter_views_are_consistent() {
        let v = inverter_views();
        // Physical view corresponds to logic view (Fig. 8b, at the
        // inverter scale): extract and compare.
        let (ex, _) = extract(&v.physical);
        let report = verify(&v.logic, &ex.netlist).expect("comparable");
        assert!(report.matched);
    }

    #[test]
    fn compose_checks_consistency() {
        let m = DeviceModels::default_1993();
        let n = cells::inverter_transistors();
        let c = Circuit::compose(m.clone(), n.clone()).expect("consistent");
        let (m2, n2) = c.decompose();
        assert_eq!(m2, m);
        assert_eq!(n2, n);

        let mut bad = m.clone();
        bad.vdd = 0.0;
        assert!(Circuit::compose(bad, n.clone()).is_err());

        let mut weak = m;
        weak.nmos.k = 0.0;
        assert!(Circuit::compose(weak.clone(), n).is_err());
        // Gate-level netlists do not care about transconductance.
        assert!(Circuit::compose(weak, cells::inverter()).is_ok());
    }

    #[test]
    fn circuit_round_trips_as_bytes() {
        let c = Circuit::compose(DeviceModels::default_1993(), cells::full_adder()).expect("ok");
        assert_eq!(Circuit::from_bytes(&c.to_bytes()).expect("ok"), c);
        assert!(Circuit::from_bytes(b"x").is_err());
    }
}
