//! Event-driven gate-level logic simulator (the `Simulator` tool of
//! Fig. 1).
//!
//! A classic event wheel: input events from the stimuli and gate
//! re-evaluations propagate through the netlist with per-gate-kind
//! delays, producing a [`Waveform`] per net.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::error::EdaError;
use crate::netlist::{Device, GateKind, Netlist};
use crate::signal::{Logic, Waveform};
use crate::stimuli::Stimuli;

/// The result of a gate-level simulation: one waveform per net, plus
/// bookkeeping used by the performance analyzer.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Waveforms indexed like the netlist's nets.
    pub waves: Vec<Waveform>,
    /// Net names, for lookup by name.
    pub net_names: Vec<String>,
    /// Total gate evaluations performed.
    pub evaluations: u64,
    /// Simulation end time.
    pub end_time: u64,
}

impl SimResult {
    /// Returns the waveform of a named net.
    pub fn wave(&self, net: &str) -> Option<&Waveform> {
        self.net_names
            .iter()
            .position(|n| n == net)
            .map(|i| &self.waves[i])
    }

    /// Returns the total number of transitions across all nets (a
    /// dynamic-power proxy).
    pub fn total_transitions(&self) -> usize {
        self.waves.iter().map(Waveform::transitions).sum()
    }
}

/// Extra per-net delays (e.g. extracted wire parasitics), keyed by net
/// index; absent nets add zero.
pub type NetDelays = HashMap<usize, u64>;

/// Simulates a gate-level netlist under the given stimuli.
///
/// `extra_delay` models post-layout parasitics: each gate's propagation
/// delay is increased by the delay attached to its output net, so an
/// extracted netlist simulates slower than the ideal one.
///
/// # Errors
///
/// * [`EdaError::WrongNetlistLevel`] for transistor-level input (use the
///   switch-level simulator);
/// * [`EdaError::UnknownSignal`] if the stimuli drive a net that does
///   not exist.
///
/// # Examples
///
/// ```
/// use hercules_eda::{simulate, GateKind, Logic, Netlist, Stimuli};
///
/// # fn main() -> Result<(), hercules_eda::EdaError> {
/// let mut n = Netlist::new("inv");
/// let a = n.add_port_in("a");
/// let y = n.add_port_out("y");
/// n.add_gate(GateKind::Inv, &[a], y);
///
/// let mut s = Stimuli::new("step");
/// s.set(0, "a", Logic::Zero);
/// s.set(10, "a", Logic::One);
///
/// let result = simulate(&n, &s, &Default::default())?;
/// assert_eq!(result.wave("y").expect("exists").at(11), Logic::Zero);
/// # Ok(())
/// # }
/// ```
pub fn simulate(
    netlist: &Netlist,
    stimuli: &Stimuli,
    extra_delay: &NetDelays,
) -> Result<SimResult, EdaError> {
    if !netlist.is_gate_level() {
        return Err(EdaError::WrongNetlistLevel {
            expected: "gate".into(),
        });
    }

    let n_nets = netlist.net_count();
    let mut values = vec![Logic::X; n_nets];
    values[Netlist::GND] = Logic::Zero;
    values[Netlist::VDD] = Logic::One;
    let mut waves = vec![Waveform::new(); n_nets];
    waves[Netlist::GND].push(0, Logic::Zero);
    waves[Netlist::VDD].push(0, Logic::One);

    // Fan-out: which gate indexes read each net, and which flip-flops
    // are clocked by it.
    let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); n_nets];
    let mut clocked: Vec<Vec<usize>> = vec![Vec::new(); n_nets];
    for (gi, dev) in netlist.devices().iter().enumerate() {
        match dev {
            Device::Gate { inputs, .. } => {
                for &i in inputs {
                    fanout[i].push(gi);
                }
            }
            Device::Dff { clk, .. } => clocked[*clk].push(gi),
            Device::Mos { .. } => {}
        }
    }

    // Event queue: Reverse((time, seq, net, value)) for a stable order.
    let mut queue: BinaryHeap<Reverse<(u64, u64, usize, Logic)>> = BinaryHeap::new();
    let mut seq = 0u64;
    for (t, sig, v) in stimuli.events() {
        let net = netlist
            .net_index(sig)
            .ok_or_else(|| EdaError::UnknownSignal {
                signal: sig.clone(),
            })?;
        queue.push(Reverse((*t, seq, net, *v)));
        seq += 1;
    }
    // Evaluate every gate once at t=0 so constant nets settle.
    let mut evaluations = 0u64;
    let mut end_time = 0u64;
    for gi in 0..netlist.devices().len() {
        schedule_gate(
            netlist,
            gi,
            0,
            &values,
            extra_delay,
            &mut queue,
            &mut seq,
            &mut evaluations,
        );
    }

    const DFF_DELAY: u64 = 2;
    while let Some(Reverse((t, _, net, v))) = queue.pop() {
        end_time = end_time.max(t);
        if values[net] == v {
            continue;
        }
        let rising = values[net] == Logic::Zero && v == Logic::One;
        values[net] = v;
        waves[net].push(t, v);
        for &gi in &fanout[net] {
            schedule_gate(
                netlist,
                gi,
                t,
                &values,
                extra_delay,
                &mut queue,
                &mut seq,
                &mut evaluations,
            );
        }
        // Rising clock edge: every flip-flop on this net samples its D
        // input now and presents it on Q after the clock-to-Q delay.
        if rising {
            for &gi in &clocked[net] {
                if let Device::Dff { d, q, .. } = &netlist.devices()[gi] {
                    evaluations += 1;
                    let delay = DFF_DELAY + extra_delay.get(q).copied().unwrap_or(0);
                    queue.push(Reverse((t + delay, seq, *q, values[*d])));
                    seq += 1;
                }
            }
        }
    }

    let net_names = (0..n_nets)
        .map(|i| netlist.net_name(i).to_owned())
        .collect();
    Ok(SimResult {
        waves,
        net_names,
        evaluations,
        end_time,
    })
}

#[allow(clippy::too_many_arguments)]
fn schedule_gate(
    netlist: &Netlist,
    gi: usize,
    now: u64,
    values: &[Logic],
    extra_delay: &NetDelays,
    queue: &mut BinaryHeap<Reverse<(u64, u64, usize, Logic)>>,
    seq: &mut u64,
    evaluations: &mut u64,
) {
    let Device::Gate {
        kind,
        inputs,
        output,
    } = &netlist.devices()[gi]
    else {
        return;
    };
    *evaluations += 1;
    let new = eval_gate(*kind, inputs.iter().map(|&i| values[i]));
    let delay = kind.delay() + extra_delay.get(output).copied().unwrap_or(0);
    queue.push(Reverse((now + delay, *seq, *output, new)));
    *seq += 1;
}

/// Evaluates one gate over four-valued inputs.
pub fn eval_gate<I: Iterator<Item = Logic>>(kind: GateKind, mut inputs: I) -> Logic {
    match kind {
        GateKind::Inv => !inputs.next().unwrap_or(Logic::X),
        GateKind::Buf => inputs.next().unwrap_or(Logic::X),
        GateKind::And => inputs.fold(Logic::One, Logic::and),
        GateKind::Or => inputs.fold(Logic::Zero, Logic::or),
        GateKind::Nand => !inputs.fold(Logic::One, Logic::and),
        GateKind::Nor => !inputs.fold(Logic::Zero, Logic::or),
        GateKind::Xor => inputs.fold(Logic::Zero, Logic::xor),
        GateKind::Xnor => !inputs.fold(Logic::Zero, Logic::xor),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder() -> Netlist {
        let mut n = Netlist::new("fa");
        let a = n.add_port_in("a");
        let b = n.add_port_in("b");
        let cin = n.add_port_in("cin");
        let s1 = n.add_net("s1");
        let c1 = n.add_net("c1");
        let c2 = n.add_net("c2");
        let sum = n.add_port_out("sum");
        let cout = n.add_port_out("cout");
        n.add_gate(GateKind::Xor, &[a, b], s1);
        n.add_gate(GateKind::Xor, &[s1, cin], sum);
        n.add_gate(GateKind::And, &[a, b], c1);
        n.add_gate(GateKind::And, &[s1, cin], c2);
        n.add_gate(GateKind::Or, &[c1, c2], cout);
        n
    }

    fn apply(n: &Netlist, bits: &[(&str, bool)]) -> SimResult {
        let mut s = Stimuli::new("v");
        for (name, b) in bits {
            s.set(0, name, Logic::from_bool(*b));
        }
        simulate(n, &s, &NetDelays::default()).expect("simulates")
    }

    #[test]
    fn full_adder_truth_table() {
        let n = full_adder();
        for v in 0..8u32 {
            let a = v & 1 == 1;
            let b = v >> 1 & 1 == 1;
            let c = v >> 2 & 1 == 1;
            let r = apply(&n, &[("a", a), ("b", b), ("cin", c)]);
            let total = u32::from(a) + u32::from(b) + u32::from(c);
            assert_eq!(
                r.wave("sum").expect("exists").last_value(),
                Logic::from_bool(total & 1 == 1),
                "sum for {v:03b}"
            );
            assert_eq!(
                r.wave("cout").expect("exists").last_value(),
                Logic::from_bool(total >= 2),
                "cout for {v:03b}"
            );
        }
    }

    #[test]
    fn glitches_propagate_with_delay() {
        let mut n = Netlist::new("inv2");
        let a = n.add_port_in("a");
        let m = n.add_net("m");
        let y = n.add_port_out("y");
        n.add_gate(GateKind::Inv, &[a], m);
        n.add_gate(GateKind::Inv, &[m], y);
        let mut s = Stimuli::new("step");
        s.set(0, "a", Logic::Zero);
        s.set(10, "a", Logic::One);
        let r = simulate(&n, &s, &NetDelays::default()).expect("ok");
        // y follows a after two inverter delays.
        assert_eq!(r.wave("y").expect("exists").at(11), Logic::Zero);
        assert_eq!(r.wave("y").expect("exists").at(12), Logic::One);
    }

    #[test]
    fn extra_net_delay_slows_outputs() {
        let mut n = Netlist::new("inv");
        let a = n.add_port_in("a");
        let y = n.add_port_out("y");
        n.add_gate(GateKind::Inv, &[a], y);
        let mut s = Stimuli::new("step");
        s.set(0, "a", Logic::Zero);
        s.set(10, "a", Logic::One);

        let fast = simulate(&n, &s, &NetDelays::default()).expect("ok");
        let mut slow_delays = NetDelays::default();
        slow_delays.insert(y, 7);
        let slow = simulate(&n, &s, &slow_delays).expect("ok");
        assert_eq!(fast.wave("y").expect("y").last_change(), 11);
        assert_eq!(slow.wave("y").expect("y").last_change(), 18);
    }

    #[test]
    fn transistor_netlist_is_rejected() {
        let mut n = Netlist::new("inv");
        let a = n.add_port_in("a");
        let y = n.add_port_out("y");
        n.add_mos(crate::netlist::MosKind::Nmos, a, Netlist::GND, y);
        let s = Stimuli::new("s");
        assert!(matches!(
            simulate(&n, &s, &NetDelays::default()).unwrap_err(),
            EdaError::WrongNetlistLevel { .. }
        ));
    }

    #[test]
    fn unknown_stimulus_signal_is_rejected() {
        let n = full_adder();
        let mut s = Stimuli::new("bad");
        s.set(0, "ghost", Logic::One);
        assert!(matches!(
            simulate(&n, &s, &NetDelays::default()).unwrap_err(),
            EdaError::UnknownSignal { .. }
        ));
    }

    #[test]
    fn undriven_inputs_stay_x() {
        let n = full_adder();
        let r = apply(&n, &[("a", true), ("b", true)]); // cin undriven
        assert_eq!(r.wave("cout").expect("exists").last_value(), Logic::One);
        assert_eq!(r.wave("sum").expect("exists").last_value(), Logic::X);
    }

    #[test]
    fn evaluation_count_is_positive() {
        let n = full_adder();
        let mut s = Stimuli::new("toggle");
        for name in ["a", "b", "cin"] {
            s.set(0, name, Logic::Zero);
        }
        s.set(50, "a", Logic::One);
        let r = simulate(&n, &s, &NetDelays::default()).expect("ok");
        assert!(r.evaluations >= 5, "every gate evaluated at least once");
        assert!(r.total_transitions() > 0, "the toggle propagates");
    }
}

#[cfg(test)]
mod sequential_tests {
    use super::*;
    use crate::cells;

    /// Drives `clk` with `pulses` rising edges, `period` apart,
    /// starting at `offset`.
    fn clock(s: &mut Stimuli, pulses: usize, period: u64, offset: u64) {
        s.set(0, "clk", Logic::Zero);
        for p in 0..pulses {
            let rise = offset + p as u64 * period;
            s.set(rise, "clk", Logic::One);
            s.set(rise + period / 2, "clk", Logic::Zero);
        }
    }

    #[test]
    fn dff_samples_on_rising_edge_only() {
        let sr = cells::shift_register(1);
        let mut s = Stimuli::new("edge");
        s.set(0, "din", Logic::Zero);
        clock(&mut s, 1, 20, 10);
        // din changes after the edge: must NOT be sampled.
        s.set(12, "din", Logic::One);
        let r = simulate(&sr, &s, &NetDelays::default()).expect("ok");
        assert_eq!(
            r.wave("dout").expect("exists").last_value(),
            Logic::Zero,
            "the post-edge din change is ignored until the next edge"
        );
    }

    #[test]
    fn shift_register_delays_by_n_cycles() {
        let n = 4;
        let sr = cells::shift_register(n);
        let mut s = Stimuli::new("pattern");
        // Pattern on din: 1,0,1,1 presented before edges at t=10,30,50,70.
        let pattern = [Logic::One, Logic::Zero, Logic::One, Logic::One];
        for (i, &bit) in pattern.iter().enumerate() {
            s.set(i as u64 * 20 + 2, "din", bit);
        }
        clock(&mut s, 8, 20, 10);
        let r = simulate(&sr, &s, &NetDelays::default()).expect("ok");
        let dout = r.wave("dout").expect("exists");
        // After edge k+n-1 (at t = 10 + (k+n-1)*20), dout shows
        // pattern[k].
        for (k, &bit) in pattern.iter().enumerate() {
            let edge_t = 10 + (k as u64 + n as u64 - 1) * 20;
            assert_eq!(
                dout.at(edge_t + 5),
                bit,
                "pattern bit {k} appears {n} edges later"
            );
        }
    }

    #[test]
    fn falling_edges_do_not_sample() {
        let sr = cells::shift_register(1);
        let mut s = Stimuli::new("fall");
        s.set(0, "din", Logic::One);
        s.set(0, "clk", Logic::One); // starts high: no 0->1 transition yet
        s.set(10, "clk", Logic::Zero); // falling edge only
        let r = simulate(&sr, &s, &NetDelays::default()).expect("ok");
        assert_eq!(r.wave("dout").expect("exists").last_value(), Logic::X);
    }

    #[test]
    fn mixed_sequential_and_combinational() {
        // dout = NOT(q): an inverter fed by a flip-flop.
        let mut n = Netlist::new("seqmix");
        let din = n.add_port_in("din");
        let clk = n.add_port_in("clk");
        let q = n.add_net("q");
        let out = n.add_port_out("out");
        n.add_dff(din, clk, q);
        n.add_gate(GateKind::Inv, &[q], out);
        assert!(n.is_sequential());
        assert!(n.is_gate_level());

        let mut s = Stimuli::new("t");
        s.set(0, "din", Logic::One);
        clock(&mut s, 1, 20, 10);
        let r = simulate(&n, &s, &NetDelays::default()).expect("ok");
        assert_eq!(r.wave("q").expect("exists").last_value(), Logic::One);
        assert_eq!(r.wave("out").expect("exists").last_value(), Logic::Zero);
    }

    #[test]
    fn sequential_netlist_round_trips_as_text() {
        let sr = cells::shift_register(3);
        let text = sr.to_text();
        assert!(text.contains(".dff d=din clk=clk q=q0"));
        let back = Netlist::parse(&text).expect("parses");
        assert_eq!(back, sr);
        assert_eq!(back.dff_count(), 3);
    }

    #[test]
    fn sequential_netlists_are_rejected_by_physical_tools() {
        let sr = cells::shift_register(2);
        assert!(crate::place::place(&sr, &crate::place::PlacementRules::default()).is_err());
        assert!(crate::xtor::to_transistor_level(&sr).is_err());
    }

    #[test]
    fn sequential_netlists_verify_against_themselves() {
        let sr = cells::shift_register(2);
        let report = crate::verify::verify(&sr, &sr).expect("comparable");
        assert!(report.matched);
        // A re-wired register is detected.
        let mut other = cells::shift_register(2);
        if let Device::Dff { d, .. } = &mut other.devices_mut()[1] {
            *d = 0; // rewire to gnd
        }
        let report = crate::verify::verify(&sr, &other).expect("comparable");
        assert!(!report.matched);
    }
}
