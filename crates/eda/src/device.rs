//! Device models (the `DeviceModels` entity of Fig. 1): process
//! parameters with statistical variation, consumed by the performance
//! analyzer and the statistical optimizers.

use serde::{Deserialize, Serialize};

use crate::error::EdaError;

/// Process parameters for one device polarity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MosModel {
    /// Threshold voltage (V).
    pub vth: f64,
    /// Transconductance factor (arbitrary units).
    pub k: f64,
    /// Relative 1-sigma process variation applied by Monte-Carlo
    /// analyses.
    pub sigma: f64,
}

/// A device-model set: NMOS and PMOS parameters plus a supply voltage.
///
/// # Examples
///
/// ```
/// use hercules_eda::DeviceModels;
///
/// let m = DeviceModels::default_1993();
/// let back = DeviceModels::parse(&m.to_text()).expect("round-trips");
/// assert_eq!(back, m);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceModels {
    /// Model-set name.
    pub name: String,
    /// Supply voltage (V).
    pub vdd: f64,
    /// N-channel parameters.
    pub nmos: MosModel,
    /// P-channel parameters.
    pub pmos: MosModel,
}

impl DeviceModels {
    /// A plausible 1993-era 0.8 µm CMOS model set.
    pub fn default_1993() -> DeviceModels {
        DeviceModels {
            name: "cmos08".into(),
            vdd: 5.0,
            nmos: MosModel {
                vth: 0.7,
                k: 1.0,
                sigma: 0.05,
            },
            pmos: MosModel {
                vth: -0.8,
                k: 0.4,
                sigma: 0.07,
            },
        }
    }

    /// Emits the canonical text form.
    pub fn to_text(&self) -> String {
        format!(
            ".models {}\nvdd {}\nnmos vth={} k={} sigma={}\npmos vth={} k={} sigma={}\n.end\n",
            self.name,
            self.vdd,
            self.nmos.vth,
            self.nmos.k,
            self.nmos.sigma,
            self.pmos.vth,
            self.pmos.k,
            self.pmos.sigma,
        )
    }

    /// Emits the canonical byte form.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_text().into_bytes()
    }

    /// Parses the canonical text form.
    ///
    /// # Errors
    ///
    /// Returns [`EdaError::Parse`] on malformed input.
    pub fn parse(text: &str) -> Result<DeviceModels, EdaError> {
        let err = |detail: &str| EdaError::Parse {
            what: "device models".into(),
            detail: detail.to_owned(),
        };
        let mut name = None;
        let mut vdd = None;
        let mut nmos = None;
        let mut pmos = None;
        let parse_mos = |rest: &[&str]| -> Result<MosModel, EdaError> {
            let mut vth = None;
            let mut k = None;
            let mut sigma = None;
            for p in rest {
                let (key, val) = p.split_once('=').ok_or_else(|| err("bad mos field"))?;
                let val: f64 = val.parse().map_err(|_| err("bad number"))?;
                match key {
                    "vth" => vth = Some(val),
                    "k" => k = Some(val),
                    "sigma" => sigma = Some(val),
                    _ => return Err(err("unknown mos field")),
                }
            }
            Ok(MosModel {
                vth: vth.ok_or_else(|| err("missing vth"))?,
                k: k.ok_or_else(|| err("missing k"))?,
                sigma: sigma.ok_or_else(|| err("missing sigma"))?,
            })
        };
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') || line == ".end" {
                continue;
            }
            let parts: Vec<&str> = line.split_whitespace().collect();
            match parts[0] {
                ".models" => name = parts.get(1).map(|s| (*s).to_owned()),
                "vdd" => {
                    vdd = Some(
                        parts
                            .get(1)
                            .ok_or_else(|| err("missing vdd value"))?
                            .parse()
                            .map_err(|_| err("bad vdd"))?,
                    )
                }
                "nmos" => nmos = Some(parse_mos(&parts[1..])?),
                "pmos" => pmos = Some(parse_mos(&parts[1..])?),
                other => return Err(err(&format!("unknown directive `{other}`"))),
            }
        }
        Ok(DeviceModels {
            name: name.ok_or_else(|| err("missing .models"))?,
            vdd: vdd.ok_or_else(|| err("missing vdd"))?,
            nmos: nmos.ok_or_else(|| err("missing nmos"))?,
            pmos: pmos.ok_or_else(|| err("missing pmos"))?,
        })
    }

    /// Parses the canonical byte form.
    ///
    /// # Errors
    ///
    /// Returns [`EdaError::Parse`] on malformed or non-UTF-8 input.
    pub fn from_bytes(bytes: &[u8]) -> Result<DeviceModels, EdaError> {
        let text = std::str::from_utf8(bytes).map_err(|_| EdaError::Parse {
            what: "device models".into(),
            detail: "not utf-8".into(),
        })?;
        DeviceModels::parse(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let m = DeviceModels::default_1993();
        let text = m.to_text();
        assert!(text.contains("nmos vth=0.7"));
        let back = DeviceModels::parse(&text).expect("ok");
        assert_eq!(back, m);
        assert_eq!(DeviceModels::from_bytes(&m.to_bytes()).expect("ok"), m);
    }

    #[test]
    fn parse_errors() {
        assert!(DeviceModels::parse("").is_err());
        assert!(DeviceModels::parse(".models m\nvdd 5\nnmos vth=0.7 k=1").is_err());
        assert!(DeviceModels::parse(".models m\nvdd x").is_err());
        assert!(DeviceModels::parse(".models m\nfrob 1").is_err());
        assert!(DeviceModels::from_bytes(&[0xff]).is_err());
    }
}
