//! Error type for the simulated EDA substrate.

use std::error::Error;
use std::fmt;

/// Errors raised by the simulated EDA tools and data models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
#[allow(missing_docs)] // variant fields are self-describing names
pub enum EdaError {
    /// A textual artifact failed to parse.
    Parse { what: String, detail: String },
    /// A net name was referenced but never declared.
    UnknownNet { net: String },
    /// A signal name in the stimuli does not exist in the netlist.
    UnknownSignal { signal: String },
    /// The netlist contains a combinational cycle, which the levelizing
    /// simulator cannot order.
    CombinationalCycle,
    /// Two netlists cannot be compared (e.g. different port counts).
    Incomparable { reason: String },
    /// A gate-level operation was applied to a transistor-level netlist
    /// or vice versa.
    WrongNetlistLevel { expected: String },
    /// The optimizer ran out of devices to size.
    NothingToOptimize,
    /// A layout refers to a cell kind the extractor does not know.
    UnknownCellKind { kind: String },
}

impl fmt::Display for EdaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdaError::Parse { what, detail } => write!(f, "cannot parse {what}: {detail}"),
            EdaError::UnknownNet { net } => write!(f, "unknown net `{net}`"),
            EdaError::UnknownSignal { signal } => {
                write!(f, "stimuli drive unknown signal `{signal}`")
            }
            EdaError::CombinationalCycle => f.write_str("netlist contains a combinational cycle"),
            EdaError::Incomparable { reason } => {
                write!(f, "netlists are not comparable: {reason}")
            }
            EdaError::WrongNetlistLevel { expected } => {
                write!(f, "expected a {expected}-level netlist")
            }
            EdaError::NothingToOptimize => f.write_str("no sizable devices in the netlist"),
            EdaError::UnknownCellKind { kind } => write!(f, "unknown cell kind `{kind}`"),
        }
    }
}

impl Error for EdaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let errors = vec![
            EdaError::Parse {
                what: "netlist".into(),
                detail: "line 3".into(),
            },
            EdaError::CombinationalCycle,
            EdaError::NothingToOptimize,
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }
}
