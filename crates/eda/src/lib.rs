//! Simulated EDA tool substrate for the Hercules reproduction.
//!
//! The DAC'93 paper manages *real* 1993 CAD tools (HSPICE-class
//! simulators, layout editors, COSMOS, extractors). The framework only
//! ever observes tools through their encapsulations — typed inputs in,
//! typed outputs out — so this crate provides deterministic, self-
//! contained stand-ins that exercise the identical management code
//! paths:
//!
//! * [`Netlist`] — gate- and transistor-level circuits with a canonical
//!   text format (tools exchange bytes, as the originals exchanged
//!   files); [`cells`] generates workloads (full adders, ripple adders,
//!   PLAs — the Chiueh & Katz standard-cell-to-PLA scenario of §2);
//! * [`simulate`] — an event-driven gate-level simulator producing
//!   [`Performance`] reports; [`Plot`] renders them (the
//!   `Simulator`/`Plotter` tasks of Fig. 1);
//! * [`place`] / [`extract`] / [`verify`] — the physical flow of Fig. 8:
//!   placement from [`PlacementRules`], extraction with parasitics plus
//!   [`ExtractionStatistics`] (the two-output subtask of Fig. 5), and
//!   LVS-style [`Verification`];
//! * [`cosmos`] — the compiled switch-level simulator of Fig. 2: a tool
//!   *created during the design*;
//! * [`mod@optimize`] — three statistical optimizers sharing one
//!   encapsulation signature (§3.3), consuming [`DeviceModels`];
//! * [`views`] — the logic/transistor/physical views of Fig. 7 and the
//!   `Circuit` composite with its implicit composition check.
//!
//! # Examples
//!
//! ```
//! use hercules_eda::{cells, place, extract, verify, PlacementRules};
//!
//! # fn main() -> Result<(), hercules_eda::EdaError> {
//! // The Fig. 8 synthesis + verification round trip.
//! let netlist = cells::full_adder();
//! let layout = place(&netlist, &PlacementRules::default())?;
//! let (extracted, _stats) = extract(&layout);
//! assert!(verify(&netlist, &extracted.netlist)?.matched);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod error;
mod extract;
mod layout;
mod logic_sim;
mod netlist;
mod perf;
mod place;
mod plot;
mod signal;
mod stimuli;
mod verify;
mod xtor;

pub mod cells;
pub mod cosmos;
pub mod optimize;
pub mod views;

pub use cosmos::{CompiledSimulator, SwitchSimulation};
pub use device::{DeviceModels, MosModel};
pub use error::EdaError;
pub use extract::{extract, wire_length_index, ExtractedNetlist, ExtractionStatistics};
pub use layout::{Layout, PlacedCell};
pub use logic_sim::{eval_gate, simulate, NetDelays, SimResult};
pub use netlist::{Device, GateKind, MosKind, Netlist};
pub use optimize::{cost, optimize, OptReport, OptimizerKind};
pub use perf::{parasitics_from_wire_lengths, OutputTiming, Performance};
pub use place::{place, PlacementRules};
pub use plot::Plot;
pub use signal::{Logic, Waveform};
pub use stimuli::Stimuli;
pub use verify::{verify, Mismatch, Verification};
pub use views::{inverter_views, CellViews, Circuit};
pub use xtor::to_transistor_level;
