//! The COSMOS-style compiled switch-level simulator (Fig. 2).
//!
//! "An example of such a tool is the switch-level simulator COSMOS \[10\]
//! which is compiled for a given netlist and can then be executed on
//! different stimuli." [`compile`] turns a transistor-level netlist into
//! a [`CompiledSimulator`] — a *design object that is itself a tool* —
//! which then runs any number of stimulus sets. [`interpret`] is the
//! uncompiled baseline that re-derives the channel structure on every
//! vector, quantifying why compiling was worth it.

use serde::{Deserialize, Serialize};

use crate::error::EdaError;
use crate::netlist::{Device, MosKind, Netlist};
use crate::signal::{Logic, Waveform};
use crate::stimuli::Stimuli;

/// One channel edge of the compiled form: a transistor connecting two
/// nets under the control of a gate net.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Channel {
    kind: MosKind,
    gate: usize,
    a: usize,
    b: usize,
}

/// A compiled switch-level simulator: the channel graph, adjacency and
/// evaluation order precomputed once at compile time.
///
/// In the task schema this is a **tool entity with a functional
/// dependency** — it is created during the design by the
/// `SimulatorCompiler` from a `Netlist`, and then constructs
/// `SwitchSimulation` results from `Stimuli`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledSimulator {
    /// Name of the netlist this simulator was compiled for.
    pub circuit: String,
    n_nets: usize,
    input_nets: Vec<(String, usize)>,
    output_nets: Vec<(String, usize)>,
    channels: Vec<Channel>,
    /// Per-net adjacency: indexes into `channels`.
    adjacency: Vec<Vec<usize>>,
}

/// The result of a switch-level simulation (the `SwitchSimulation`
/// entity of Fig. 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchSimulation {
    /// Circuit name.
    pub circuit: String,
    /// Stimulus-set name.
    pub stimuli: String,
    /// Output waveforms, by output name.
    pub outputs: Vec<(String, Waveform)>,
    /// Input vectors evaluated.
    pub vectors: usize,
    /// Relaxation iterations spent in total.
    pub iterations: u64,
}

impl SwitchSimulation {
    /// Returns the waveform of a named output.
    pub fn output(&self, name: &str) -> Option<&Waveform> {
        self.outputs.iter().find(|(n, _)| n == name).map(|(_, w)| w)
    }

    /// Emits the canonical byte form (JSON).
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("simulation serializes")
    }

    /// Parses the canonical byte form.
    ///
    /// # Errors
    ///
    /// Returns [`EdaError::Parse`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<SwitchSimulation, EdaError> {
        serde_json::from_slice(bytes).map_err(|e| EdaError::Parse {
            what: "switch simulation".into(),
            detail: e.to_string(),
        })
    }
}

/// Compiles a transistor-level netlist into a [`CompiledSimulator`].
///
/// # Errors
///
/// Returns [`EdaError::WrongNetlistLevel`] for gate-level netlists.
///
/// # Examples
///
/// ```
/// use hercules_eda::{cells, cosmos, Logic, Stimuli};
///
/// # fn main() -> Result<(), hercules_eda::EdaError> {
/// let sim = cosmos::compile(&cells::inverter_transistors())?;
/// let mut s = Stimuli::new("step");
/// s.set(0, "in", Logic::One);
/// let result = sim.run(&s)?;
/// assert_eq!(result.output("out").expect("exists").last_value(), Logic::Zero);
/// # Ok(())
/// # }
/// ```
pub fn compile(netlist: &Netlist) -> Result<CompiledSimulator, EdaError> {
    if !netlist.is_transistor_level() {
        return Err(EdaError::WrongNetlistLevel {
            expected: "transistor".into(),
        });
    }
    let n_nets = netlist.net_count();
    let mut channels = Vec::new();
    for d in netlist.devices() {
        if let Device::Mos {
            kind,
            gate,
            source,
            drain,
            ..
        } = d
        {
            channels.push(Channel {
                kind: *kind,
                gate: *gate,
                a: *source,
                b: *drain,
            });
        }
    }
    let mut adjacency = vec![Vec::new(); n_nets];
    for (ci, c) in channels.iter().enumerate() {
        adjacency[c.a].push(ci);
        adjacency[c.b].push(ci);
    }
    Ok(CompiledSimulator {
        circuit: netlist.name.clone(),
        n_nets,
        input_nets: netlist
            .inputs()
            .iter()
            .map(|&i| (netlist.net_name(i).to_owned(), i))
            .collect(),
        output_nets: netlist
            .outputs()
            .iter()
            .map(|&o| (netlist.net_name(o).to_owned(), o))
            .collect(),
        channels,
        adjacency,
    })
}

/// How a transistor conducts for a given gate value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Conduction {
    On,
    Off,
    Maybe,
}

fn conduction(kind: MosKind, gate: Logic) -> Conduction {
    match (kind, gate) {
        (MosKind::Nmos, Logic::One) | (MosKind::Pmos, Logic::Zero) => Conduction::On,
        (MosKind::Nmos, Logic::Zero) | (MosKind::Pmos, Logic::One) => Conduction::Off,
        _ => Conduction::Maybe,
    }
}

impl CompiledSimulator {
    /// Returns the input names, in port order.
    pub fn inputs(&self) -> Vec<&str> {
        self.input_nets.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Returns the output names, in port order.
    pub fn outputs(&self) -> Vec<&str> {
        self.output_nets.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Emits the canonical byte form (JSON) — this *is* the physical
    /// data of the `CompiledSimulator` entity instance.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("compiled simulator serializes")
    }

    /// Parses the canonical byte form.
    ///
    /// # Errors
    ///
    /// Returns [`EdaError::Parse`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<CompiledSimulator, EdaError> {
        serde_json::from_slice(bytes).map_err(|e| EdaError::Parse {
            what: "compiled simulator".into(),
            detail: e.to_string(),
        })
    }

    /// Runs the compiled simulator over a stimulus set: each distinct
    /// event time is one input vector; node values are solved to a
    /// fixpoint per vector.
    ///
    /// # Errors
    ///
    /// Returns [`EdaError::UnknownSignal`] if the stimuli drive a signal
    /// that is not an input of the compiled circuit.
    pub fn run(&self, stimuli: &Stimuli) -> Result<SwitchSimulation, EdaError> {
        let mut inputs = vec![Logic::X; self.n_nets];
        let mut waves: Vec<(String, Waveform)> = self
            .output_nets
            .iter()
            .map(|(n, _)| (n.clone(), Waveform::new()))
            .collect();
        let mut iterations = 0u64;
        let mut vectors = 0usize;

        let mut times: Vec<u64> = stimuli.events().iter().map(|e| e.0).collect();
        times.dedup();
        let mut event_idx = 0usize;
        for &t in &times {
            while event_idx < stimuli.events().len() && stimuli.events()[event_idx].0 == t {
                let (_, sig, v) = &stimuli.events()[event_idx];
                let net = self
                    .input_nets
                    .iter()
                    .find(|(n, _)| n == sig)
                    .map(|(_, i)| *i)
                    .ok_or_else(|| EdaError::UnknownSignal {
                        signal: sig.clone(),
                    })?;
                inputs[net] = *v;
                event_idx += 1;
            }
            vectors += 1;
            let values = self.solve(&inputs, &mut iterations);
            for ((_, wave), (_, net)) in waves.iter_mut().zip(self.output_nets.iter()) {
                wave.push(t, values[*net]);
            }
        }
        Ok(SwitchSimulation {
            circuit: self.circuit.clone(),
            stimuli: stimuli.name.clone(),
            outputs: waves,
            vectors,
            iterations,
        })
    }

    /// Solves node values for one input vector by relaxation over the
    /// channel graph.
    fn solve(&self, inputs: &[Logic], iterations: &mut u64) -> Vec<Logic> {
        let mut values = vec![Logic::Z; self.n_nets];
        values[Netlist::GND] = Logic::Zero;
        values[Netlist::VDD] = Logic::One;
        for (_, i) in &self.input_nets {
            values[*i] = inputs[*i];
        }
        let is_fixed = |net: usize| {
            net == Netlist::GND
                || net == Netlist::VDD
                || self.input_nets.iter().any(|(_, i)| *i == net)
        };

        // Iterate: gate values feed channel conduction feeds node values.
        for _ in 0..self.n_nets + 2 {
            *iterations += 1;
            let mut next = values.clone();
            for (net, slot) in next.iter_mut().enumerate() {
                if is_fixed(net) {
                    continue;
                }
                *slot = self.drive_of(net, &values);
            }
            if next == values {
                break;
            }
            values = next;
        }
        values
    }

    /// Computes the driven value of `net`: BFS through conducting
    /// channels towards the rails and driven inputs.
    fn drive_of(&self, net: usize, values: &[Logic]) -> Logic {
        let mut seen = vec![false; self.n_nets];
        // (net, through_maybe)
        let mut stack = vec![(net, false)];
        seen[net] = true;
        let mut found_zero = false;
        let mut found_one = false;
        let mut found_maybe = false;
        let is_source = |n: usize| {
            n == Netlist::GND || n == Netlist::VDD || self.input_nets.iter().any(|(_, i)| *i == n)
        };
        while let Some((cur, through_maybe)) = stack.pop() {
            if cur != net && is_source(cur) {
                let v = values[cur];
                match (v, through_maybe) {
                    (Logic::Zero, false) => found_zero = true,
                    (Logic::One, false) => found_one = true,
                    (Logic::X, _) | (Logic::Zero, true) | (Logic::One, true) => found_maybe = true,
                    (Logic::Z, _) => {}
                }
                continue; // driven nodes do not pass current onwards
            }
            for &ci in &self.adjacency[cur] {
                let c = &self.channels[ci];
                let other = if c.a == cur { c.b } else { c.a };
                if seen[other] {
                    continue;
                }
                match conduction(c.kind, values[c.gate]) {
                    Conduction::On => {
                        seen[other] = true;
                        stack.push((other, through_maybe));
                    }
                    Conduction::Maybe => {
                        seen[other] = true;
                        stack.push((other, true));
                    }
                    Conduction::Off => {}
                }
            }
        }
        match (found_zero, found_one) {
            (true, true) => Logic::X,
            (true, false) => {
                if found_maybe {
                    Logic::X
                } else {
                    Logic::Zero
                }
            }
            (false, true) => {
                if found_maybe {
                    Logic::X
                } else {
                    Logic::One
                }
            }
            (false, false) => {
                if found_maybe {
                    Logic::X
                } else {
                    Logic::Z
                }
            }
        }
    }
}

/// Uncompiled baseline: recompiles the channel structure for *every*
/// stimulus run. Same results as [`compile`] + [`CompiledSimulator::run`],
/// paid-for per invocation — the cost the Fig. 2 flow avoids by making
/// the compiled simulator a reusable design object.
///
/// # Errors
///
/// As [`compile`] and [`CompiledSimulator::run`].
pub fn interpret(netlist: &Netlist, stimuli: &Stimuli) -> Result<SwitchSimulation, EdaError> {
    compile(netlist)?.run(stimuli)
}

/// Builds a transistor-level 2-input NAND, for tests and examples.
pub fn nand2_transistors() -> Netlist {
    let mut n = Netlist::new("nand2_xtor");
    let a = n.add_port_in("a");
    let b = n.add_port_in("b");
    let y = n.add_port_out("y");
    let mid = n.add_net("mid");
    // Parallel pull-up.
    n.add_mos(MosKind::Pmos, a, Netlist::VDD, y);
    n.add_mos(MosKind::Pmos, b, Netlist::VDD, y);
    // Series pull-down.
    n.add_mos(MosKind::Nmos, a, mid, y);
    n.add_mos(MosKind::Nmos, b, Netlist::GND, mid);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells;

    #[test]
    fn inverter_truth_table() {
        let sim = compile(&cells::inverter_transistors()).expect("ok");
        for (input, expected) in [(Logic::Zero, Logic::One), (Logic::One, Logic::Zero)] {
            let mut s = Stimuli::new("v");
            s.set(0, "in", input);
            let r = sim.run(&s).expect("ok");
            assert_eq!(r.output("out").expect("exists").last_value(), expected);
        }
    }

    #[test]
    fn nand_truth_table() {
        let sim = compile(&nand2_transistors()).expect("ok");
        for (a, b, y) in [
            (Logic::Zero, Logic::Zero, Logic::One),
            (Logic::Zero, Logic::One, Logic::One),
            (Logic::One, Logic::Zero, Logic::One),
            (Logic::One, Logic::One, Logic::Zero),
        ] {
            let mut s = Stimuli::new("v");
            s.set(0, "a", a);
            s.set(0, "b", b);
            let r = sim.run(&s).expect("ok");
            assert_eq!(
                r.output("y").expect("exists").last_value(),
                y,
                "nand({a},{b})"
            );
        }
    }

    #[test]
    fn unknown_gate_yields_x() {
        let sim = compile(&cells::inverter_transistors()).expect("ok");
        let mut s = Stimuli::new("v");
        s.set(0, "in", Logic::X);
        let r = sim.run(&s).expect("ok");
        assert_eq!(r.output("out").expect("exists").last_value(), Logic::X);
    }

    #[test]
    fn sequence_of_vectors_produces_waveform() {
        let sim = compile(&cells::inverter_transistors()).expect("ok");
        let mut s = Stimuli::new("toggle");
        s.set(0, "in", Logic::Zero);
        s.set(10, "in", Logic::One);
        s.set(20, "in", Logic::Zero);
        let r = sim.run(&s).expect("ok");
        let out = r.output("out").expect("exists");
        assert_eq!(out.at(0), Logic::One);
        assert_eq!(out.at(10), Logic::Zero);
        assert_eq!(out.at(20), Logic::One);
        assert_eq!(r.vectors, 3);
        assert!(r.iterations > 0);
    }

    #[test]
    fn compiled_and_interpreted_agree() {
        let n = nand2_transistors();
        let mut s = Stimuli::new("walk");
        for (t, (a, b)) in [
            (Logic::Zero, Logic::Zero),
            (Logic::One, Logic::Zero),
            (Logic::One, Logic::One),
        ]
        .iter()
        .enumerate()
        .map(|(i, v)| (i as u64 * 10, *v))
        {
            s.set(t, "a", a);
            s.set(t, "b", b);
        }
        let compiled = compile(&n).expect("ok").run(&s).expect("ok");
        let interpreted = interpret(&n, &s).expect("ok");
        assert_eq!(compiled.outputs, interpreted.outputs);
    }

    #[test]
    fn gate_level_netlist_is_rejected() {
        assert!(matches!(
            compile(&cells::inverter()).unwrap_err(),
            EdaError::WrongNetlistLevel { .. }
        ));
    }

    #[test]
    fn unknown_stimulus_signal_is_rejected() {
        let sim = compile(&cells::inverter_transistors()).expect("ok");
        let mut s = Stimuli::new("bad");
        s.set(0, "ghost", Logic::One);
        assert!(matches!(
            sim.run(&s).unwrap_err(),
            EdaError::UnknownSignal { .. }
        ));
    }

    #[test]
    fn compiled_simulator_round_trips_as_bytes() {
        let sim = compile(&nand2_transistors()).expect("ok");
        let back = CompiledSimulator::from_bytes(&sim.to_bytes()).expect("ok");
        assert_eq!(back, sim);
        assert_eq!(back.inputs(), vec!["a", "b"]);
        assert_eq!(back.outputs(), vec!["y"]);
        assert!(CompiledSimulator::from_bytes(b"x").is_err());
    }

    #[test]
    fn simulation_round_trips_as_bytes() {
        let sim = compile(&cells::inverter_transistors()).expect("ok");
        let mut s = Stimuli::new("v");
        s.set(0, "in", Logic::One);
        let r = sim.run(&s).expect("ok");
        assert_eq!(SwitchSimulation::from_bytes(&r.to_bytes()).expect("ok"), r);
    }
}
