//! Cell generators: standard cells, ripple-carry adders, and a PLA
//! generator.
//!
//! These produce the workloads the paper's scenarios need — the Fig. 9
//! browser lists a "Low pass filter", "CMOS Full adder" and "Operational
//! Amplifier"; Chiueh & Katz's scenario re-implements a standard-cell
//! logic circuit as a PLA (§2).

use crate::netlist::{GateKind, MosKind, Netlist};

/// Builds a gate-level inverter.
pub fn inverter() -> Netlist {
    let mut n = Netlist::new("inverter");
    let a = n.add_port_in("in");
    let y = n.add_port_out("out");
    n.add_gate(GateKind::Inv, &[a], y);
    n
}

/// Builds the transistor-level (CMOS) inverter of Fig. 7's transistor
/// view.
pub fn inverter_transistors() -> Netlist {
    let mut n = Netlist::new("inverter_xtor");
    let a = n.add_port_in("in");
    let y = n.add_port_out("out");
    n.add_mos(MosKind::Pmos, a, Netlist::VDD, y);
    n.add_mos(MosKind::Nmos, a, Netlist::GND, y);
    n
}

/// Builds a gate-level CMOS full adder (the Fig. 9 browser entry).
pub fn full_adder() -> Netlist {
    let mut n = Netlist::new("full_adder");
    let a = n.add_port_in("a");
    let b = n.add_port_in("b");
    let cin = n.add_port_in("cin");
    let s1 = n.add_net("s1");
    let c1 = n.add_net("c1");
    let c2 = n.add_net("c2");
    let sum = n.add_port_out("sum");
    let cout = n.add_port_out("cout");
    n.add_gate(GateKind::Xor, &[a, b], s1);
    n.add_gate(GateKind::Xor, &[s1, cin], sum);
    n.add_gate(GateKind::And, &[a, b], c1);
    n.add_gate(GateKind::And, &[s1, cin], c2);
    n.add_gate(GateKind::Or, &[c1, c2], cout);
    n
}

/// Builds an `width`-bit ripple-carry adder from full-adder stages.
///
/// Ports: `a0..`, `b0..`, `cin`, outputs `s0..` and `cout`.
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn ripple_adder(width: usize) -> Netlist {
    assert!(width > 0, "adder needs at least one bit");
    let mut n = Netlist::new(&format!("adder{width}"));
    let mut carry = n.add_port_in("cin");
    for i in 0..width {
        let a = n.add_port_in(&format!("a{i}"));
        let b = n.add_port_in(&format!("b{i}"));
        let s1 = n.add_net(&format!("s1_{i}"));
        let c1 = n.add_net(&format!("c1_{i}"));
        let c2 = n.add_net(&format!("c2_{i}"));
        let sum = n.add_port_out(&format!("s{i}"));
        let next_carry = if i + 1 == width {
            n.add_port_out("cout")
        } else {
            n.add_net(&format!("c_{i}"))
        };
        n.add_gate(GateKind::Xor, &[a, b], s1);
        n.add_gate(GateKind::Xor, &[s1, carry], sum);
        n.add_gate(GateKind::And, &[a, b], c1);
        n.add_gate(GateKind::And, &[s1, carry], c2);
        n.add_gate(GateKind::Or, &[c1, c2], next_carry);
        carry = next_carry;
    }
    n
}

/// Builds an `n`-stage shift register: `dout` reproduces `din` delayed
/// by `n` rising clock edges. Ports: `din`, `clk`, `dout`, plus the
/// intermediate taps `q0..`.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn shift_register(n: usize) -> Netlist {
    assert!(n > 0, "shift register needs at least one stage");
    let mut nl = Netlist::new(&format!("shift{n}"));
    let mut d = nl.add_port_in("din");
    let clk = nl.add_port_in("clk");
    for i in 0..n {
        let q = if i + 1 == n {
            nl.add_port_out("dout")
        } else {
            nl.add_net(&format!("q{i}"))
        };
        nl.add_dff(d, clk, q);
        d = q;
    }
    nl
}

/// A single-output truth table: `minterms` lists the input vectors (bit
/// `i` = input `i`) for which the output is 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruthTable {
    /// Number of inputs (≤ 16).
    pub inputs: usize,
    /// Minterms producing 1.
    pub minterms: Vec<u32>,
}

/// Generates a two-level PLA (AND plane of minterms into an OR plane)
/// for the truth tables, sharing the input inverters.
///
/// This is the `create PLA` task of the Chiueh & Katz scenario: the
/// same logic function as a standard-cell implementation, built with a
/// different construction method.
///
/// # Panics
///
/// Panics if a table has more than 16 inputs or tables disagree on the
/// input count.
pub fn pla(name: &str, tables: &[TruthTable]) -> Netlist {
    let inputs = tables.first().map_or(0, |t| t.inputs);
    assert!(inputs <= 16, "pla limited to 16 inputs");
    assert!(
        tables.iter().all(|t| t.inputs == inputs),
        "tables must agree on input count"
    );
    let mut n = Netlist::new(name);
    let ins: Vec<usize> = (0..inputs)
        .map(|i| n.add_port_in(&format!("i{i}")))
        .collect();
    let negs: Vec<usize> = (0..inputs)
        .map(|i| {
            let neg = n.add_net(&format!("ni{i}"));
            neg
        })
        .collect();
    for i in 0..inputs {
        n.add_gate(GateKind::Inv, &[ins[i]], negs[i]);
    }
    // Shared AND plane: one product term per distinct minterm.
    let mut products: Vec<(u32, usize)> = Vec::new();
    let mut product_net = |n: &mut Netlist, m: u32| -> usize {
        if let Some(&(_, net)) = products.iter().find(|&&(mm, _)| mm == m) {
            return net;
        }
        let net = n.add_net(&format!("p{m}"));
        let terms: Vec<usize> = (0..inputs)
            .map(|i| if m >> i & 1 == 1 { ins[i] } else { negs[i] })
            .collect();
        if terms.len() == 1 {
            n.add_gate(GateKind::Buf, &terms, net);
        } else {
            n.add_gate(GateKind::And, &terms, net);
        }
        products.push((m, net));
        net
    };
    for (oi, table) in tables.iter().enumerate() {
        let out = n.add_port_out(&format!("o{oi}"));
        let nets: Vec<usize> = table
            .minterms
            .iter()
            .map(|&m| product_net(&mut n, m))
            .collect();
        match nets.len() {
            0 => {
                // Constant 0: buffer from ground.
                n.add_gate(GateKind::Buf, &[Netlist::GND], out);
            }
            1 => n.add_gate(GateKind::Buf, &nets, out),
            _ => n.add_gate(GateKind::Or, &nets, out),
        }
    }
    n
}

/// Generates the full-adder function as a PLA (sum and carry truth
/// tables over inputs a, b, cin).
pub fn full_adder_pla() -> Netlist {
    let sum = TruthTable {
        inputs: 3,
        minterms: vec![0b001, 0b010, 0b100, 0b111],
    };
    let cout = TruthTable {
        inputs: 3,
        minterms: vec![0b011, 0b101, 0b110, 0b111],
    };
    pla("full_adder_pla", &[sum, cout])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic_sim::{simulate, NetDelays};
    use crate::signal::Logic;
    use crate::stimuli::Stimuli;

    #[test]
    fn inverter_views_have_matching_ports() {
        let logic = inverter();
        let xtor = inverter_transistors();
        assert_eq!(logic.inputs().len(), xtor.inputs().len());
        assert_eq!(logic.outputs().len(), xtor.outputs().len());
        assert!(logic.is_gate_level());
        assert!(xtor.is_transistor_level());
    }

    #[test]
    fn ripple_adder_adds() {
        let n = ripple_adder(4);
        // 5 + 9 + 1 = 15: a=0101, b=1001, cin=1.
        let mut s = Stimuli::new("v");
        for (i, bit) in [true, false, true, false].iter().enumerate() {
            s.set(0, &format!("a{i}"), Logic::from_bool(*bit));
        }
        for (i, bit) in [true, false, false, true].iter().enumerate() {
            s.set(0, &format!("b{i}"), Logic::from_bool(*bit));
        }
        s.set(0, "cin", Logic::One);
        let r = simulate(&n, &s, &NetDelays::default()).expect("ok");
        let mut sum = 0u32;
        for i in 0..4 {
            if r.wave(&format!("s{i}")).expect("exists").last_value() == Logic::One {
                sum |= 1 << i;
            }
        }
        if r.wave("cout").expect("exists").last_value() == Logic::One {
            sum |= 1 << 4;
        }
        assert_eq!(sum, 15);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_width_adder_panics() {
        ripple_adder(0);
    }

    #[test]
    fn pla_matches_standard_cell_full_adder() {
        let std_cell = full_adder();
        let as_pla = full_adder_pla();
        for v in 0..8u32 {
            let mut s_std = Stimuli::new("v");
            let mut s_pla = Stimuli::new("v");
            for (i, name) in ["a", "b", "cin"].iter().enumerate() {
                let bit = Logic::from_bool(v >> i & 1 == 1);
                s_std.set(0, name, bit);
                s_pla.set(0, &format!("i{i}"), bit);
            }
            let r_std = simulate(&std_cell, &s_std, &NetDelays::default()).expect("ok");
            let r_pla = simulate(&as_pla, &s_pla, &NetDelays::default()).expect("ok");
            assert_eq!(
                r_std.wave("sum").expect("exists").last_value(),
                r_pla.wave("o0").expect("exists").last_value(),
                "sum for {v:03b}"
            );
            assert_eq!(
                r_std.wave("cout").expect("exists").last_value(),
                r_pla.wave("o1").expect("exists").last_value(),
                "cout for {v:03b}"
            );
        }
    }

    #[test]
    fn pla_shares_product_terms() {
        // Both outputs include minterm 0b111: the AND plane builds it
        // once.
        let n = full_adder_pla();
        let product_count = n
            .devices()
            .iter()
            .filter(|d| {
                matches!(
                    d,
                    crate::netlist::Device::Gate {
                        kind: GateKind::And,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(product_count, 7, "8 minterm references, 7 distinct");
    }

    #[test]
    fn constant_zero_pla_output() {
        let t = TruthTable {
            inputs: 2,
            minterms: vec![],
        };
        let n = pla("zero", &[t]);
        let s = Stimuli::exhaustive(&["i0", "i1"], 10);
        let r = simulate(&n, &s, &NetDelays::default()).expect("ok");
        assert_eq!(r.wave("o0").expect("exists").last_value(), Logic::Zero);
    }
}
