//! The placer tool (the `Placer` of Fig. 1): gate-level netlist +
//! placement rules → layout.

use serde::{Deserialize, Serialize};

use crate::error::EdaError;
use crate::layout::{Layout, PlacedCell};
use crate::netlist::{Device, Netlist};

/// Placement rules (the `PlacementRules` entity): row capacity and cell
/// spacing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementRules {
    /// Maximum row width in layout units before starting a new row.
    pub row_width: i64,
    /// Horizontal gap between adjacent cells.
    pub spacing: i64,
}

impl Default for PlacementRules {
    fn default() -> PlacementRules {
        PlacementRules {
            row_width: 100,
            spacing: 2,
        }
    }
}

impl PlacementRules {
    /// Emits the canonical byte form (JSON).
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("rules serialize")
    }

    /// Parses the canonical byte form.
    ///
    /// # Errors
    ///
    /// Returns [`EdaError::Parse`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<PlacementRules, EdaError> {
        serde_json::from_slice(bytes).map_err(|e| EdaError::Parse {
            what: "placement rules".into(),
            detail: e.to_string(),
        })
    }
}

/// Places a gate-level netlist into rows, in topological-ish order
/// (declaration order), respecting the rules. Deterministic.
///
/// # Errors
///
/// Returns [`EdaError::WrongNetlistLevel`] for transistor-level
/// netlists.
///
/// # Examples
///
/// ```
/// use hercules_eda::{cells, place, PlacementRules};
///
/// # fn main() -> Result<(), hercules_eda::EdaError> {
/// let adder = cells::full_adder();
/// let layout = place(&adder, &PlacementRules::default())?;
/// assert_eq!(layout.cells.len(), adder.gate_count());
/// assert!(!layout.has_overlaps());
/// # Ok(())
/// # }
/// ```
pub fn place(netlist: &Netlist, rules: &PlacementRules) -> Result<Layout, EdaError> {
    if !netlist.is_gate_level() || netlist.is_sequential() {
        return Err(EdaError::WrongNetlistLevel {
            expected: "combinational gate".into(),
        });
    }
    let mut layout = Layout::new(&netlist.name);
    layout.inputs = netlist
        .inputs()
        .iter()
        .map(|&i| netlist.net_name(i).to_owned())
        .collect();
    layout.outputs = netlist
        .outputs()
        .iter()
        .map(|&o| netlist.net_name(o).to_owned())
        .collect();

    let mut x = 0i64;
    let mut y = 0i64;
    for (i, d) in netlist.devices().iter().enumerate() {
        let Device::Gate {
            kind,
            inputs,
            output,
        } = d
        else {
            continue;
        };
        let cell = PlacedCell {
            name: format!("u{i}"),
            kind: *kind,
            inputs: inputs
                .iter()
                .map(|&n| netlist.net_name(n).to_owned())
                .collect(),
            output: netlist.net_name(*output).to_owned(),
            x,
            y,
        };
        let w = cell.width();
        let h = cell.height();
        layout.cells.push(cell);
        x += w + rules.spacing;
        if x > rules.row_width {
            x = 0;
            y += h + rules.spacing;
        }
    }
    Ok(layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells;

    #[test]
    fn placement_is_deterministic_and_overlap_free() {
        let n = cells::ripple_adder(4);
        let rules = PlacementRules::default();
        let a = place(&n, &rules).expect("ok");
        let b = place(&n, &rules).expect("ok");
        assert_eq!(a, b);
        assert!(!a.has_overlaps());
        assert_eq!(a.cells.len(), n.gate_count());
    }

    #[test]
    fn narrow_rows_grow_vertically() {
        let n = cells::ripple_adder(4);
        let wide = place(
            &n,
            &PlacementRules {
                row_width: 10_000,
                spacing: 2,
            },
        )
        .expect("ok");
        let narrow = place(
            &n,
            &PlacementRules {
                row_width: 20,
                spacing: 2,
            },
        )
        .expect("ok");
        let max_y = |l: &Layout| l.cells.iter().map(|c| c.y).max().unwrap_or(0);
        assert_eq!(max_y(&wide), 0, "everything in one row");
        assert!(max_y(&narrow) > 0, "rows wrapped");
        assert!(!narrow.has_overlaps());
    }

    #[test]
    fn narrower_rows_mean_longer_wires() {
        let n = cells::ripple_adder(8);
        let compact = place(
            &n,
            &PlacementRules {
                row_width: 60,
                spacing: 2,
            },
        )
        .expect("ok");
        let strip = place(
            &n,
            &PlacementRules {
                row_width: 100_000,
                spacing: 2,
            },
        )
        .expect("ok");
        // The two aspect ratios yield genuinely different wiring.
        assert!(strip.total_wire_length() > 0);
        assert!(compact.total_wire_length() > 0);
        assert_ne!(strip.total_wire_length(), compact.total_wire_length());
        assert!(!compact.has_overlaps());
    }

    #[test]
    fn transistor_netlist_is_rejected() {
        let n = cells::inverter_transistors();
        assert!(place(&n, &PlacementRules::default()).is_err());
    }

    #[test]
    fn rules_round_trip() {
        let r = PlacementRules {
            row_width: 42,
            spacing: 3,
        };
        let back = PlacementRules::from_bytes(&r.to_bytes()).expect("ok");
        assert_eq!(back, r);
        assert!(PlacementRules::from_bytes(b"x").is_err());
    }
}
