//! Property-based tests for the simulated EDA substrate.

use hercules_eda::{
    cells, extract, place, simulate, to_transistor_level, verify, GateKind, Logic, NetDelays,
    Netlist, PlacementRules, Stimuli,
};
use proptest::prelude::*;

/// Strategy for small random combinational netlists: a layered DAG of
/// gates over `inputs` primary inputs.
fn random_netlist() -> impl Strategy<Value = Netlist> {
    (
        1usize..4, // inputs
        prop::collection::vec(
            (
                0usize..8u8 as usize,
                prop::collection::vec(0usize..16, 1..3),
            ),
            1..8,
        ),
    )
        .prop_map(|(n_inputs, gates)| {
            let mut n = Netlist::new("random");
            let mut nets: Vec<usize> = (0..n_inputs)
                .map(|i| n.add_port_in(&format!("i{i}")))
                .collect();
            for (gi, (kind_idx, input_idxs)) in gates.into_iter().enumerate() {
                let kinds = [
                    GateKind::Inv,
                    GateKind::Buf,
                    GateKind::And,
                    GateKind::Or,
                    GateKind::Nand,
                    GateKind::Nor,
                    GateKind::Xor,
                    GateKind::Xnor,
                ];
                let kind = kinds[kind_idx % kinds.len()];
                let arity = match kind {
                    GateKind::Inv | GateKind::Buf => 1,
                    GateKind::Xor | GateKind::Xnor => 2,
                    _ => input_idxs.len().clamp(1, 2),
                };
                let inputs: Vec<usize> = (0..arity)
                    .map(|k| nets[input_idxs[k % input_idxs.len()] % nets.len()])
                    .collect();
                let out = n.add_net(&format!("g{gi}"));
                n.add_gate(kind, &inputs, out);
                nets.push(out);
            }
            // The last gate output is the primary output.
            let last = *nets.last().expect("nonempty");
            let name = n.net_name(last).to_owned();
            n.add_port_out(&name);
            n
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The canonical text format round-trips every netlist exactly.
    #[test]
    fn netlist_text_round_trip(n in random_netlist()) {
        let text = n.to_text();
        let back = Netlist::parse(&text).expect("canonical format parses");
        prop_assert_eq!(back, n);
    }

    /// place → extract → verify is the identity on function: the
    /// extracted netlist always LVS-matches its source.
    #[test]
    fn physical_round_trip_matches(n in random_netlist()) {
        let layout = place(&n, &PlacementRules::default()).expect("places");
        prop_assert!(!layout.has_overlaps());
        let (ex, stats) = extract(&layout);
        prop_assert_eq!(stats.cell_count, n.gate_count());
        let report = verify(&n, &ex.netlist).expect("comparable");
        prop_assert!(report.matched, "{:?}", report.mismatches);
    }

    /// Gate-level and synthesized transistor-level netlists agree on
    /// every input vector (checked through the compiled switch-level
    /// simulator).
    #[test]
    fn cmos_synthesis_is_equivalent(n in random_netlist()) {
        prop_assume!(n.inputs().len() <= 3);
        let xt = to_transistor_level(&n).expect("synthesizes");
        let sim = hercules_eda::cosmos::compile(&xt).expect("compiles");
        let input_names: Vec<String> =
            n.inputs().iter().map(|&i| n.net_name(i).to_owned()).collect();
        let refs: Vec<&str> = input_names.iter().map(String::as_str).collect();
        let walk = Stimuli::exhaustive(&refs, 64);
        let gate_result = simulate(&n, &walk, &NetDelays::default()).expect("simulates");
        let switch_result = sim.run(&walk).expect("runs");
        for &o in n.outputs() {
            let name = n.net_name(o);
            let g = gate_result.wave(name).expect("gate wave");
            let s = switch_result.output(name).expect("switch wave");
            for v in 0..(1u64 << refs.len()) {
                prop_assert_eq!(
                    g.at(v * 64 + 63),
                    s.at(v * 64),
                    "output {} vector {}", name, v
                );
            }
        }
    }

    /// Simulation is deterministic and monotone in stimulation: adding
    /// parasitic delay never makes outputs settle earlier.
    #[test]
    fn parasitics_never_speed_things_up(n in random_netlist(), delay in 1u64..8) {
        prop_assume!(n.inputs().len() <= 3);
        let input_names: Vec<String> =
            n.inputs().iter().map(|&i| n.net_name(i).to_owned()).collect();
        let refs: Vec<&str> = input_names.iter().map(String::as_str).collect();
        let walk = Stimuli::exhaustive(&refs, 100);
        let ideal = simulate(&n, &walk, &NetDelays::default()).expect("simulates");
        let mut heavy = NetDelays::default();
        for i in 0..n.net_count() {
            heavy.insert(i, delay);
        }
        let loaded = simulate(&n, &walk, &heavy).expect("simulates");
        for &o in n.outputs() {
            let name = n.net_name(o);
            prop_assert!(
                loaded.wave(name).expect("wave").last_change()
                    >= ideal.wave(name).expect("wave").last_change()
            );
        }
    }

    /// Waveform queries: `at` is piecewise-constant between events.
    #[test]
    fn waveform_piecewise_constant(events in prop::collection::vec((0u64..100, 0u8..4), 0..12)) {
        let mut w = hercules_eda::Waveform::new();
        let mut sorted = events;
        sorted.sort();
        for (t, v) in sorted {
            let level = [Logic::Zero, Logic::One, Logic::X, Logic::Z][v as usize];
            w.push(t, level);
        }
        for t in 0..100u64 {
            // The value only changes where an event is recorded.
            if !w.events.iter().any(|&(et, _)| et == t + 1) {
                prop_assert_eq!(w.at(t), w.at(t + 1));
            }
        }
    }

    /// PLA generation realizes exactly the requested truth table.
    #[test]
    fn pla_matches_truth_table(minterms in prop::collection::btree_set(0u32..8, 0..8)) {
        let table = cells::TruthTable {
            inputs: 3,
            minterms: minterms.iter().copied().collect(),
        };
        let n = cells::pla("prop", &[table]);
        let walk = Stimuli::exhaustive(&["i0", "i1", "i2"], 100);
        let r = simulate(&n, &walk, &NetDelays::default()).expect("simulates");
        let wave = r.wave("o0").expect("output");
        for v in 0..8u32 {
            let expect = Logic::from_bool(minterms.contains(&v));
            prop_assert_eq!(
                wave.at(u64::from(v) * 100 + 99),
                expect,
                "minterm {:03b}", v
            );
        }
    }
}
