//! Experiments F7/F8 (Figs. 7–8): the view-management flows — physical
//! synthesis and extraction/verification — swept over circuit size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hercules::eda::{cells, extract, place, verify, PlacementRules};

fn bench_view_flows(c: &mut Criterion) {
    let rules = PlacementRules::default();
    let mut group = c.benchmark_group("fig08/view_flows");
    for width in [2usize, 4, 8, 16] {
        let netlist = cells::ripple_adder(width);
        let gates = netlist.gate_count();
        group.bench_with_input(
            BenchmarkId::new("synthesize_physical", gates),
            &netlist,
            |b, n| b.iter(|| place(n, &rules).expect("places")),
        );
        let layout = place(&netlist, &rules).expect("places");
        group.bench_with_input(BenchmarkId::new("extract", gates), &layout, |b, l| {
            b.iter(|| extract(l))
        });
        let (extracted, _) = extract(&layout);
        group.bench_with_input(
            BenchmarkId::new("verify_views", gates),
            &(netlist.clone(), extracted.netlist.clone()),
            |b, (reference, compared)| b.iter(|| verify(reference, compared).expect("comparable")),
        );
        group.bench_with_input(
            BenchmarkId::new("full_round_trip", gates),
            &netlist,
            |b, n| {
                b.iter(|| {
                    let layout = place(n, &rules).expect("places");
                    let (ex, _) = extract(&layout);
                    verify(n, &ex.netlist).expect("comparable")
                })
            },
        );
    }
    group.finish();
}

fn bench_session_round_trip(c: &mut Criterion) {
    // The managed version of the same flows, through the session with
    // full history recording.
    let mut group = c.benchmark_group("fig08/managed_round_trip");
    group.sample_size(10);
    group.bench_function("synthesize_and_verify_adder", |b| {
        b.iter(|| {
            let (mut session, netlist) = hercules_bench::session_with_adder();
            hercules::views::synthesize_and_verify(&mut session, netlist).expect("round trip")
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_view_flows, bench_session_round_trip
}

criterion_main!(benches);
