//! Experiment F11 (Fig. 11): flow traces vs version trees — the cost of
//! reconstructing each view from the history, and the storage the
//! derivation records add over a bare version store.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hercules::baseline::VersionTreeStore;
use hercules::history::FlowTrace;

fn bench_reconstruction(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11/reconstruction");
    for depth in [10usize, 100, 500] {
        let (db, newest) = hercules_bench::edit_chain(depth);
        let entity = db.instance(newest).expect("present").entity();
        group.bench_with_input(BenchmarkId::new("version_forest", depth), &db, |b, db| {
            b.iter(|| db.version_forest(entity).expect("builds"))
        });
        group.bench_with_input(
            BenchmarkId::new("flow_trace_backward", depth),
            &db,
            |b, db| b.iter(|| FlowTrace::backward(db, &[newest]).expect("builds")),
        );
        group.bench_with_input(
            BenchmarkId::new("flow_trace_render", depth),
            &db,
            |b, db| {
                let trace = FlowTrace::backward(db, &[newest]).expect("builds");
                b.iter(|| trace.to_text(db))
            },
        );
    }
    group.finish();
}

fn bench_baseline_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11/baseline_version_store");
    for depth in [100usize, 500] {
        group.bench_with_input(
            BenchmarkId::new("check_in_chain", depth),
            &depth,
            |b, &depth| {
                b.iter(|| {
                    let mut store = VersionTreeStore::new();
                    let mut prev = None;
                    for i in 0..depth {
                        prev = Some(store.check_in(&format!("v{i}"), prev));
                    }
                    store
                })
            },
        );
        let mut store = VersionTreeStore::new();
        let mut prev = None;
        for i in 0..depth {
            prev = Some(store.check_in(&format!("v{i}"), prev));
        }
        let newest = prev.expect("nonempty");
        group.bench_with_input(
            BenchmarkId::new("walk_parents", depth),
            &store,
            |b, store| {
                b.iter(|| {
                    let mut cur = Some(newest);
                    let mut n = 0usize;
                    while let Some(id) = cur {
                        n += 1;
                        cur = store.parent(id);
                    }
                    n
                })
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_reconstruction, bench_baseline_store
}

criterion_main!(benches);
