//! Experiment F4 (Fig. 4): expand-operation cost vs flow size, with the
//! DESIGN.md ablation — schema-checked incremental expansion vs raw
//! construction followed by one final validation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hercules::flow::{FlowSpec, TaskGraph};
use hercules::schema::synth::SynthConfig;

fn configs() -> Vec<(usize, SynthConfig)> {
    [
        SynthConfig {
            layers: 3,
            width: 2,
            fanin: 2,
            subtypes: 0,
        },
        SynthConfig {
            layers: 5,
            width: 4,
            fanin: 2,
            subtypes: 0,
        },
        SynthConfig {
            layers: 8,
            width: 6,
            fanin: 3,
            subtypes: 0,
        },
    ]
    .into_iter()
    .map(|cfg| (cfg.generate().len(), cfg))
    .collect()
}

/// Fully expands every goal entity of a synthetic schema through the
/// checked operations.
fn build_checked(
    cfg: &SynthConfig,
    schema: &std::sync::Arc<hercules::schema::TaskSchema>,
) -> TaskGraph {
    let mut flow = TaskGraph::new(schema.clone());
    for goal in cfg.goal_layer(schema) {
        let node = flow.seed(goal).expect("seeds");
        flow.expand_all(node).expect("expands");
    }
    flow
}

fn bench_expansion(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig04/expand_all");
    for (size, cfg) in configs() {
        let schema = std::sync::Arc::new(cfg.generate());
        group.bench_with_input(
            BenchmarkId::new("checked_expansion", size),
            &cfg,
            |b, cfg| b.iter(|| build_checked(cfg, &schema)),
        );
        // Ablation: replay the same structure raw, then validate once.
        let reference = build_checked(&cfg, &schema);
        let spec = FlowSpec::from_task_graph(&reference);
        group.bench_with_input(
            BenchmarkId::new("raw_build_then_validate", size),
            &spec,
            |b, spec| b.iter(|| spec.instantiate(schema.clone()).expect("valid")),
        );
    }
    group.finish();
}

fn bench_single_operations(c: &mut Criterion) {
    let schema = hercules_bench::fig1();
    let mut group = c.benchmark_group("fig04/operations");
    group.bench_function("seed_expand_layout", |b| {
        b.iter(|| {
            let mut flow = TaskGraph::new(schema.clone());
            let layout = flow
                .seed(schema.require("Layout").expect("known"))
                .expect("seeds");
            flow.expand(layout).expect("expands");
            flow
        })
    });
    group.bench_function("specialize_then_expand", |b| {
        b.iter(|| {
            let mut flow = TaskGraph::new(schema.clone());
            let node = flow
                .seed(schema.require("Netlist").expect("known"))
                .expect("seeds");
            flow.specialize(node, schema.require("ExtractedNetlist").expect("known"))
                .expect("specializes");
            flow.expand(node).expect("expands");
            flow
        })
    });
    group.bench_function("expand_then_unexpand", |b| {
        b.iter(|| {
            let mut flow = TaskGraph::new(schema.clone());
            let layout = flow
                .seed(schema.require("Layout").expect("known"))
                .expect("seeds");
            flow.expand(layout).expect("expands");
            flow.unexpand(layout).expect("unexpands");
            flow
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_expansion, bench_single_operations
}

criterion_main!(benches);
