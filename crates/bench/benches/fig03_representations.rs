//! Experiment F3 (Fig. 3): cost of the two flow representations — the
//! task graph (native) and the derived bipartite flow diagram — plus
//! the footnote-2 textual forms.

use criterion::{criterion_group, criterion_main, Criterion};
use hercules::flow::{fixtures, render, FlowDiagram, FlowSpec};

fn bench_representations(c: &mut Criterion) {
    let schema = hercules_bench::fig1();
    let fig3 = fixtures::fig3(schema.clone()).expect("fixture");
    let fig5 = fixtures::fig5(schema.clone()).expect("fixture");
    let root3 = fig3.outputs()[0];

    let mut group = c.benchmark_group("fig03/representations");
    group.bench_function("build_fig3_flow", |b| {
        b.iter(|| fixtures::fig3(schema.clone()).expect("fixture"))
    });
    group.bench_function("to_bipartite_fig3", |b| {
        b.iter(|| FlowDiagram::from_task_graph(&fig3).expect("converts"))
    });
    group.bench_function("to_bipartite_fig5", |b| {
        b.iter(|| FlowDiagram::from_task_graph(&fig5).expect("converts"))
    });
    group.bench_function("to_sexpr", |b| {
        b.iter(|| render::to_sexpr(&fig3, root3).expect("renders"))
    });
    group.bench_function("to_call", |b| {
        b.iter(|| render::to_call(&fig3, root3).expect("renders"))
    });
    group.bench_function("to_text_window", |b| b.iter(|| render::to_text(&fig5)));
    group.finish();
}

fn bench_spec_round_trip(c: &mut Criterion) {
    let schema = hercules_bench::fig1();
    let fig5 = fixtures::fig5(schema.clone()).expect("fixture");
    let spec = FlowSpec::from_task_graph(&fig5);
    let mut group = c.benchmark_group("fig03/catalog_storage");
    group.bench_function("to_spec", |b| b.iter(|| FlowSpec::from_task_graph(&fig5)));
    group.bench_function("instantiate_validated", |b| {
        b.iter(|| spec.instantiate(schema.clone()).expect("valid"))
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_representations, bench_spec_round_trip
}

criterion_main!(benches);
