//! Experiment F5 (Fig. 5): building and executing the complex flow —
//! entity reuse, multiple outputs, multi-output subtask grouping.

use criterion::{criterion_group, criterion_main, Criterion};
use hercules::exec::{toy, Binding, Executor};
use hercules::flow::fixtures;
use hercules::history::HistoryDb;

fn bench_build(c: &mut Criterion) {
    let schema = hercules_bench::fig1();
    let mut group = c.benchmark_group("fig05/construction");
    group.bench_function("build_fig5", |b| {
        b.iter(|| fixtures::fig5(schema.clone()).expect("fixture"))
    });
    group.bench_function("validate_for_execution", |b| {
        let flow = fixtures::fig5(schema.clone()).expect("fixture");
        b.iter(|| flow.validate_for_execution().expect("valid"))
    });
    group.finish();
}

fn bench_execute(c: &mut Criterion) {
    let schema = hercules_bench::fig1();
    let flow = fixtures::fig5(schema.clone()).expect("fixture");
    let executor = Executor::new(toy::text_registry(&schema));

    let mut group = c.benchmark_group("fig05/execution");
    group.sample_size(30);
    group.bench_function("execute_toy_tools", |b| {
        b.iter(|| {
            let mut db = HistoryDb::new(schema.clone());
            toy::seed_everything(&mut db, "bench");
            let mut binding = Binding::new();
            binding.bind_latest(&flow, &db);
            executor.execute(&flow, &binding, &mut db).expect("runs")
        })
    });
    group.bench_function("subtask_grouping_via_bipartite", |b| {
        b.iter(|| hercules::flow::FlowDiagram::from_task_graph(&flow).expect("groups"))
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_build, bench_execute
}

criterion_main!(benches);
