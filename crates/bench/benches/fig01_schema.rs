//! Experiment F1 (Fig. 1): task-schema construction, validation and
//! query cost, swept over schema size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hercules::schema::{fixtures, synth::SynthConfig};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig01/build_validate");
    group.bench_function("fig1_reference", |b| b.iter(fixtures::fig1));
    group.bench_function("odyssey_merged", |b| b.iter(fixtures::odyssey));
    for (label, cfg) in [
        (
            "synthetic_small",
            SynthConfig {
                layers: 3,
                width: 3,
                fanin: 2,
                subtypes: 0,
            },
        ),
        (
            "synthetic_medium",
            SynthConfig {
                layers: 6,
                width: 8,
                fanin: 3,
                subtypes: 0,
            },
        ),
        (
            "synthetic_large",
            SynthConfig {
                layers: 10,
                width: 16,
                fanin: 4,
                subtypes: 2,
            },
        ),
    ] {
        let size = cfg.generate().len();
        group.bench_with_input(BenchmarkId::new(label, size), &cfg, |b, cfg| {
            b.iter(|| cfg.generate())
        });
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let schema = fixtures::odyssey();
    let netlist = schema.require("Netlist").expect("known");
    let mut group = c.benchmark_group("fig01/queries");
    group.bench_function("name_lookup", |b| {
        b.iter(|| schema.entity_id("Performance"))
    });
    group.bench_function("topo_order", |b| b.iter(|| schema.topo_order()));
    group.bench_function("all_subtypes", |b| b.iter(|| schema.all_subtypes(netlist)));
    group.bench_function("render_text", |b| {
        b.iter(|| hercules::schema::render::to_text(&schema))
    });
    group.finish();
}

fn bench_serde(c: &mut Criterion) {
    let schema = fixtures::odyssey();
    let json = serde_json::to_string(&schema).expect("serializes");
    let mut group = c.benchmark_group("fig01/persistence");
    group.bench_function("serialize", |b| {
        b.iter(|| serde_json::to_string(&schema).expect("serializes"))
    });
    group.bench_function("deserialize_revalidate", |b| {
        b.iter(|| {
            let s: hercules::schema::TaskSchema =
                serde_json::from_str(&json).expect("deserializes");
            s
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_build, bench_queries, bench_serde
}

criterion_main!(benches);
