//! Experiment F6 (Fig. 6): parallel execution of disjoint branches vs
//! sequential topological order, swept over branch count.
//!
//! Each toy tool invocation simulates 2 ms of compute; speedup should
//! grow with the number of independent branches up to the thread
//! budget.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hercules::exec::{toy, Executor, MultiInstanceMode};

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig06/parallel_branches");
    group.sample_size(10);
    for branches in [1usize, 2, 4, 8] {
        let (schema, flow, db, binding) = hercules_bench::disjoint_branches(branches);
        let registry = toy::text_registry_with(
            &schema,
            toy::TextTool {
                mode: MultiInstanceMode::RunPerInstance,
                work: Duration::from_millis(2),
            },
        );
        for parallel in [false, true] {
            let mut executor = Executor::new(registry.clone());
            executor.options_mut().parallel = parallel;
            let label = if parallel { "parallel" } else { "serial" };
            group.bench_with_input(
                BenchmarkId::new(label, branches),
                &(flow.clone(), db.clone(), binding.clone()),
                |b, (flow, db, binding)| {
                    b.iter(|| {
                        let mut db = db.clone();
                        executor.execute(flow, binding, &mut db).expect("runs")
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_scheduling_overhead(c: &mut Criterion) {
    // Zero-work tools isolate the engine's own scheduling cost.
    let mut group = c.benchmark_group("fig06/scheduling_overhead");
    for branches in [2usize, 8] {
        let (schema, flow, db, binding) = hercules_bench::disjoint_branches(branches);
        let registry = toy::text_registry(&schema);
        for parallel in [false, true] {
            let mut executor = Executor::new(registry.clone());
            executor.options_mut().parallel = parallel;
            let label = if parallel {
                "parallel_zero_work"
            } else {
                "serial_zero_work"
            };
            group.bench_with_input(
                BenchmarkId::new(label, branches),
                &(flow.clone(), db.clone(), binding.clone()),
                |b, (flow, db, binding)| {
                    b.iter(|| {
                        let mut db = db.clone();
                        executor.execute(flow, binding, &mut db).expect("runs")
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_machine_sweep(c: &mut Criterion) {
    // Fig. 6's "possibly on different machines": list-scheduling the
    // flow onto k simulated machines. The measured quantity is the
    // scheduler itself; the schedule's makespan/speedup appear in
    // EXPERIMENTS.md (printed once below).
    use hercules::exec::cluster::{simulate_schedule, UniformCost};
    use hercules::flow::TaskGraph;
    use hercules::schema::synth::SynthConfig;

    let cfg = SynthConfig {
        layers: 5,
        width: 8,
        fanin: 2,
        subtypes: 0,
    };
    let schema = std::sync::Arc::new(cfg.generate());
    let mut flow = TaskGraph::new(schema.clone());
    for goal in cfg.goal_layer(&schema) {
        let node = flow.seed(goal).expect("seeds");
        flow.expand_all(node).expect("expands");
    }

    let mut group = c.benchmark_group("fig06/machine_sweep");
    for machines in [1usize, 2, 4, 8, 16] {
        let s = simulate_schedule(&flow, &UniformCost(10), machines).expect("schedules");
        eprintln!(
            "machine_sweep: k={machines} makespan={} speedup={:.2} efficiency={:.2}",
            s.makespan,
            s.speedup(),
            s.efficiency()
        );
        group.bench_with_input(
            BenchmarkId::new("list_schedule", machines),
            &machines,
            |b, &machines| {
                b.iter(|| simulate_schedule(&flow, &UniformCost(10), machines).expect("schedules"))
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_parallel, bench_scheduling_overhead, bench_machine_sweep
}

criterion_main!(benches);
