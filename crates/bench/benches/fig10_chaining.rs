//! Experiment F10 (Fig. 10): backward/forward chaining cost vs history
//! depth, plus the DESIGN.md ablation — reconstructing chains from the
//! paper's *immediate* per-object records vs maintaining materialized
//! transitive closures.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hercules::history::{HistoryDb, InstanceId};

/// Materializes the full ancestor closure of every instance — the
/// storage-hungry alternative the paper's immediate records avoid.
fn materialize_closures(db: &HistoryDb) -> HashMap<InstanceId, Vec<InstanceId>> {
    db.instances()
        .map(|i| (i.id(), db.ancestors(i.id()).expect("chains")))
        .collect()
}

fn bench_chaining(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10/chaining_vs_depth");
    for depth in [10usize, 100, 1000] {
        let (db, newest) = hercules_bench::edit_chain(depth);
        let root = InstanceId::from_raw(1);
        group.bench_with_input(
            BenchmarkId::new("backward_chain_full", depth),
            &db,
            |b, db| b.iter(|| db.backward_chain(newest, None).expect("chains")),
        );
        group.bench_with_input(
            BenchmarkId::new("backward_chain_depth1", depth),
            &db,
            |b, db| b.iter(|| db.backward_chain(newest, Some(1)).expect("chains")),
        );
        group.bench_with_input(
            BenchmarkId::new("forward_chain_from_root", depth),
            &db,
            |b, db| b.iter(|| db.forward_chain(root).expect("chains")),
        );
        group.bench_with_input(BenchmarkId::new("ancestors_dedup", depth), &db, |b, db| {
            b.iter(|| db.ancestors(newest).expect("chains"))
        });
    }
    group.finish();
}

fn bench_immediate_vs_materialized(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10/immediate_vs_materialized");
    group.sample_size(20);
    for depth in [100usize, 1000] {
        let (db, newest) = hercules_bench::edit_chain(depth);
        // The one-off cost of materializing everything.
        group.bench_with_input(
            BenchmarkId::new("materialize_all_closures", depth),
            &db,
            |b, db| b.iter(|| materialize_closures(db)),
        );
        // Query cost afterwards: hash lookup vs reconstruction.
        let closures = materialize_closures(&db);
        group.bench_with_input(
            BenchmarkId::new("query_materialized", depth),
            &closures,
            |b, closures| b.iter(|| closures.get(&newest).expect("present").len()),
        );
        group.bench_with_input(
            BenchmarkId::new("query_immediate_records", depth),
            &db,
            |b, db| b.iter(|| db.ancestors(newest).expect("chains").len()),
        );
    }
    group.finish();
}

fn bench_template_query(c: &mut Criterion) {
    let (session, _) = {
        let (mut session, netlist) = hercules_bench::session_with_adder();
        // Populate: run the simulate flow a few times with different
        // stimuli so the template has several candidate matches.
        let schema = session.schema().clone();
        let stimuli_entity = schema.require("Stimuli").expect("known");
        for seed in 0..4u64 {
            let s = hercules::eda::Stimuli::random(&["a", "b", "cin"], 8, 25, seed);
            session
                .db_mut()
                .record_primary(
                    stimuli_entity,
                    hercules::history::Metadata::by("bench").named(&format!("s{seed}")),
                    &s.to_bytes(),
                )
                .expect("records");
        }
        let perf = session.start_from_goal("Performance").expect("starts");
        let created = session.expand(perf).expect("expands");
        let circuit = created[1];
        let stim_node = created[2];
        session.expand(circuit).expect("expands");
        let netlist_node = session.flow().expect("flow").data_inputs_of(circuit)[1];
        session.select(netlist_node, netlist);
        // Only the adder-compatible stimulus sets (skip the seeded
        // "step on in" which drives a different circuit's port).
        let adder_stims: Vec<_> = session
            .db()
            .instances_of(stimuli_entity)
            .into_iter()
            .filter(|&i| {
                let name = &session.db().instance(i).expect("present").meta().name;
                name.contains("adder") || (name.len() == 2 && name.starts_with('s'))
            })
            .collect();
        session.select_many(stim_node, &adder_stims);
        session.bind_latest().expect("binds");
        session.run().expect("runs");
        (session, netlist)
    };

    let schema = session.schema().clone();
    let mut template = hercules::flow::TaskGraph::new(schema.clone());
    let perf_node = template
        .seed(schema.require("Performance").expect("known"))
        .expect("seeds");
    template.expand(perf_node).expect("expands");

    let mut group = c.benchmark_group("fig10/template_query");
    group.bench_function("unbound_template", |b| {
        b.iter(|| {
            session
                .db()
                .query_template(&template, &[], None)
                .expect("queries")
        })
    });
    group.bench_function("first_match_only", |b| {
        b.iter(|| {
            session
                .db()
                .query_template(&template, &[], Some(1))
                .expect("queries")
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_chaining,
    bench_immediate_vs_materialized,
    bench_template_query
}

criterion_main!(benches);
