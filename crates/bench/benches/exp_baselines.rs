//! Experiment E1: the flexibility/enforcement comparison of §2 — the
//! per-move decision cost of the three manager styles, and the whole
//! experiment end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hercules::baseline::{
    flexibility::evaluate, random_session, DynamicManager, StaticFlowManager, TraceManager,
};
use hercules::schema::synth::SynthConfig;

fn bench_managers(c: &mut Criterion) {
    let schema = hercules::schema::fixtures::fig1();
    let session = random_session(&schema, 60, 0.7, 42);

    let mut group = c.benchmark_group("exp_baselines/session_evaluation");
    group.bench_function("dynamic", |b| {
        b.iter(|| {
            let mut m = DynamicManager::new(&schema);
            evaluate(&schema, &mut m, &session)
        })
    });
    group.bench_function("static_predefined", |b| {
        b.iter(|| {
            let mut m = StaticFlowManager::reference_flow(&schema);
            evaluate(&schema, &mut m, &session)
        })
    });
    group.bench_function("trace_recorder", |b| {
        b.iter(|| {
            let mut m = TraceManager::new();
            evaluate(&schema, &mut m, &session)
        })
    });
    group.finish();
}

fn bench_schema_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp_baselines/dynamic_vs_schema_size");
    for cfg in [
        SynthConfig {
            layers: 3,
            width: 3,
            fanin: 2,
            subtypes: 0,
        },
        SynthConfig {
            layers: 6,
            width: 8,
            fanin: 3,
            subtypes: 0,
        },
        SynthConfig {
            layers: 10,
            width: 12,
            fanin: 3,
            subtypes: 0,
        },
    ] {
        let schema = cfg.generate();
        let session = random_session(&schema, 60, 0.7, 7);
        group.bench_with_input(
            BenchmarkId::new("dynamic_manager", schema.len()),
            &(schema, session),
            |b, (schema, session)| {
                b.iter(|| {
                    let mut m = DynamicManager::new(schema);
                    evaluate(schema, &mut m, session)
                })
            },
        );
    }
    group.finish();
}

fn bench_session_generation(c: &mut Criterion) {
    let schema = hercules::schema::fixtures::fig1();
    let mut group = c.benchmark_group("exp_baselines/workload_generation");
    for length in [20usize, 100] {
        group.bench_with_input(
            BenchmarkId::new("random_session", length),
            &length,
            |b, &length| b.iter(|| random_session(&schema, length, 0.7, 3)),
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_managers,
    bench_schema_scaling,
    bench_session_generation
}

criterion_main!(benches);
