//! Experiment F2 (Fig. 2): compile-once-run-many vs recompile-per-run.
//!
//! COSMOS's point was that compiling the netlist into a simulator pays
//! off across repeated runs; the framework makes the compiled simulator
//! a reusable design object. We sweep the number of stimulus runs and
//! compare the compiled tool against the uncompiled baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hercules::eda::{cells, cosmos, to_transistor_level, Stimuli};

fn bench_compile_vs_interpret(c: &mut Criterion) {
    let gates = cells::ripple_adder(4);
    let xtors = to_transistor_level(&gates).expect("synthesizes");
    let inputs: Vec<String> = (0..4)
        .flat_map(|i| [format!("a{i}"), format!("b{i}")])
        .chain(["cin".to_owned()])
        .collect();
    let input_refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
    let stimuli: Vec<Stimuli> = (0..16)
        .map(|seed| Stimuli::random(&input_refs, 16, 10, seed))
        .collect();

    let mut group = c.benchmark_group("fig02/compile_vs_interpret");
    group.sample_size(20);
    for runs in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("compiled_tool", runs),
            &runs,
            |b, &runs| {
                b.iter(|| {
                    // Compile once, run `runs` stimulus sets.
                    let sim = cosmos::compile(&xtors).expect("compiles");
                    for s in stimuli.iter().take(runs) {
                        sim.run(s).expect("runs");
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("uncompiled_baseline", runs),
            &runs,
            |b, &runs| {
                b.iter(|| {
                    for s in stimuli.iter().take(runs) {
                        cosmos::interpret(&xtors, s).expect("runs");
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_compile_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig02/compile_cost");
    for width in [2usize, 4, 8] {
        let xtors = to_transistor_level(&cells::ripple_adder(width)).expect("synthesizes");
        group.bench_with_input(
            BenchmarkId::new("compile", xtors.mos_count()),
            &xtors,
            |b, xtors| b.iter(|| cosmos::compile(xtors).expect("compiles")),
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_compile_vs_interpret, bench_compile_cost
}

criterion_main!(benches);
