//! Experiment E2: consistency maintenance — staleness detection and
//! retrace cost, in the already-current case (pure cache) and after an
//! edit (partial re-run), swept over circuit size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hercules::eda;
use hercules::history::{Derivation, Metadata};
use hercules::Session;

/// Builds a session with a placed+extracted adder of the given width;
/// returns (session, netlist v1, extracted instance).
fn extraction_scenario(
    width: usize,
) -> (
    Session,
    hercules::history::InstanceId,
    hercules::history::InstanceId,
) {
    let mut session = Session::odyssey("bench");
    let v1 = hercules_bench::record_netlist(&mut session, "v1", &eda::cells::ripple_adder(width));
    let ext = session.start_from_goal("ExtractedNetlist").expect("starts");
    let created = session.expand(ext).expect("expands");
    let layout_node = created[1];
    let created = session.expand(layout_node).expect("expands");
    session.select(created[1], v1);
    session.bind_latest().expect("binds");
    session.run().expect("runs");
    let extracted = session.last_report().expect("ran").single(ext);
    (session, v1, extracted)
}

fn bench_staleness_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp_consistency/staleness");
    let (mut session, v1, extracted) = extraction_scenario(4);
    group.bench_function("check_current_instance", |b| {
        b.iter(|| session.db().is_up_to_date(extracted).expect("checks"))
    });
    // Make it stale.
    let schema = session.schema().clone();
    let editor = schema.require("CircuitEditor").expect("known");
    let editor_inst = session.db().instances_of(editor)[0];
    session
        .db_mut()
        .record_derived(
            schema.require("EditedNetlist").expect("known"),
            Metadata::by("bench").named("v2"),
            &eda::cells::ripple_adder(4).to_bytes(),
            Derivation::by_tool(editor_inst, [v1]),
        )
        .expect("records");
    group.bench_function("scan_whole_db_for_stale", |b| {
        b.iter(|| session.db().stale_instances().expect("scans"))
    });
    group.finish();
}

fn bench_retrace(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp_consistency/retrace");
    group.sample_size(10);
    for width in [2usize, 8] {
        // Already-current: retrace is pure cache.
        group.bench_with_input(
            BenchmarkId::new("already_current", width),
            &width,
            |b, &width| {
                b.iter_batched(
                    || extraction_scenario(width),
                    |(mut session, _, extracted)| session.retrace(extracted).expect("retraces"),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
        // After an edit: placer and extractor re-run against v2.
        group.bench_with_input(
            BenchmarkId::new("after_edit", width),
            &width,
            |b, &width| {
                b.iter_batched(
                    || {
                        let (mut session, v1, extracted) = extraction_scenario(width);
                        let schema = session.schema().clone();
                        let editor = schema.require("CircuitEditor").expect("known");
                        let editor_inst = session.db().instances_of(editor)[0];
                        session
                            .db_mut()
                            .record_derived(
                                schema.require("EditedNetlist").expect("known"),
                                Metadata::by("bench").named("v2"),
                                &eda::cells::ripple_adder(width + 1).to_bytes(),
                                Derivation::by_tool(editor_inst, [v1]),
                            )
                            .expect("records");
                        (session, extracted)
                    },
                    |(mut session, extracted)| session.retrace(extracted).expect("retraces"),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_staleness_detection, bench_retrace
}

criterion_main!(benches);
