//! Experiment F9 (Fig. 9): instance-browser filter cost vs database
//! size — the user/date/keyword/use-dependency filters of the browser
//! dialog.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hercules::history::{BrowserQuery, InstanceId, Timestamp};

fn bench_browser(c: &mut Criterion) {
    let schema = hercules_bench::fig1();
    let edited = schema.require("EditedNetlist").expect("known");

    let mut group = c.benchmark_group("fig09/browser_filters");
    for size in [100usize, 1000, 5000] {
        let db = hercules_bench::browsing_db(size, 8);
        group.bench_with_input(BenchmarkId::new("unfiltered", size), &db, |b, db| {
            b.iter(|| BrowserQuery::family(edited).run(db).expect("queries"))
        });
        group.bench_with_input(BenchmarkId::new("by_user", size), &db, |b, db| {
            b.iter(|| {
                BrowserQuery::family(edited)
                    .user("user3")
                    .run(db)
                    .expect("queries")
            })
        });
        group.bench_with_input(BenchmarkId::new("date_window", size), &db, |b, db| {
            b.iter(|| {
                BrowserQuery::family(edited)
                    .from(Timestamp(size as u64 / 4))
                    .to(Timestamp(size as u64 / 2))
                    .run(db)
                    .expect("queries")
            })
        });
        group.bench_with_input(BenchmarkId::new("keyword", size), &db, |b, db| {
            b.iter(|| {
                BrowserQuery::family(edited)
                    .keyword("digital")
                    .run(db)
                    .expect("queries")
            })
        });
        group.bench_with_input(BenchmarkId::new("use_dependencies", size), &db, |b, db| {
            b.iter(|| {
                BrowserQuery::family(edited)
                    .use_dependencies(InstanceId::from_raw(0))
                    .run(db)
                    .expect("queries")
            })
        });
        group.bench_with_input(BenchmarkId::new("combined", size), &db, |b, db| {
            b.iter(|| {
                BrowserQuery::family(edited)
                    .user("user1")
                    .keyword("analog")
                    .from(Timestamp(1))
                    .run(db)
                    .expect("queries")
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_browser
}

criterion_main!(benches);
