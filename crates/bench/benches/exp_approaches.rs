//! Experiment E3: the four design approaches (§3.4) — time to reach
//! the same executable simulate flow from each entry point.

use criterion::{criterion_group, criterion_main, Criterion};
use hercules::{Approach, Session};

/// Builds the full simulate flow goal-first inside `session`.
fn build_goal_based(session: &mut Session) {
    let perf = session.start_from_goal("Performance").expect("starts");
    let created = session.expand(perf).expect("expands");
    let circuit = created[1];
    let created = session.expand(circuit).expect("expands");
    let netlist = created[1];
    session
        .specialize(netlist, "EditedNetlist")
        .expect("subtype");
    session.expand(netlist).expect("expands");
    session.expand(created[0]).expect("expands");
}

fn bench_approaches(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp_approaches/flow_construction");
    group.sample_size(20);

    group.bench_function("goal_based", |b| {
        b.iter_batched(
            || Session::odyssey("bench"),
            |mut session| {
                build_goal_based(&mut session);
                session
            },
            criterion::BatchSize::SmallInput,
        )
    });

    group.bench_function("tool_based", |b| {
        b.iter_batched(
            || Session::odyssey("bench"),
            |mut session| {
                let sim = session.start_from_tool("Simulator").expect("starts");
                let (perf, _) = session.expand_down(sim, "Performance").expect("expands");
                let circuit = session.flow().expect("flow").data_inputs_of(perf)[0];
                session.expand(circuit).expect("expands");
                session
            },
            criterion::BatchSize::SmallInput,
        )
    });

    group.bench_function("data_based", |b| {
        b.iter_batched(
            || {
                let session = Session::odyssey("bench");
                let stim = session
                    .db()
                    .latest_of_family(session.schema().require("Stimuli").expect("known"))
                    .expect("seeded");
                (session, stim)
            },
            |(mut session, stim)| {
                let node = session.start(Approach::Data(stim)).expect("starts");
                let (perf, _) = session.expand_down(node, "Performance").expect("expands");
                // The stimuli edge was added first; find the circuit
                // input by entity.
                let schema = session.schema().clone();
                let circuit = session
                    .flow()
                    .expect("flow")
                    .data_inputs_of(perf)
                    .into_iter()
                    .find(|&n| {
                        session
                            .flow()
                            .expect("flow")
                            .entity_of(n)
                            .map(|e| schema.entity(e).name() == "Circuit")
                            .unwrap_or(false)
                    })
                    .expect("circuit input");
                session.expand(circuit).expect("expands");
                session
            },
            criterion::BatchSize::SmallInput,
        )
    });

    group.bench_function("plan_based", |b| {
        // Store the reference flow once, then measure instantiation.
        let mut template_session = Session::odyssey("bench");
        build_goal_based(&mut template_session);
        template_session
            .store_flow("simulate", "reference")
            .expect("stores");
        let catalog = template_session.catalog().clone();
        b.iter_batched(
            || {
                let mut session = Session::odyssey("bench");
                *session.catalog_mut() = catalog.clone();
                session
            },
            |mut session| {
                session.start_from_plan("simulate").expect("instantiates");
                session
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_approaches
}

criterion_main!(benches);
