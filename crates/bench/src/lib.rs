//! Shared workload builders for the per-figure benchmarks.
//!
//! `DESIGN.md` §4 maps every figure of the paper to a bench target in
//! `benches/`; this crate holds the generators those targets share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

use hercules::eda;
use hercules::exec::toy;
use hercules::history::{Derivation, HistoryDb, InstanceId, Metadata};
use hercules::schema::{fixtures, TaskSchema};
use hercules::Session;

/// Returns the Fig. 1 schema behind an `Arc`.
pub fn fig1() -> Arc<TaskSchema> {
    Arc::new(fixtures::fig1())
}

/// Returns the merged Odyssey schema behind an `Arc`.
pub fn odyssey() -> Arc<TaskSchema> {
    Arc::new(fixtures::odyssey())
}

/// A standard session with one recorded full-adder netlist; returns
/// `(session, netlist instance)`.
pub fn session_with_adder() -> (Session, InstanceId) {
    let mut session = Session::odyssey("bench");
    let netlist = record_netlist(&mut session, "fa", &eda::cells::full_adder());
    (session, netlist)
}

/// Records a gate-level netlist as an `EditedNetlist` in the session's
/// history.
pub fn record_netlist(session: &mut Session, name: &str, netlist: &eda::Netlist) -> InstanceId {
    let schema = session.schema().clone();
    let editor = schema.require("CircuitEditor").expect("known");
    let edited = schema.require("EditedNetlist").expect("known");
    let tool = session.db().instances_of(editor)[0];
    session
        .db_mut()
        .record_derived(
            edited,
            Metadata::by("bench").named(name),
            &netlist.to_bytes(),
            Derivation::by_tool(tool, []),
        )
        .expect("records")
}

/// Builds a history database containing an edit chain of `depth`
/// versions (v0 ← v1 ← … ) plus the editor; returns `(db, newest)`.
pub fn edit_chain(depth: usize) -> (HistoryDb, InstanceId) {
    let schema = fig1();
    let mut db = HistoryDb::new(schema.clone());
    let editor = db
        .record_primary(
            schema.require("CircuitEditor").expect("known"),
            Metadata::by("bench").named("ed"),
            b"ed",
        )
        .expect("records");
    let edited = schema.require("EditedNetlist").expect("known");
    let mut prev: Option<InstanceId> = None;
    for i in 0..depth.max(1) {
        let inst = db
            .record_derived(
                edited,
                Metadata::by("bench").named(&format!("v{i}")),
                format!("v{i}").as_bytes(),
                Derivation::by_tool(editor, prev),
            )
            .expect("records");
        prev = Some(inst);
    }
    (db, prev.expect("at least one version"))
}

/// Builds a history database with `count` independent instances spread
/// over `users` users and alternating keywords, for browser benches.
pub fn browsing_db(count: usize, users: usize) -> HistoryDb {
    let schema = fig1();
    let mut db = HistoryDb::new(schema.clone());
    let editor = db
        .record_primary(
            schema.require("CircuitEditor").expect("known"),
            Metadata::by("bench").named("ed"),
            b"ed",
        )
        .expect("records");
    let edited = schema.require("EditedNetlist").expect("known");
    for i in 0..count {
        let user = format!("user{}", i % users.max(1));
        let meta = Metadata::by(&user)
            .named(&format!("design {i}"))
            .keyword(if i % 2 == 0 { "digital" } else { "analog" });
        db.record_derived(
            edited,
            meta,
            format!("d{i}").as_bytes(),
            Derivation::by_tool(editor, []),
        )
        .expect("records");
    }
    db
}

/// Builds a flow of `branches` independent placement tasks over the
/// Fig. 1 schema (disjoint branches for the Fig. 6 parallel bench),
/// plus a seeded toy database and binding.
pub fn disjoint_branches(
    branches: usize,
) -> (
    Arc<TaskSchema>,
    hercules::flow::TaskGraph,
    HistoryDb,
    hercules::exec::Binding,
) {
    let schema = fig1();
    let mut flow = hercules::flow::TaskGraph::new(schema.clone());
    for _ in 0..branches.max(1) {
        let layout = flow
            .seed(schema.require("Layout").expect("known"))
            .expect("seeds");
        flow.expand(layout).expect("expands");
    }
    let mut db = HistoryDb::new(schema.clone());
    toy::seed_everything(&mut db, "bench");
    let mut binding = hercules::exec::Binding::new();
    binding.bind_latest(&flow, &db);
    (schema, flow, db, binding)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_chain_has_requested_depth() {
        let (db, newest) = edit_chain(10);
        assert_eq!(db.len(), 11);
        let forest = db
            .version_forest(db.instance(newest).expect("present").entity())
            .expect("builds");
        assert_eq!(forest.depth(newest), 9);
    }

    #[test]
    fn browsing_db_spreads_users() {
        let db = browsing_db(50, 5);
        assert_eq!(db.len(), 51);
        assert_eq!(db.users().len(), 6, "5 designers + the bench seeder");
    }

    #[test]
    fn disjoint_branches_bind_completely() {
        let (_, flow, db, binding) = disjoint_branches(4);
        assert_eq!(flow.outputs().len(), 4);
        binding.validate(&flow, &db).expect("fully bound");
    }
}
