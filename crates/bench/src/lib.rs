//! Shared workload builders for the per-figure benchmarks.
//!
//! `DESIGN.md` §4 maps every figure of the paper to a bench target in
//! `benches/`; this crate holds the generators those targets share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

use hercules::eda;
use hercules::exec::toy;
use hercules::history::{Derivation, HistoryDb, InstanceId, Metadata};
use hercules::schema::{fixtures, TaskSchema};
use hercules::Session;

/// Returns the Fig. 1 schema behind an `Arc`.
pub fn fig1() -> Arc<TaskSchema> {
    Arc::new(fixtures::fig1())
}

/// Returns the merged Odyssey schema behind an `Arc`.
pub fn odyssey() -> Arc<TaskSchema> {
    Arc::new(fixtures::odyssey())
}

/// A standard session with one recorded full-adder netlist; returns
/// `(session, netlist instance)`.
pub fn session_with_adder() -> (Session, InstanceId) {
    let mut session = Session::odyssey("bench");
    let netlist = record_netlist(&mut session, "fa", &eda::cells::full_adder());
    (session, netlist)
}

/// Records a gate-level netlist as an `EditedNetlist` in the session's
/// history.
pub fn record_netlist(session: &mut Session, name: &str, netlist: &eda::Netlist) -> InstanceId {
    let schema = session.schema().clone();
    let editor = schema.require("CircuitEditor").expect("known");
    let edited = schema.require("EditedNetlist").expect("known");
    let tool = session.db().instances_of(editor)[0];
    session
        .db_mut()
        .record_derived(
            edited,
            Metadata::by("bench").named(name),
            &netlist.to_bytes(),
            Derivation::by_tool(tool, []),
        )
        .expect("records")
}

/// Builds a history database containing an edit chain of `depth`
/// versions (v0 ← v1 ← … ) plus the editor; returns `(db, newest)`.
pub fn edit_chain(depth: usize) -> (HistoryDb, InstanceId) {
    let schema = fig1();
    let mut db = HistoryDb::new(schema.clone());
    let editor = db
        .record_primary(
            schema.require("CircuitEditor").expect("known"),
            Metadata::by("bench").named("ed"),
            b"ed",
        )
        .expect("records");
    let edited = schema.require("EditedNetlist").expect("known");
    let mut prev: Option<InstanceId> = None;
    for i in 0..depth.max(1) {
        let inst = db
            .record_derived(
                edited,
                Metadata::by("bench").named(&format!("v{i}")),
                format!("v{i}").as_bytes(),
                Derivation::by_tool(editor, prev),
            )
            .expect("records");
        prev = Some(inst);
    }
    (db, prev.expect("at least one version"))
}

/// Builds a history database with `count` independent instances spread
/// over `users` users and alternating keywords, for browser benches.
pub fn browsing_db(count: usize, users: usize) -> HistoryDb {
    let schema = fig1();
    let mut db = HistoryDb::new(schema.clone());
    let editor = db
        .record_primary(
            schema.require("CircuitEditor").expect("known"),
            Metadata::by("bench").named("ed"),
            b"ed",
        )
        .expect("records");
    let edited = schema.require("EditedNetlist").expect("known");
    for i in 0..count {
        let user = format!("user{}", i % users.max(1));
        let meta = Metadata::by(&user)
            .named(&format!("design {i}"))
            .keyword(if i % 2 == 0 { "digital" } else { "analog" });
        db.record_derived(
            edited,
            meta,
            format!("d{i}").as_bytes(),
            Derivation::by_tool(editor, []),
        )
        .expect("records");
    }
    db
}

/// Builds a flow of `branches` independent placement tasks over the
/// Fig. 1 schema (disjoint branches for the Fig. 6 parallel bench),
/// plus a seeded toy database and binding.
pub fn disjoint_branches(
    branches: usize,
) -> (
    Arc<TaskSchema>,
    hercules::flow::TaskGraph,
    HistoryDb,
    hercules::exec::Binding,
) {
    let schema = fig1();
    let mut flow = hercules::flow::TaskGraph::new(schema.clone());
    for _ in 0..branches.max(1) {
        let layout = flow
            .seed(schema.require("Layout").expect("known"))
            .expect("seeds");
        flow.expand(layout).expect("expands");
    }
    let mut db = HistoryDb::new(schema.clone());
    toy::seed_everything(&mut db, "bench");
    let mut binding = hercules::exec::Binding::new();
    binding.bind_latest(&flow, &db);
    (schema, flow, db, binding)
}

/// Builds the straggler workload: one branch that is a single task
/// costing `straggler_us` microseconds, next to `branches − 1` chains of
/// `depth` unit-cost tasks. Under wave scheduling the first barrier
/// waits for the straggler while every chain sits at depth 1; a
/// dataflow scheduler lets the chains advance concurrently, so the
/// makespan gap between the two is the benchmark signal.
///
/// The unit cost comes from the registry's [`toy::TextTool::work`]; the
/// straggler's cost rides in its tool instance data (`cost:<µs>`),
/// which [`toy::TextTool`] parses as a sleep override. Each chain binds
/// its own `Seed` instance so the executor's invocation cache cannot
/// collapse the branches into one.
///
/// # Panics
///
/// Never under normal operation; the schema is built locally.
pub fn straggler_branches(
    branches: usize,
    depth: usize,
    straggler_us: u64,
) -> (
    Arc<TaskSchema>,
    hercules::flow::TaskGraph,
    HistoryDb,
    hercules::exec::Binding,
) {
    use hercules::schema::SchemaBuilder;

    let branches = branches.max(2);
    let depth = depth.max(1);
    let mut b = SchemaBuilder::new();
    let step = b.tool("Step");
    let long = b.tool("Long");
    let seed = b.data("Seed");
    let mut prev = seed;
    let mut chain = Vec::new();
    for k in 1..=depth {
        let link = b.data(&format!("C{k}"));
        b.functional(link, step);
        b.data_dep(link, prev);
        chain.push(link);
        prev = link;
    }
    let slow = b.data("Slow");
    b.functional(slow, long);
    b.data_dep(slow, seed);
    let schema = Arc::new(b.build().expect("straggler schema"));

    let mut db = HistoryDb::new(schema.clone());
    let step_tool = db
        .record_primary(step, Metadata::by("bench").named("step"), b"")
        .expect("records");
    let long_tool = db
        .record_primary(
            long,
            Metadata::by("bench").named("long"),
            format!("cost:{straggler_us}").as_bytes(),
        )
        .expect("records");

    let mut flow = hercules::flow::TaskGraph::new(schema.clone());
    let mut binding = hercules::exec::Binding::new();
    let top = *chain.last().expect("depth >= 1");
    for branch in 0..branches - 1 {
        let goal = flow.seed(top).expect("seeds");
        flow.expand_all(goal).expect("expands");
        // Distinct seed data per branch defeats invocation caching.
        let inst = db
            .record_primary(
                seed,
                Metadata::by("bench").named(&format!("seed{branch}")),
                format!("s{branch}").as_bytes(),
            )
            .expect("records");
        for leaf in flow.leaves() {
            if binding.get(leaf).is_empty() {
                let entity = flow.entity_of(leaf).expect("node");
                if entity == seed {
                    binding.bind(leaf, inst);
                } else if entity == step {
                    binding.bind(leaf, step_tool);
                }
            }
        }
    }
    let goal = flow.seed(slow).expect("seeds");
    flow.expand_all(goal).expect("expands");
    let straggler_seed = db
        .record_primary(seed, Metadata::by("bench").named("seed-straggler"), b"slow")
        .expect("records");
    for leaf in flow.leaves() {
        if binding.get(leaf).is_empty() {
            let entity = flow.entity_of(leaf).expect("node");
            if entity == seed {
                binding.bind(leaf, straggler_seed);
            } else if entity == step {
                binding.bind(leaf, step_tool);
            } else if entity == long {
                binding.bind(leaf, long_tool);
            }
        }
    }
    (schema, flow, db, binding)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_chain_has_requested_depth() {
        let (db, newest) = edit_chain(10);
        assert_eq!(db.len(), 11);
        let forest = db
            .version_forest(db.instance(newest).expect("present").entity())
            .expect("builds");
        assert_eq!(forest.depth(newest), 9);
    }

    #[test]
    fn browsing_db_spreads_users() {
        let db = browsing_db(50, 5);
        assert_eq!(db.len(), 51);
        assert_eq!(db.users().len(), 6, "5 designers + the bench seeder");
    }

    #[test]
    fn disjoint_branches_bind_completely() {
        let (_, flow, db, binding) = disjoint_branches(4);
        assert_eq!(flow.outputs().len(), 4);
        binding.validate(&flow, &db).expect("fully bound");
    }

    #[test]
    fn straggler_branches_bind_and_execute_distinctly() {
        let (schema, flow, mut db, binding) = straggler_branches(4, 3, 50);
        assert_eq!(flow.outputs().len(), 4, "3 chains + 1 straggler");
        binding.validate(&flow, &db).expect("fully bound");
        // The wave schedule is barrier-limited: the first wave holds
        // the straggler plus every chain head, later waves thin out.
        let waves = flow.parallel_waves().expect("acyclic");
        assert_eq!(waves.len(), 3, "chain depth bounds the wave count");

        let registry = toy::text_registry(&schema);
        let executor = hercules::exec::Executor::new(registry);
        let report = executor.execute(&flow, &binding, &mut db).expect("runs");
        // 3 chains × 3 steps + 1 straggler, none collapsed by the
        // invocation cache.
        assert_eq!(report.tasks.len(), 10);
        let texts: std::collections::BTreeSet<String> = flow
            .outputs()
            .iter()
            .map(|&o| {
                String::from_utf8_lossy(db.data_of(report.single(o)).unwrap().unwrap()).into_owned()
            })
            .collect();
        assert_eq!(texts.len(), 4, "every branch produced distinct data");
    }
}
