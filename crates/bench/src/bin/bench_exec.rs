//! `bench_exec` — the executor perf harness behind `BENCH_exec.json`.
//!
//! Measures three executor axes and writes them to one JSON file so
//! successive PRs accumulate a perf trajectory:
//!
//! * the Fig. 6 disjoint-branch workload three ways — serial untraced,
//!   parallel untraced, and parallel fully traced (ring-buffer
//!   collector + metrics registry);
//! * the straggler workload — one branch 10× the work of the rest —
//!   under the wave scheduler and the dataflow scheduler, which is
//!   where barrier-free scheduling earns its keep;
//! * journal-append throughput, per-frame fsync vs group commit;
//! * the content-addressed tool-execution cache — cold (all-miss)
//!   vs warm (populated) vs a degraded remote tier with injected
//!   round-trip latency, on the repeated-subflow fixture.
//!
//! With `--check`, exits nonzero when any gate fails: tracing overhead
//! over budget (default 5% of the untraced median), dataflow slower
//! than 1.3× wave on the straggler fixture, group commit under 2×
//! per-frame-fsync throughput, or a warm cache run under 3× the cold
//! run.
//!
//! ```sh
//! cargo run --release -p hercules-bench --bin bench_exec -- --check
//! ```

use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use hercules::cache::{CacheConfig, ContentCache, LocalDirRemote, RemoteCache};
use hercules::exec::{toy, Binding, Executor, MultiInstanceMode, SchedulerKind};
use hercules::flow::TaskGraph;
use hercules::history::HistoryDb;
use hercules::obs::{Collector, FlightRecorder, Metrics, MultiCollector, RingBuffer, Tracer};
use hercules::schema::TaskSchema;
use hercules::sim::{Clock, Fs};
use hercules::{FlowOp, GroupCommitPolicy, JournalOp, Session, Workspace};

/// `--check` gate: dataflow must beat wave by this factor on the
/// straggler fixture.
const STRAGGLER_GATE: f64 = 1.3;
/// `--check` gate: group commit must beat per-frame fsync by this
/// factor on journal-append throughput.
const JOURNAL_GATE: f64 = 2.0;
/// `--check` gate: adding the flight recorder to an already-traced
/// straggler run must cost at most this much over the ring buffer
/// alone.
const RECORDER_GATE_PERCENT: f64 = 2.0;
/// `--check` gate: a warm content-cache run of the repeated-subflow
/// fixture must beat the cold (all-miss) run by this factor.
const CACHE_GATE: f64 = 3.0;
/// Injected round-trip latency for the degraded-remote measurement.
const REMOTE_LATENCY_US: u64 = 500;

const USAGE: &str = "\
bench_exec — executor perf harness; writes BENCH_exec.json

USAGE:
    bench_exec [--out FILE] [--iters N] [--branches N] [--work-us N]
               [--straggler-branches N] [--straggler-depth N]
               [--journal-ops N] [--budget-percent P] [--check]

    --out FILE             output path [default: BENCH_exec.json]
    --iters N              measured iterations per config [default: 30]
    --branches N           disjoint branches in the workload [default: 4]
    --work-us N            simulated tool compute, µs [default: 2000]
    --straggler-branches N branches in the straggler fixture [default: 8]
    --straggler-depth N    chain depth of the short branches [default: 10]
    --journal-ops N        appends per journal-throughput round [default: 256]
    --budget-percent P     tracing overhead budget for --check [default: 5]
    --check                fail (exit 1) when any gate fails: overhead
                           over budget, dataflow < 1.3x wave on the
                           straggler, group commit < 2x per-frame fsync,
                           warm cache < 3x cold
";

struct Options {
    out: String,
    iters: usize,
    branches: usize,
    work_us: u64,
    straggler_branches: usize,
    straggler_depth: usize,
    journal_ops: usize,
    budget_percent: f64,
    check: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        out: "BENCH_exec.json".into(),
        iters: 30,
        branches: 4,
        work_us: 2_000,
        straggler_branches: 8,
        straggler_depth: 10,
        journal_ops: 256,
        budget_percent: 5.0,
        check: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        fn parse<T: std::str::FromStr>(v: String, name: &str) -> Result<T, String> {
            v.parse().map_err(|_| format!("{name}: bad number"))
        }
        match arg.as_str() {
            "--out" => opts.out = value("--out")?,
            "--iters" => opts.iters = parse(value("--iters")?, "--iters")?,
            "--branches" => opts.branches = parse(value("--branches")?, "--branches")?,
            "--work-us" => opts.work_us = parse(value("--work-us")?, "--work-us")?,
            "--straggler-branches" => {
                opts.straggler_branches =
                    parse(value("--straggler-branches")?, "--straggler-branches")?;
            }
            "--straggler-depth" => {
                opts.straggler_depth = parse(value("--straggler-depth")?, "--straggler-depth")?;
            }
            "--journal-ops" => {
                opts.journal_ops = parse(value("--journal-ops")?, "--journal-ops")?;
            }
            "--budget-percent" => {
                opts.budget_percent = value("--budget-percent")?
                    .parse()
                    .map_err(|_| "--budget-percent: bad number".to_owned())?;
            }
            "--check" => opts.check = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    opts.iters = opts.iters.max(3);
    Ok(opts)
}

/// One measured configuration.
struct Sample {
    name: &'static str,
    parallel: bool,
    traced: bool,
    runs_ns: Vec<u64>,
}

impl Sample {
    fn median_ns(&self) -> u64 {
        let mut sorted = self.runs_ns.clone();
        sorted.sort_unstable();
        sorted[sorted.len() / 2]
    }

    fn mean_ns(&self) -> u64 {
        (self.runs_ns.iter().map(|&n| u128::from(n)).sum::<u128>() / self.runs_ns.len() as u128)
            as u64
    }

    fn min_ns(&self) -> u64 {
        self.runs_ns.iter().copied().min().unwrap_or(0)
    }

    fn max_ns(&self) -> u64 {
        self.runs_ns.iter().copied().max().unwrap_or(0)
    }
}

/// Workload shared by every measured configuration.
struct Workload<'a> {
    schema: &'a Arc<TaskSchema>,
    flow: &'a TaskGraph,
    db: &'a HistoryDb,
    binding: &'a Binding,
}

/// How a measured configuration collects spans, if at all.
enum Tracing {
    Off,
    /// Ring buffer + metrics registry — the standard live pipeline.
    Ring,
    /// Ring buffer + metrics + flight recorder fan-out — the always-on
    /// telemetry pipeline a durable workspace runs.
    Recorder,
}

fn build_executor(
    w: &Workload<'_>,
    opts: &Options,
    parallel: bool,
    tracing: &Tracing,
    scheduler: SchedulerKind,
    workers: usize,
) -> Executor {
    let registry = toy::text_registry_with(
        w.schema,
        toy::TextTool {
            mode: MultiInstanceMode::RunPerInstance,
            work: Duration::from_micros(opts.work_us),
        },
    );
    let mut executor = Executor::new(registry);
    executor.options_mut().parallel = parallel;
    executor.options_mut().scheduler = scheduler;
    executor.options_mut().workers = workers;
    match tracing {
        Tracing::Off => {}
        Tracing::Ring => {
            // The full live pipeline: every span lands in a ring buffer
            // and every task updates the metrics registry.
            executor.options_mut().tracer = Tracer::new(Arc::new(RingBuffer::new(65_536)));
            executor.options_mut().metrics = Metrics::new();
        }
        Tracing::Recorder => {
            let fanout: Arc<dyn Collector> = Arc::new(MultiCollector::new(vec![
                Arc::new(RingBuffer::new(65_536)) as Arc<dyn Collector>,
                Arc::new(FlightRecorder::new()) as Arc<dyn Collector>,
            ]));
            executor.options_mut().tracer = Tracer::new(fanout);
            executor.options_mut().metrics = Metrics::new();
        }
    }
    executor
}

fn time_once(executor: &Executor, w: &Workload<'_>) -> u64 {
    let mut db = w.db.clone();
    let started = Instant::now();
    executor.execute(w.flow, w.binding, &mut db).expect("runs");
    started.elapsed().as_nanos() as u64
}

fn measure(
    name: &'static str,
    w: &Workload<'_>,
    opts: &Options,
    parallel: bool,
    traced: bool,
) -> Sample {
    measure_with(name, w, opts, parallel, traced, SchedulerKind::default(), 0)
}

fn measure_with(
    name: &'static str,
    w: &Workload<'_>,
    opts: &Options,
    parallel: bool,
    traced: bool,
    scheduler: SchedulerKind,
    workers: usize,
) -> Sample {
    let tracing = if traced { Tracing::Ring } else { Tracing::Off };
    let executor = build_executor(w, opts, parallel, &tracing, scheduler, workers);
    // One warm-up iteration, then the measured runs.
    let mut runs_ns = Vec::with_capacity(opts.iters);
    for i in 0..=opts.iters {
        let ns = time_once(&executor, w);
        if i > 0 {
            runs_ns.push(ns);
        }
    }
    Sample {
        name,
        parallel,
        traced,
        runs_ns,
    }
}

/// Measures two configurations as paired runs: each iteration times
/// the base and then the instrumented executor back to back, so clock
/// drift, cache warmth, and scheduler noise hit both sides equally
/// instead of whichever block happened to run second. Overhead is then
/// a median over matched pairs, not a difference of two medians taken
/// minutes apart.
fn measure_paired(
    names: (&'static str, &'static str),
    w: &Workload<'_>,
    opts: &Options,
    parallel: bool,
    tracings: (Tracing, Tracing),
    scheduler: SchedulerKind,
    workers: usize,
) -> (Sample, Sample) {
    let base = build_executor(w, opts, parallel, &tracings.0, scheduler, workers);
    let instrumented = build_executor(w, opts, parallel, &tracings.1, scheduler, workers);
    let mut base_ns = Vec::with_capacity(opts.iters);
    let mut instrumented_ns = Vec::with_capacity(opts.iters);
    for i in 0..=opts.iters {
        // Alternate which side of the pair goes first so neither
        // systematically inherits the other's warmed caches.
        let (first, second, flipped) = if i % 2 == 0 {
            (&base, &instrumented, false)
        } else {
            (&instrumented, &base, true)
        };
        let a = time_once(first, w);
        let b = time_once(second, w);
        if i > 0 {
            let (base_run, instr_run) = if flipped { (b, a) } else { (a, b) };
            base_ns.push(base_run);
            instrumented_ns.push(instr_run);
        }
    }
    let traced = |t: &Tracing| !matches!(t, Tracing::Off);
    (
        Sample {
            name: names.0,
            parallel,
            traced: traced(&tracings.0),
            runs_ns: base_ns,
        },
        Sample {
            name: names.1,
            parallel,
            traced: traced(&tracings.1),
            runs_ns: instrumented_ns,
        },
    )
}

/// Signed per-pair overhead: the median of `(instrumented - base) /
/// base` over matched pairs, in percent. Negative values mean the
/// instrumented side won on this machine — noise, reported as is.
fn paired_overhead_raw_percent(base: &Sample, instrumented: &Sample) -> f64 {
    let mut deltas: Vec<f64> = base
        .runs_ns
        .iter()
        .zip(&instrumented.runs_ns)
        .map(|(&b, &t)| (t as f64 - b as f64) * 100.0 / (b.max(1) as f64))
        .collect();
    deltas.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    if deltas.is_empty() {
        return 0.0;
    }
    deltas[deltas.len() / 2]
}

/// Journal-append throughput: per-frame fsync, group commit, and
/// per-frame fsync under forced segment rotation.
struct JournalBench {
    ops: usize,
    rounds: usize,
    per_frame_ns: u64,
    group_ns: u64,
    rotating_ns: u64,
    rotation_segment_max: u64,
}

impl JournalBench {
    fn per_frame_ops_per_sec(&self) -> f64 {
        self.ops as f64 * 1e9 / self.per_frame_ns.max(1) as f64
    }

    fn group_ops_per_sec(&self) -> f64 {
        self.ops as f64 * 1e9 / self.group_ns.max(1) as f64
    }

    fn speedup(&self) -> f64 {
        self.per_frame_ns as f64 / self.group_ns.max(1) as f64
    }

    fn rotating_ops_per_sec(&self) -> f64 {
        self.ops as f64 * 1e9 / self.rotating_ns.max(1) as f64
    }

    /// Extra cost of rolling segments, relative to the same per-frame
    /// fsync workload on one unbounded segment.
    fn rotation_overhead_percent(&self) -> f64 {
        (self.rotating_ns as f64 - self.per_frame_ns as f64) * 100.0
            / self.per_frame_ns.max(1) as f64
    }
}

/// Content-cache warm-vs-cold over the disjoint-branch fixture: the
/// same subflow executed repeatedly, first with an empty cache (all
/// misses plus write-back), then against the populated cache, then
/// against a cold workspace whose only source is a high-latency
/// remote tier.
struct CacheBench {
    cold_ns: u64,
    warm_ns: u64,
    degraded_warm_ns: u64,
    remote_latency_us: u64,
}

impl CacheBench {
    fn warm_speedup(&self) -> f64 {
        self.cold_ns as f64 / self.warm_ns.max(1) as f64
    }

    fn degraded_speedup(&self) -> f64 {
        self.cold_ns as f64 / self.degraded_warm_ns.max(1) as f64
    }
}

fn bench_cache(w: &Workload<'_>, opts: &Options) -> Result<CacheBench, String> {
    let root = std::env::temp_dir().join(format!("hercules-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let fs = Fs::real();
    let clock = Clock::real();
    let open = |dir: std::path::PathBuf, remote: Option<Arc<dyn RemoteCache>>| {
        ContentCache::open(
            &fs,
            dir,
            remote,
            CacheConfig::default(),
            clock.clone(),
            Metrics::disabled(),
        )
        .map_err(|e| e.to_string())
    };
    let executor_with = |cache: ContentCache| {
        let mut executor =
            build_executor(w, opts, true, &Tracing::Off, SchedulerKind::default(), 0);
        executor.options_mut().cache = Some(cache);
        executor
    };
    let median = |mut runs: Vec<u64>| -> u64 {
        runs.sort_unstable();
        runs[runs.len() / 2]
    };

    // Cold: every iteration opens a fresh cache directory, so every
    // lookup misses and every result is written back.
    let mut cold_runs = Vec::with_capacity(opts.iters);
    for i in 0..=opts.iters {
        let executor = executor_with(open(root.join(format!("cold-{i}")), None)?);
        let ns = time_once(&executor, w);
        if i > 0 {
            cold_runs.push(ns);
        }
    }

    // Warm: one cache populated by the first (discarded) iteration
    // serves all measured iterations.
    let executor = executor_with(open(root.join("warm"), None)?);
    let mut warm_runs = Vec::with_capacity(opts.iters);
    for i in 0..=opts.iters {
        let ns = time_once(&executor, w);
        if i > 0 {
            warm_runs.push(ns);
        }
    }

    // Degraded remote: populate a shared remote endpoint with injected
    // round-trip latency, then measure workspaces that start empty
    // (fresh memory and disk tiers) and can only hit through it.
    let remote: Arc<dyn RemoteCache> = Arc::new(
        LocalDirRemote::open(fs.clone(), root.join("remote"), clock.clone())
            .map_err(|e| e.to_string())?
            .with_latency(Duration::from_micros(REMOTE_LATENCY_US)),
    );
    {
        let cache = open(root.join("remote-seed"), Some(remote.clone()))?;
        let executor = executor_with(cache.clone());
        let mut db = w.db.clone();
        executor
            .execute(w.flow, w.binding, &mut db)
            .map_err(|e| e.to_string())?;
        cache.flush();
    }
    let mut degraded_runs = Vec::with_capacity(opts.iters);
    for i in 0..=opts.iters {
        let executor = executor_with(open(
            root.join(format!("degraded-{i}")),
            Some(remote.clone()),
        )?);
        let ns = time_once(&executor, w);
        if i > 0 {
            degraded_runs.push(ns);
        }
    }

    let _ = std::fs::remove_dir_all(&root);
    Ok(CacheBench {
        cold_ns: median(cold_runs),
        warm_ns: median(warm_runs),
        degraded_warm_ns: median(degraded_runs),
        remote_latency_us: REMOTE_LATENCY_US,
    })
}

/// Segment bound for the rotation config: small enough that a 256-op
/// round rolls dozens of times, large enough to hold several frames.
const ROTATION_SEGMENT_MAX: u64 = 512;

fn bench_journal(opts: &Options) -> Result<JournalBench, String> {
    let ops = opts.journal_ops.max(16);
    let rounds = opts.iters.clamp(3, 10);
    let session = Session::odyssey("bench");
    let op = JournalOp::Flow(FlowOp::Seed {
        entity: "Layout".into(),
    });
    let median_round_ns =
        |tag: &str, group: bool, segment_max: Option<u64>| -> Result<u64, String> {
            let root = std::env::temp_dir().join(format!(
                "hercules-bench-journal-{tag}-{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&root);
            let mut ws = Workspace::create(&root, &session).map_err(|e| e.to_string())?;
            if let Some(max) = segment_max {
                ws.set_segment_max_bytes(max);
            }
            if group {
                ws.enable_group_commit(GroupCommitPolicy::default())
                    .map_err(|e| e.to_string())?;
            }
            let mut runs = Vec::with_capacity(rounds);
            for r in 0..=rounds {
                let started = Instant::now();
                if group {
                    // The group-commit usage pattern: enqueue the round's
                    // frames, then one durability point for all of them.
                    for _ in 0..ops {
                        ws.append_deferred(&op).map_err(|e| e.to_string())?;
                    }
                    ws.sync().map_err(|e| e.to_string())?;
                } else {
                    for _ in 0..ops {
                        ws.append(&op).map_err(|e| e.to_string())?;
                    }
                }
                if r > 0 {
                    runs.push(started.elapsed().as_nanos() as u64);
                }
            }
            drop(ws);
            let _ = std::fs::remove_dir_all(&root);
            runs.sort_unstable();
            Ok(runs[runs.len() / 2])
        };
    Ok(JournalBench {
        ops,
        rounds,
        per_frame_ns: median_round_ns("frame", false, None)?,
        group_ns: median_round_ns("group", true, None)?,
        rotating_ns: median_round_ns("rotate", false, Some(ROTATION_SEGMENT_MAX))?,
        rotation_segment_max: ROTATION_SEGMENT_MAX,
    })
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    opts: &Options,
    samples: &[Sample],
    overhead_percent: f64,
    overhead_raw_percent: f64,
    straggler: &[Sample],
    straggler_speedup: f64,
    recorder_percent: f64,
    recorder_raw_percent: f64,
    journal: &JournalBench,
    cache: &CacheBench,
) -> String {
    let stamp_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"exec\",");
    let _ = writeln!(out, "  \"unix_ms\": {stamp_ms},");
    let _ = writeln!(
        out,
        "  \"workload\": {{\"fixture\": \"fig06-style disjoint branches\", \
         \"branches\": {}, \"work_us\": {}, \"iters\": {}}},",
        opts.branches, opts.work_us, opts.iters
    );
    let _ = writeln!(
        out,
        "  \"tracing_overhead_percent\": {overhead_percent:.3},"
    );
    let _ = writeln!(
        out,
        "  \"tracing_overhead_raw_percent\": {overhead_raw_percent:.3},"
    );
    let _ = writeln!(out, "  \"budget_percent\": {:.1},", opts.budget_percent);
    let render_configs = |out: &mut String, samples: &[Sample]| {
        for (i, s) in samples.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"parallel\": {}, \"traced\": {}, \
                 \"median_ns\": {}, \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
                s.name,
                s.parallel,
                s.traced,
                s.median_ns(),
                s.mean_ns(),
                s.min_ns(),
                s.max_ns()
            );
            out.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
        }
    };
    let _ = writeln!(
        out,
        "  \"straggler\": {{\"branches\": {}, \"depth\": {}, \"straggler_us\": {}, \
         \"dataflow_speedup\": {straggler_speedup:.3}, \"gate\": {STRAGGLER_GATE:.1}}},",
        opts.straggler_branches,
        opts.straggler_depth,
        opts.work_us * 10
    );
    let _ = writeln!(
        out,
        "  \"flight_recorder\": {{\"overhead_percent\": {recorder_percent:.3}, \
         \"overhead_raw_percent\": {recorder_raw_percent:.3}, \
         \"gate_percent\": {RECORDER_GATE_PERCENT:.1}}},"
    );
    let _ = writeln!(
        out,
        "  \"journal\": {{\"ops\": {}, \"rounds\": {}, \
         \"per_frame_ops_per_sec\": {:.0}, \"group_commit_ops_per_sec\": {:.0}, \
         \"group_commit_speedup\": {:.3}, \"gate\": {JOURNAL_GATE:.1}}},",
        journal.ops,
        journal.rounds,
        journal.per_frame_ops_per_sec(),
        journal.group_ops_per_sec(),
        journal.speedup()
    );
    let _ = writeln!(
        out,
        "  \"segment_rotation\": {{\"segment_max_bytes\": {}, \
         \"ops_per_sec\": {:.0}, \"overhead_percent_vs_per_frame\": {:.3}}},",
        journal.rotation_segment_max,
        journal.rotating_ops_per_sec(),
        journal.rotation_overhead_percent()
    );
    let _ = writeln!(
        out,
        "  \"content_cache\": {{\"cold_ns\": {}, \"warm_ns\": {}, \
         \"warm_speedup\": {:.3}, \"gate\": {CACHE_GATE:.1}, \
         \"remote_latency_us\": {}, \"degraded_warm_ns\": {}, \
         \"degraded_speedup\": {:.3}}},",
        cache.cold_ns,
        cache.warm_ns,
        cache.warm_speedup(),
        cache.remote_latency_us,
        cache.degraded_warm_ns,
        cache.degraded_speedup()
    );
    out.push_str("  \"configs\": [\n");
    render_configs(&mut out, samples);
    out.push_str("  ],\n");
    out.push_str("  \"straggler_configs\": [\n");
    render_configs(&mut out, straggler);
    out.push_str("  ]\n}\n");
    out
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args)?;

    let (schema, flow, db, binding) = hercules_bench::disjoint_branches(opts.branches);
    let w = Workload {
        schema: &schema,
        flow: &flow,
        db: &db,
        binding: &binding,
    };
    let serial = measure("serial", &w, &opts, false, false);
    // Traced vs untraced as paired, interleaved runs: timing them as
    // two separate blocks let machine drift show up as negative
    // "overhead" (traced beating untraced by several percent).
    let (parallel, parallel_traced) = measure_paired(
        ("parallel", "parallel_traced"),
        &w,
        &opts,
        true,
        (Tracing::Off, Tracing::Ring),
        SchedulerKind::default(),
        0,
    );
    // Noise can still make the traced side come out faster; report the
    // signed raw value but clamp the headline (and the gate input) at
    // zero so a lucky run can't bank negative overhead.
    let overhead_raw_percent = paired_overhead_raw_percent(&parallel, &parallel_traced);
    let overhead_percent = overhead_raw_percent.max(0.0);
    let base = parallel.median_ns().max(1);
    let speedup = serial.median_ns() as f64 / base as f64;
    let samples = [serial, parallel, parallel_traced];

    // The straggler fixture: one branch 10× the work of the others,
    // workers pinned to the branch count so the schedulers differ only
    // in barrier behavior.
    let (schema, flow, db, binding) = hercules_bench::straggler_branches(
        opts.straggler_branches,
        opts.straggler_depth,
        opts.work_us * 10,
    );
    let sw = Workload {
        schema: &schema,
        flow: &flow,
        db: &db,
        binding: &binding,
    };
    let workers = opts.straggler_branches.max(2);
    let mut straggler = vec![
        measure_with(
            "straggler_wave",
            &sw,
            &opts,
            true,
            false,
            SchedulerKind::Wave,
            workers,
        ),
        measure_with(
            "straggler_dataflow",
            &sw,
            &opts,
            true,
            false,
            SchedulerKind::Dataflow,
            workers,
        ),
    ];
    let straggler_speedup =
        straggler[0].median_ns() as f64 / straggler[1].median_ns().max(1) as f64;

    // Flight-recorder overhead on the straggler fixture: the always-on
    // telemetry pipeline (ring + recorder fan-out) against the ring
    // alone, paired runs.
    let (straggler_traced, straggler_recorder) = measure_paired(
        ("straggler_traced", "straggler_recorder"),
        &sw,
        &opts,
        true,
        (Tracing::Ring, Tracing::Recorder),
        SchedulerKind::Dataflow,
        workers,
    );
    let recorder_raw_percent = paired_overhead_raw_percent(&straggler_traced, &straggler_recorder);
    let recorder_percent = recorder_raw_percent.max(0.0);
    straggler.push(straggler_traced);
    straggler.push(straggler_recorder);

    let journal = bench_journal(&opts)?;

    // The content-cache comparison reuses the disjoint-branch fixture:
    // the warm run repeats the exact subflows the cold run executed.
    let (schema, flow, db, binding) = hercules_bench::disjoint_branches(opts.branches);
    let cw = Workload {
        schema: &schema,
        flow: &flow,
        db: &db,
        binding: &binding,
    };
    let cache = bench_cache(&cw, &opts)?;

    let json = render_json(
        &opts,
        &samples,
        overhead_percent,
        overhead_raw_percent,
        &straggler,
        straggler_speedup,
        recorder_percent,
        recorder_raw_percent,
        &journal,
        &cache,
    );
    std::fs::write(&opts.out, &json).map_err(|e| format!("write `{}`: {e}", opts.out))?;

    println!(
        "parallel speedup over serial: {speedup:.2}x ({} branches)",
        opts.branches
    );
    println!(
        "tracing overhead: {overhead_percent:.2}% (raw {overhead_raw_percent:.2}%, \
         budget {:.1}%)",
        opts.budget_percent
    );
    println!(
        "straggler: dataflow {straggler_speedup:.2}x over wave \
         ({} branches, depth {}, gate {STRAGGLER_GATE:.1}x)",
        opts.straggler_branches, opts.straggler_depth
    );
    println!(
        "flight recorder: {recorder_percent:.2}% over ring-only tracing on the \
         straggler (raw {recorder_raw_percent:.2}%, gate {RECORDER_GATE_PERCENT:.1}%)"
    );
    println!(
        "journal: group commit {:.2}x over per-frame fsync \
         ({:.0} vs {:.0} ops/s, gate {JOURNAL_GATE:.1}x) — wrote `{}`",
        journal.speedup(),
        journal.group_ops_per_sec(),
        journal.per_frame_ops_per_sec(),
        opts.out
    );
    println!(
        "journal: segment rotation at {}-byte bound costs {:.2}% over one \
         unbounded segment ({:.0} ops/s)",
        journal.rotation_segment_max,
        journal.rotation_overhead_percent(),
        journal.rotating_ops_per_sec()
    );
    println!(
        "content cache: warm {:.2}x over cold (gate {CACHE_GATE:.1}x); \
         degraded remote at {}us round-trip still {:.2}x",
        cache.warm_speedup(),
        cache.remote_latency_us,
        cache.degraded_speedup()
    );
    let mut failed = false;
    if opts.check && overhead_percent > opts.budget_percent {
        eprintln!(
            "bench_exec: FAIL — tracing overhead {overhead_percent:.2}% exceeds \
             the {:.1}% budget",
            opts.budget_percent
        );
        failed = true;
    }
    if opts.check && straggler_speedup < STRAGGLER_GATE {
        eprintln!(
            "bench_exec: FAIL — dataflow only {straggler_speedup:.2}x over wave \
             on the straggler fixture (gate {STRAGGLER_GATE:.1}x)"
        );
        failed = true;
    }
    if opts.check && recorder_percent > RECORDER_GATE_PERCENT {
        eprintln!(
            "bench_exec: FAIL — flight-recorder overhead {recorder_percent:.2}% \
             exceeds the {RECORDER_GATE_PERCENT:.1}% gate"
        );
        failed = true;
    }
    if opts.check && journal.speedup() < JOURNAL_GATE {
        eprintln!(
            "bench_exec: FAIL — group commit only {:.2}x over per-frame fsync \
             (gate {JOURNAL_GATE:.1}x)",
            journal.speedup()
        );
        failed = true;
    }
    if opts.check && cache.warm_speedup() < CACHE_GATE {
        eprintln!(
            "bench_exec: FAIL — warm content-cache run only {:.2}x over cold \
             (gate {CACHE_GATE:.1}x)",
            cache.warm_speedup()
        );
        failed = true;
    }
    if failed {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("bench_exec: {msg}");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
