//! `bench_exec` — the executor perf harness behind `BENCH_exec.json`.
//!
//! Runs the Fig. 6 disjoint-branch workload three ways — serial
//! untraced, parallel untraced, and parallel fully traced (ring-buffer
//! collector + metrics registry) — and writes the measurements to a
//! JSON file so successive PRs accumulate a perf trajectory.
//!
//! With `--check`, exits nonzero when the tracing overhead on the
//! parallel toy flow exceeds the budget (default 5% of the untraced
//! median), which is the CI smoke gate for the observability layer.
//!
//! ```sh
//! cargo run --release -p hercules-bench --bin bench_exec -- --check
//! ```

use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use hercules::exec::{toy, Binding, Executor, MultiInstanceMode};
use hercules::flow::TaskGraph;
use hercules::history::HistoryDb;
use hercules::obs::{Metrics, RingBuffer, Tracer};
use hercules::schema::TaskSchema;

const USAGE: &str = "\
bench_exec — executor perf harness; writes BENCH_exec.json

USAGE:
    bench_exec [--out FILE] [--iters N] [--branches N] [--work-us N]
               [--budget-percent P] [--check]

    --out FILE          output path [default: BENCH_exec.json]
    --iters N           measured iterations per config [default: 30]
    --branches N        disjoint branches in the workload [default: 4]
    --work-us N         simulated tool compute, µs [default: 2000]
    --budget-percent P  tracing overhead budget for --check [default: 5]
    --check             fail (exit 1) when overhead exceeds the budget
";

struct Options {
    out: String,
    iters: usize,
    branches: usize,
    work_us: u64,
    budget_percent: f64,
    check: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        out: "BENCH_exec.json".into(),
        iters: 30,
        branches: 4,
        work_us: 2_000,
        budget_percent: 5.0,
        check: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        fn parse<T: std::str::FromStr>(v: String, name: &str) -> Result<T, String> {
            v.parse().map_err(|_| format!("{name}: bad number"))
        }
        match arg.as_str() {
            "--out" => opts.out = value("--out")?,
            "--iters" => opts.iters = parse(value("--iters")?, "--iters")?,
            "--branches" => opts.branches = parse(value("--branches")?, "--branches")?,
            "--work-us" => opts.work_us = parse(value("--work-us")?, "--work-us")?,
            "--budget-percent" => {
                opts.budget_percent = value("--budget-percent")?
                    .parse()
                    .map_err(|_| "--budget-percent: bad number".to_owned())?;
            }
            "--check" => opts.check = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    opts.iters = opts.iters.max(3);
    Ok(opts)
}

/// One measured configuration.
struct Sample {
    name: &'static str,
    parallel: bool,
    traced: bool,
    runs_ns: Vec<u64>,
}

impl Sample {
    fn median_ns(&self) -> u64 {
        let mut sorted = self.runs_ns.clone();
        sorted.sort_unstable();
        sorted[sorted.len() / 2]
    }

    fn mean_ns(&self) -> u64 {
        (self.runs_ns.iter().map(|&n| u128::from(n)).sum::<u128>() / self.runs_ns.len() as u128)
            as u64
    }

    fn min_ns(&self) -> u64 {
        self.runs_ns.iter().copied().min().unwrap_or(0)
    }

    fn max_ns(&self) -> u64 {
        self.runs_ns.iter().copied().max().unwrap_or(0)
    }
}

/// Workload shared by every measured configuration.
struct Workload<'a> {
    schema: &'a Arc<TaskSchema>,
    flow: &'a TaskGraph,
    db: &'a HistoryDb,
    binding: &'a Binding,
}

fn measure(
    name: &'static str,
    w: &Workload<'_>,
    opts: &Options,
    parallel: bool,
    traced: bool,
) -> Sample {
    let registry = toy::text_registry_with(
        w.schema,
        toy::TextTool {
            mode: MultiInstanceMode::RunPerInstance,
            work: Duration::from_micros(opts.work_us),
        },
    );
    let mut executor = Executor::new(registry);
    executor.options_mut().parallel = parallel;
    if traced {
        // The full live pipeline: every span lands in a ring buffer and
        // every task updates the metrics registry.
        executor.options_mut().tracer = Tracer::new(Arc::new(RingBuffer::new(65_536)));
        executor.options_mut().metrics = Metrics::new();
    }
    // One warm-up iteration, then the measured runs.
    let mut runs_ns = Vec::with_capacity(opts.iters);
    for i in 0..=opts.iters {
        let mut db = w.db.clone();
        let started = Instant::now();
        executor.execute(w.flow, w.binding, &mut db).expect("runs");
        if i > 0 {
            runs_ns.push(started.elapsed().as_nanos() as u64);
        }
    }
    Sample {
        name,
        parallel,
        traced,
        runs_ns,
    }
}

fn render_json(opts: &Options, samples: &[Sample], overhead_percent: f64) -> String {
    let stamp_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"exec\",");
    let _ = writeln!(out, "  \"unix_ms\": {stamp_ms},");
    let _ = writeln!(
        out,
        "  \"workload\": {{\"fixture\": \"fig06-style disjoint branches\", \
         \"branches\": {}, \"work_us\": {}, \"iters\": {}}},",
        opts.branches, opts.work_us, opts.iters
    );
    let _ = writeln!(
        out,
        "  \"tracing_overhead_percent\": {overhead_percent:.3},"
    );
    let _ = writeln!(out, "  \"budget_percent\": {:.1},", opts.budget_percent);
    out.push_str("  \"configs\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"parallel\": {}, \"traced\": {}, \
             \"median_ns\": {}, \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
            s.name,
            s.parallel,
            s.traced,
            s.median_ns(),
            s.mean_ns(),
            s.min_ns(),
            s.max_ns()
        );
        out.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args)?;

    let (schema, flow, db, binding) = hercules_bench::disjoint_branches(opts.branches);
    let w = Workload {
        schema: &schema,
        flow: &flow,
        db: &db,
        binding: &binding,
    };
    let samples = [
        measure("serial", &w, &opts, false, false),
        measure("parallel", &w, &opts, true, false),
        measure("parallel_traced", &w, &opts, true, true),
    ];

    let base = samples[1].median_ns().max(1);
    let traced = samples[2].median_ns();
    let overhead_percent = (traced as f64 - base as f64) * 100.0 / base as f64;
    let speedup = samples[0].median_ns() as f64 / base as f64;

    let json = render_json(&opts, &samples, overhead_percent);
    std::fs::write(&opts.out, &json).map_err(|e| format!("write `{}`: {e}", opts.out))?;

    println!(
        "parallel speedup over serial: {speedup:.2}x ({} branches)",
        opts.branches
    );
    println!(
        "tracing overhead: {overhead_percent:.2}% (budget {:.1}%) — wrote `{}`",
        opts.budget_percent, opts.out
    );
    if opts.check && overhead_percent > opts.budget_percent {
        eprintln!(
            "bench_exec: FAIL — tracing overhead {overhead_percent:.2}% exceeds \
             the {:.1}% budget",
            opts.budget_percent
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("bench_exec: {msg}");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
