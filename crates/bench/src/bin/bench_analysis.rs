//! `bench_analysis` — the incremental-analysis perf harness behind
//! `BENCH_analysis.json`.
//!
//! Builds synthetic Fig. 1 design histories at several sizes (each
//! module is an edited-netlist → layout → extracted-netlist chain),
//! then measures three latencies per size:
//!
//! * a from-scratch full `HL05xx` lint;
//! * an incremental re-lint after a single netlist edit, on a linter
//!   restored from its persisted [`HistoryLinterSpec`] — the REPL's
//!   `lint --incremental` path;
//! * predicting the edit's retrace cone from the persistent index.
//!
//! With `--check`, exits nonzero when the incremental re-lint at the
//! largest size is under 5× faster than the full lint — the gate that
//! keeps the reverse-dependency index earning its keep as histories
//! grow.
//!
//! ```sh
//! cargo run --release -p hercules-bench --bin bench_analysis -- --check
//! ```

use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use hercules::history::{Derivation, HistoryDb, InstanceId, Metadata};
use hercules::schema::fixtures;
use hercules_analyze::{Diagnostics, HistoryLinter};
use serde::Value;

/// `--check` gate: the incremental re-lint after one edit must beat
/// the full lint by this factor at the largest history size.
const DEFAULT_GATE: f64 = 5.0;

/// `--baseline` slack: the current incremental speedup may fall to
/// half the committed baseline's before the diff counts it a
/// regression — wall-clock ratios move with the machine; a 2× collapse
/// does not.
const BASELINE_SPEEDUP_SLACK: f64 = 2.0;

const USAGE: &str = "\
bench_analysis — incremental-analysis perf harness; writes BENCH_analysis.json

USAGE:
    bench_analysis [--out FILE] [--iters N] [--sizes A,B,C] [--gate X]
                   [--baseline FILE] [--check]

    --out FILE       output path [default: BENCH_analysis.json]
    --iters N        measured iterations per size [default: 20]
    --sizes L        comma-separated module counts; each module is a
                     4-instance derivation chain [default: 32,128,512]
    --gate X         required incremental speedup at the largest size
                     [default: 5.0]
    --baseline FILE  diff this run against a committed BENCH_analysis.json:
                     deterministic counters (instances, solver visits,
                     dirty-cone and retrace-cone sizes) must match
                     exactly; the incremental speedup may not fall
                     below half the baseline's
    --check          fail (exit 1) when the largest size misses the
                     gate or the baseline diff finds a regression
";

struct Options {
    out: String,
    iters: usize,
    sizes: Vec<usize>,
    gate: f64,
    baseline: Option<String>,
    check: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        out: "BENCH_analysis.json".into(),
        iters: 20,
        sizes: vec![32, 128, 512],
        gate: DEFAULT_GATE,
        baseline: None,
        check: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--out" => opts.out = value("--out")?,
            "--iters" => {
                opts.iters = value("--iters")?
                    .parse()
                    .map_err(|_| "--iters: bad number".to_owned())?;
            }
            "--sizes" => {
                opts.sizes = value("--sizes")?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .map_err(|_| "--sizes: bad number".to_owned())
                    })
                    .collect::<Result<_, _>>()?;
                if opts.sizes.is_empty() {
                    return Err("--sizes: need at least one size".into());
                }
            }
            "--gate" => {
                opts.gate = value("--gate")?
                    .parse()
                    .map_err(|_| "--gate: bad number".to_owned())?;
            }
            "--baseline" => opts.baseline = Some(value("--baseline")?),
            "--check" => opts.check = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    opts.iters = opts.iters.max(3);
    opts.sizes.sort_unstable();
    Ok(opts)
}

/// A synthetic history plus the handles the edit workload needs: the
/// first module's netlist (the edit target) and its extracted netlist
/// (the retrace goal).
struct SyntheticHistory {
    db: HistoryDb,
    editor: InstanceId,
    edit_target: InstanceId,
    goal: InstanceId,
}

/// Builds `modules` independent edited-netlist → layout → extracted-
/// netlist chains over the Fig. 1 schema. Each module gets its own
/// `CircuitEditor` instance: the dirty cone of an edit includes the
/// editing tool's fan-out, so sharing one editor would make every
/// module dirty and the fixture would measure nothing. Every chain is
/// a complete derivation record, so retrace cones are well defined
/// everywhere.
fn build_history(modules: usize) -> SyntheticHistory {
    let schema = Arc::new(fixtures::fig1());
    let mut db = HistoryDb::new(schema.clone());
    let t = |n: &str| schema.require(n).expect("known entity");
    let by = Metadata::by("bench");
    let placer = db
        .record_primary(t("Placer"), by.clone(), b"placer")
        .expect("records");
    let extractor = db
        .record_primary(t("Extractor"), by.clone(), b"ext")
        .expect("records");
    let rules = db
        .record_primary(t("PlacementRules"), by.clone(), b"rules")
        .expect("records");

    let mut first_editor = None;
    let mut edit_target = None;
    let mut goal = None;
    for m in 0..modules.max(1) {
        let editor = db
            .record_primary(t("CircuitEditor"), by.clone(), b"ed")
            .expect("records");
        let net = db
            .record_derived(
                t("EditedNetlist"),
                by.clone(),
                b"net",
                Derivation::by_tool(editor, []),
            )
            .expect("records");
        let layout = db
            .record_derived(
                t("Layout"),
                by.clone(),
                b"layout",
                Derivation::by_tool(placer, [net, rules]),
            )
            .expect("records");
        let extracted = db
            .record_derived(
                t("ExtractedNetlist"),
                by.clone(),
                b"x",
                Derivation::by_tool(extractor, [layout]),
            )
            .expect("records");
        if m == 0 {
            first_editor = Some(editor);
            edit_target = Some(net);
            goal = Some(extracted);
        }
    }
    SyntheticHistory {
        db,
        editor: first_editor.expect("at least one module"),
        edit_target: edit_target.expect("at least one module"),
        goal: goal.expect("at least one module"),
    }
}

fn median_ns(mut runs: Vec<u64>) -> u64 {
    runs.sort_unstable();
    runs[runs.len() / 2]
}

/// One measured history size.
struct SizeSample {
    modules: usize,
    instances: usize,
    full_ns: u64,
    full_visits: usize,
    incremental_ns: u64,
    incremental_analyzed: usize,
    cone_ns: u64,
    cone_rerun: usize,
    cone_recall: usize,
}

impl SizeSample {
    fn speedup(&self) -> f64 {
        self.full_ns as f64 / self.incremental_ns.max(1) as f64
    }
}

fn measure_size(modules: usize, opts: &Options) -> SizeSample {
    let base = build_history(modules);
    let instances = base.db.len();
    let edited_entity = base.db.schema().require("EditedNetlist").expect("known");

    // Full lint: a fresh linter over the whole history, every round.
    let mut full_runs = Vec::with_capacity(opts.iters);
    let mut full_visits = 0;
    for i in 0..=opts.iters {
        let mut out = Diagnostics::new();
        let mut linter = HistoryLinter::new();
        let started = Instant::now();
        linter.lint_full(&base.db, &mut out).expect("lints");
        if i > 0 {
            full_runs.push(started.elapsed().as_nanos() as u64);
            full_visits = linter.stats().solver_visits;
        }
    }

    // Incremental: warm a linter over the base history once, persist
    // its spec, then per round restore it against a clone of the base,
    // record one edit, and time only the re-lint — the REPL's
    // checkpoint/open/`lint --incremental` cycle.
    let mut warm = HistoryLinter::new();
    let mut out = Diagnostics::new();
    warm.lint_incremental(&base.db, &mut out).expect("lints");
    let spec = warm.to_spec();

    let mut inc_runs = Vec::with_capacity(opts.iters);
    let mut inc_analyzed = 0;
    let mut cone_runs = Vec::with_capacity(opts.iters);
    let mut cone_rerun = 0;
    let mut cone_recall = 0;
    for i in 0..=opts.iters {
        let mut db = base.db.clone();
        let mut linter = HistoryLinter::from_spec(&spec, &db).expect("spec matches its history");
        db.record_derived(
            edited_entity,
            Metadata::by("bench"),
            b"net v2",
            Derivation::by_tool(base.editor, [base.edit_target]),
        )
        .expect("records");

        let mut out = Diagnostics::new();
        let started = Instant::now();
        linter.lint_incremental(&db, &mut out).expect("lints");
        let lint_ns = started.elapsed().as_nanos() as u64;

        let started = Instant::now();
        let cone = linter.index().retrace_cone(&db, base.goal).expect("cone");
        let cone_ns = started.elapsed().as_nanos() as u64;

        if i > 0 {
            inc_runs.push(lint_ns);
            cone_runs.push(cone_ns);
            inc_analyzed = linter.stats().instances_analyzed;
            cone_rerun = cone.rerun.len();
            cone_recall = cone.recall.len();
        }
    }

    SizeSample {
        modules,
        instances,
        full_ns: median_ns(full_runs),
        full_visits,
        incremental_ns: median_ns(inc_runs),
        incremental_analyzed: inc_analyzed,
        cone_ns: median_ns(cone_runs),
        cone_rerun,
        cone_recall,
    }
}

/// One size row parsed back out of a committed `BENCH_analysis.json`.
struct BaselineSize {
    modules: usize,
    instances: usize,
    full_visits: usize,
    incremental_analyzed: usize,
    cone_rerun: usize,
    cone_recall: usize,
    speedup: f64,
}

fn value_u64(v: Option<&Value>) -> Option<u64> {
    match v? {
        Value::UInt(n) => Some(*n),
        Value::Int(n) if *n >= 0 => Some(*n as u64),
        Value::Float(f) if *f >= 0.0 => Some(*f as u64),
        _ => None,
    }
}

fn value_f64(v: Option<&Value>) -> Option<f64> {
    match v? {
        Value::UInt(n) => Some(*n as f64),
        Value::Int(n) => Some(*n as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

fn load_baseline(path: &str) -> Result<Vec<BaselineSize>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("baseline `{path}`: {e}"))?;
    let root: Value = serde_json::from_str(&text).map_err(|e| format!("baseline `{path}`: {e}"))?;
    let sizes = match root.get("sizes") {
        Some(Value::Seq(rows)) => rows,
        _ => return Err(format!("baseline `{path}`: no `sizes` array")),
    };
    let field = |row: &Value, name: &str| -> Result<u64, String> {
        value_u64(row.get(name)).ok_or_else(|| format!("baseline `{path}`: bad `{name}`"))
    };
    sizes
        .iter()
        .map(|row| {
            Ok(BaselineSize {
                modules: field(row, "modules")? as usize,
                instances: field(row, "instances")? as usize,
                full_visits: field(row, "full_solver_visits")? as usize,
                incremental_analyzed: field(row, "incremental_instances_analyzed")? as usize,
                cone_rerun: field(row, "cone_rerun")? as usize,
                cone_recall: field(row, "cone_recall")? as usize,
                speedup: value_f64(row.get("incremental_speedup"))
                    .ok_or_else(|| format!("baseline `{path}`: bad `incremental_speedup`"))?,
            })
        })
        .collect()
}

/// Diffs this run against the committed baseline. Deterministic
/// counters must match exactly — they only move when the analysis
/// itself changes behavior, which a baseline refresh should record
/// deliberately. Wall-clock speedups get [`BASELINE_SPEEDUP_SLACK`].
/// Returns the regression lines (empty = clean diff).
fn diff_baseline(samples: &[SizeSample], baseline: &[BaselineSize]) -> Vec<String> {
    let mut regressions = Vec::new();
    for b in baseline {
        let Some(s) = samples.iter().find(|s| s.modules == b.modules) else {
            regressions.push(format!(
                "size {} modules: in baseline but not measured (pass --sizes to match)",
                b.modules
            ));
            continue;
        };
        let mut exact = |name: &str, now: usize, then: usize| {
            if now != then {
                regressions.push(format!(
                    "size {} modules: {name} changed {then} -> {now}",
                    b.modules
                ));
            }
        };
        exact("instances", s.instances, b.instances);
        exact("full_solver_visits", s.full_visits, b.full_visits);
        exact(
            "incremental_instances_analyzed",
            s.incremental_analyzed,
            b.incremental_analyzed,
        );
        exact("cone_rerun", s.cone_rerun, b.cone_rerun);
        exact("cone_recall", s.cone_recall, b.cone_recall);
        let floor = b.speedup / BASELINE_SPEEDUP_SLACK;
        if s.speedup() < floor {
            regressions.push(format!(
                "size {} modules: incremental speedup {:.2}x fell below {:.2}x \
                 (baseline {:.2}x / slack {BASELINE_SPEEDUP_SLACK:.0})",
                b.modules,
                s.speedup(),
                floor,
                b.speedup
            ));
        }
    }
    regressions
}

fn render_json(opts: &Options, samples: &[SizeSample]) -> String {
    let stamp_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"analysis\",");
    let _ = writeln!(out, "  \"unix_ms\": {stamp_ms},");
    let _ = writeln!(
        out,
        "  \"workload\": {{\"fixture\": \"fig1 netlist->layout->extract modules\", \
         \"iters\": {}}},",
        opts.iters
    );
    let _ = writeln!(out, "  \"gate_speedup\": {:.1},", opts.gate);
    out.push_str("  \"sizes\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"modules\": {}, \"instances\": {}, \
             \"full_lint_median_ns\": {}, \"full_solver_visits\": {}, \
             \"incremental_lint_median_ns\": {}, \"incremental_instances_analyzed\": {}, \
             \"incremental_speedup\": {:.3}, \
             \"retrace_cone_median_ns\": {}, \"cone_rerun\": {}, \"cone_recall\": {}}}",
            s.modules,
            s.instances,
            s.full_ns,
            s.full_visits,
            s.incremental_ns,
            s.incremental_analyzed,
            s.speedup(),
            s.cone_ns,
            s.cone_rerun,
            s.cone_recall
        );
        out.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args)?;

    let samples: Vec<SizeSample> = opts
        .sizes
        .iter()
        .map(|&modules| measure_size(modules, &opts))
        .collect();

    let json = render_json(&opts, &samples);
    std::fs::write(&opts.out, &json).map_err(|e| format!("write `{}`: {e}", opts.out))?;

    for s in &samples {
        println!(
            "{} instances: full {:.1}µs ({} visits), incremental {:.1}µs \
             ({} analyzed) — {:.1}x; cone {:.1}µs ({} rerun, {} recalled)",
            s.instances,
            s.full_ns as f64 / 1e3,
            s.full_visits,
            s.incremental_ns as f64 / 1e3,
            s.incremental_analyzed,
            s.speedup(),
            s.cone_ns as f64 / 1e3,
            s.cone_rerun,
            s.cone_recall
        );
    }
    let largest = samples.last().expect("at least one size");
    println!(
        "incremental re-lint at {} instances: {:.1}x over full (gate {:.1}x) — wrote `{}`",
        largest.instances,
        largest.speedup(),
        opts.gate,
        opts.out
    );
    let mut failed = false;
    if opts.check && largest.speedup() < opts.gate {
        eprintln!(
            "bench_analysis: FAIL — incremental re-lint only {:.2}x over full \
             at the largest size (gate {:.1}x)",
            largest.speedup(),
            opts.gate
        );
        failed = true;
    }
    if let Some(path) = &opts.baseline {
        let regressions = diff_baseline(&samples, &load_baseline(path)?);
        if regressions.is_empty() {
            println!("baseline `{path}`: clean diff");
        } else {
            for line in &regressions {
                eprintln!("bench_analysis: baseline diff — {line}");
            }
            if opts.check {
                failed = true;
            }
        }
    }
    if failed {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("bench_analysis: {msg}");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
