//! Property-based tests for the design-history database.

use std::sync::Arc;

use hercules_history::{Derivation, HistoryDb, HistorySpec, InstanceId, Metadata};
use hercules_schema::fixtures;
use proptest::prelude::*;

/// Builds a random but well-formed history: an editor plus `n` edited
/// netlists, each deriving from a random earlier version (or none).
fn random_history(parents: &[Option<usize>]) -> (HistoryDb, Vec<InstanceId>) {
    let schema = Arc::new(fixtures::fig1());
    let mut db = HistoryDb::new(schema.clone());
    let editor = db
        .record_primary(
            schema.require("CircuitEditor").expect("known"),
            Metadata::by("prop").named("ed"),
            b"ed",
        )
        .expect("records");
    let edited = schema.require("EditedNetlist").expect("known");
    let mut ids = vec![editor];
    for (i, parent) in parents.iter().enumerate() {
        let from = if i == 0 {
            None
        } else {
            parent.map(|p| ids[1 + (p % i)])
        };
        let inst = db
            .record_derived(
                edited,
                Metadata::by("prop").named(&format!("v{i}")),
                format!("v{i}").as_bytes(),
                Derivation::by_tool(editor, from),
            )
            .expect("records");
        ids.push(inst);
    }
    (db, ids)
}

fn parent_vec() -> impl Strategy<Value = Vec<Option<usize>>> {
    prop::collection::vec(prop::option::of(0usize..16), 1..16)
}

proptest! {
    /// Forward and backward chaining are duals:
    /// `b ∈ forward(a)` iff `a ∈ ancestors(b)`.
    #[test]
    fn chaining_duality(parents in parent_vec()) {
        let (db, ids) = random_history(&parents);
        for &a in &ids {
            let forward = db.forward_chain(a).expect("chains");
            for &b in &ids {
                let ancestors = db.ancestors(b).expect("chains");
                prop_assert_eq!(
                    forward.contains(&b),
                    ancestors.contains(&a),
                    "duality between {} and {}", a, b
                );
            }
        }
    }

    /// Ancestor sets are transitively closed and never contain the
    /// instance itself.
    #[test]
    fn ancestors_are_closed(parents in parent_vec()) {
        let (db, ids) = random_history(&parents);
        for &x in &ids {
            let anc = db.ancestors(x).expect("chains");
            prop_assert!(!anc.contains(&x));
            for &a in &anc {
                for &aa in &db.ancestors(a).expect("chains") {
                    prop_assert!(anc.contains(&aa), "closure broken at {}", aa);
                }
            }
        }
    }

    /// The version forest's parent/children maps are mutually
    /// consistent and every member is a root or has a parent chain to
    /// one.
    #[test]
    fn version_forest_consistency(parents in parent_vec()) {
        let (db, ids) = random_history(&parents);
        let entity = db.instance(ids[1]).expect("present").entity();
        let forest = db.version_forest(entity).expect("builds");
        for &m in forest.members() {
            match forest.parent(m) {
                Some(p) => prop_assert!(forest.children(p).contains(&m)),
                None => prop_assert!(forest.roots().contains(&m)),
            }
            // Depth terminates (no cycles).
            prop_assert!(forest.depth(m) <= forest.members().len());
        }
        for &r in forest.roots() {
            prop_assert!(forest.parent(r).is_none());
        }
    }

    /// newest_version_of is idempotent and always at least as new.
    #[test]
    fn newest_version_is_a_fixpoint(parents in parent_vec()) {
        let (db, ids) = random_history(&parents);
        for &x in &ids[1..] {
            let newest = db.newest_version_of(x).expect("checks");
            prop_assert_eq!(db.newest_version_of(newest).expect("checks"), newest);
            let tx = db.created_at(x).expect("present");
            let tn = db.created_at(newest).expect("present");
            prop_assert!(tn >= tx);
        }
    }

    /// Persistence round trips preserve every record.
    #[test]
    fn persistence_round_trip(parents in parent_vec()) {
        let (db, _) = random_history(&parents);
        let spec = HistorySpec::from_db(&db);
        let json = serde_json::to_string(&spec).expect("serializes");
        let back: HistorySpec = serde_json::from_str(&json).expect("deserializes");
        let reloaded = back.load(db.schema().clone()).expect("replays");
        prop_assert_eq!(reloaded.len(), db.len());
        for (a, b) in db.instances().zip(reloaded.instances()) {
            prop_assert_eq!(a.meta(), b.meta());
            prop_assert_eq!(a.entity(), b.entity());
            prop_assert_eq!(a.derivation(), b.derivation());
        }
    }

    /// The blob store shares identical payloads: stored bytes never
    /// exceed logical bytes, and equal payload count means shared blobs.
    #[test]
    fn blob_sharing_invariant(payloads in prop::collection::vec(0u8..4, 1..30)) {
        let schema = Arc::new(fixtures::fig1());
        let mut db = HistoryDb::new(schema.clone());
        let stim = schema.require("Stimuli").expect("known");
        for p in &payloads {
            db.record_primary(stim, Metadata::by("prop"), &[*p]).expect("records");
        }
        let distinct: std::collections::HashSet<u8> = payloads.iter().copied().collect();
        prop_assert_eq!(db.store().blob_count(), distinct.len());
        prop_assert!(db.store().stored_bytes() <= db.store().logical_bytes());
    }
}
