//! Persistence of the history database.
//!
//! The paper's design history lives in the Odyssey framework's database;
//! here it serializes to a declarative [`HistorySpec`] (entity *names*
//! instead of schema-relative ids) so a database survives schema
//! reloads. Loading replays the records through the normal checked
//! entry points, so a loaded database is always consistent.

use std::sync::Arc;

use hercules_schema::TaskSchema;
use serde::{Deserialize, Serialize};

use crate::clock::Timestamp;
use crate::db::HistoryDb;
use crate::derivation::Derivation;
use crate::error::HistoryError;
use crate::instance::{InstanceId, Metadata};

/// Serializable record of one instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceSpec {
    /// Entity type name.
    pub entity: String,
    /// User-id of the creator.
    pub user: String,
    /// Logical creation time (restored verbatim).
    pub created: Timestamp,
    /// Annotation name.
    #[serde(default, skip_serializing_if = "String::is_empty")]
    pub name: String,
    /// Annotation comment.
    #[serde(default, skip_serializing_if = "String::is_empty")]
    pub comment: String,
    /// Browser keywords.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub keywords: Vec<String>,
    /// Physical data (omitted for data-less instances).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub data: Option<Vec<u8>>,
    /// Tool instance index of the derivation, if derived by a tool.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub tool: Option<u64>,
    /// Input instance indexes of the derivation; `None` for primary
    /// instances (an empty list still means "derived").
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub inputs: Option<Vec<u64>>,
}

/// The complete serializable form of a history database.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HistorySpec {
    /// Instance records in creation (= id) order.
    pub instances: Vec<InstanceSpec>,
}

impl InstanceSpec {
    /// Captures one instance of a database (the `index`-th record, in
    /// creation order).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn capture(db: &HistoryDb, index: usize) -> InstanceSpec {
        let i = db.instances().nth(index).expect("index in range");
        let m = i.meta();
        InstanceSpec {
            entity: db.schema().entity(i.entity()).name().to_owned(),
            user: m.user.clone(),
            created: m.created,
            name: m.name.clone(),
            comment: m.comment.clone(),
            keywords: m.keywords.clone(),
            data: i.data().and_then(|h| db.store().get(h)).map(<[u8]>::to_vec),
            tool: i.derivation().and_then(|d| d.tool).map(InstanceId::raw),
            inputs: i
                .derivation()
                .map(|d| d.inputs.iter().map(|x| x.raw()).collect()),
        }
    }

    /// Replays this record into `db` through the normal checked entry
    /// points, restoring its timestamp; returns the new instance id.
    ///
    /// # Errors
    ///
    /// Returns schema errors for unknown entity names and the usual
    /// derivation checks for corrupt records.
    pub fn replay(&self, db: &mut HistoryDb) -> Result<InstanceId, HistoryError> {
        let entity = db.schema().require(&self.entity)?;
        let meta = Metadata {
            user: self.user.clone(),
            created: Timestamp(0), // overwritten below via clock
            name: self.name.clone(),
            comment: self.comment.clone(),
            keywords: self.keywords.clone(),
        };
        db.clock_mut().advance_to(self.created);
        let data = self.data.clone().unwrap_or_default();
        match &self.inputs {
            None => db.record_primary(entity, meta, &data),
            Some(inputs) => {
                let derivation = Derivation {
                    tool: self.tool.map(InstanceId::from_raw),
                    inputs: inputs.iter().copied().map(InstanceId::from_raw).collect(),
                };
                db.record_derived(entity, meta, &data, derivation)
            }
        }
    }
}

impl HistorySpec {
    /// Captures a database.
    pub fn from_db(db: &HistoryDb) -> HistorySpec {
        HistorySpec {
            instances: (0..db.len())
                .map(|index| InstanceSpec::capture(db, index))
                .collect(),
        }
    }

    /// Replays the records into a fresh database over `schema`.
    ///
    /// # Errors
    ///
    /// Returns schema errors for unknown entity names and the usual
    /// derivation checks for corrupt records.
    pub fn load(&self, schema: Arc<TaskSchema>) -> Result<HistoryDb, HistoryError> {
        let mut db = HistoryDb::new(schema);
        for spec in &self.instances {
            spec.replay(&mut db)?;
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hercules_schema::fixtures;

    fn sample() -> (Arc<TaskSchema>, HistoryDb) {
        let schema = Arc::new(fixtures::fig1());
        let mut db = HistoryDb::new(schema.clone());
        let t = |n: &str| schema.require(n).expect("known");
        let editor = db
            .record_primary(
                t("CircuitEditor"),
                Metadata::by("jbb").named("sced").keyword("editor"),
                b"ed",
            )
            .expect("ok");
        db.clock_mut().advance_to(Timestamp(50));
        db.record_derived(
            t("EditedNetlist"),
            Metadata::by("sutton").named("lpf").commented("low pass"),
            b"netlist-bytes",
            Derivation::by_tool(editor, []),
        )
        .expect("ok");
        (schema, db)
    }

    #[test]
    fn spec_round_trips_through_load() {
        let (schema, db) = sample();
        let spec = HistorySpec::from_db(&db);
        let loaded = spec.load(schema).expect("replay");
        assert_eq!(loaded.len(), db.len());
        for (a, b) in db.instances().zip(loaded.instances()) {
            assert_eq!(a.meta(), b.meta());
            assert_eq!(a.entity(), b.entity());
            assert_eq!(a.derivation(), b.derivation());
        }
        assert_eq!(
            loaded.data_of(InstanceId::from_raw(1)).expect("ok"),
            Some(&b"netlist-bytes"[..])
        );
    }

    #[test]
    fn json_round_trips() {
        let (schema, db) = sample();
        let spec = HistorySpec::from_db(&db);
        let json = serde_json::to_string(&spec).expect("serialize");
        let back: HistorySpec = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, spec);
        back.load(schema).expect("replay");
    }

    #[test]
    fn timestamps_survive_persistence() {
        let (schema, db) = sample();
        let spec = HistorySpec::from_db(&db);
        let loaded = spec.load(schema).expect("replay");
        assert_eq!(
            loaded.created_at(InstanceId::from_raw(1)).expect("ok"),
            Timestamp(50)
        );
    }

    #[test]
    fn corrupt_record_is_rejected() {
        let (schema, db) = sample();
        let mut spec = HistorySpec::from_db(&db);
        spec.instances[1].entity = "Ghost".into();
        assert!(spec.load(schema).is_err());
    }
}
