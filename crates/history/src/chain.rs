//! Backward and forward chaining through the design history, and
//! query-by-template with a task graph (§4.2).

use std::collections::HashMap;

use hercules_flow::{NodeId, TaskGraph};

use crate::db::HistoryDb;
use crate::error::HistoryError;
use crate::instance::InstanceId;

/// One node of a backward-chaining result: an instance with the chain of
/// instances that created it, down to the requested depth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivationTree {
    /// The instance at this point of the chain.
    pub instance: InstanceId,
    /// The tool instance that created it, if derived and within depth.
    pub tool: Option<InstanceId>,
    /// The derivations of the data inputs, if within depth.
    pub inputs: Vec<DerivationTree>,
}

impl DerivationTree {
    /// Returns every instance mentioned in the tree (pre-order,
    /// duplicates preserved — the same instance may appear on several
    /// paths of a DAG-shaped history).
    pub fn flatten(&self) -> Vec<InstanceId> {
        let mut out = vec![self.instance];
        out.extend(self.tool);
        for i in &self.inputs {
            out.extend(i.flatten());
        }
        out
    }

    /// Returns the depth of the tree (a leaf is depth 0).
    pub fn depth(&self) -> usize {
        self.inputs.iter().map(|i| i.depth() + 1).max().unwrap_or(0)
    }
}

/// A complete assignment of template nodes to instances, sorted by node
/// id.
pub type TemplateMatch = Vec<(NodeId, InstanceId)>;

impl HistoryDb {
    /// Backward-chains from `id`: reveals the instances used to create
    /// it, recursively, to at most `depth` derivation steps (`None` for
    /// unlimited). Depth 1 is exactly Fig. 10's `History` menu entry —
    /// "the Simulator and Netlist entities do not appear until after
    /// History is chosen".
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::UnknownInstance`] for out-of-range ids.
    pub fn backward_chain(
        &self,
        id: InstanceId,
        depth: Option<usize>,
    ) -> Result<DerivationTree, HistoryError> {
        let inst = self.instance(id)?;
        let recurse = depth != Some(0);
        let mut tree = DerivationTree {
            instance: id,
            tool: None,
            inputs: Vec::new(),
        };
        if !recurse {
            return Ok(tree);
        }
        if let Some(d) = inst.derivation() {
            tree.tool = d.tool;
            let next = depth.map(|d| d - 1);
            for &input in &d.inputs {
                tree.inputs.push(self.backward_chain(input, next)?);
            }
        }
        Ok(tree)
    }

    /// Returns every transitive ancestor of `id` (instances in its
    /// complete derivation history), deduplicated and sorted, excluding
    /// `id` itself.
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::UnknownInstance`] for out-of-range ids.
    pub fn ancestors(&self, id: InstanceId) -> Result<Vec<InstanceId>, HistoryError> {
        self.instance(id)?;
        let mut seen = Vec::new();
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            if let Some(d) = self.instance(cur)?.derivation() {
                for r in d.referenced() {
                    if !seen.contains(&r) {
                        seen.push(r);
                        stack.push(r);
                    }
                }
            }
        }
        seen.sort();
        Ok(seen)
    }

    /// Forward-chains from `id`: every instance that transitively
    /// depends on it, deduplicated and sorted ("finding all of the
    /// circuit performances derived from a given netlist").
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::UnknownInstance`] for out-of-range ids.
    pub fn forward_chain(&self, id: InstanceId) -> Result<Vec<InstanceId>, HistoryError> {
        self.instance(id)?;
        let mut seen = Vec::new();
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            for &dep in self.direct_dependents(cur)? {
                if !seen.contains(&dep) {
                    seen.push(dep);
                    stack.push(dep);
                }
            }
        }
        seen.sort();
        Ok(seen)
    }

    /// Forward-chains from `from` and keeps only instances of the
    /// `entity` family — e.g. "find the netlist extracted from this
    /// layout" (§3.3) is `find_derived(layout, extracted_netlist)`.
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::UnknownInstance`] or a schema error.
    pub fn find_derived(
        &self,
        from: InstanceId,
        entity: hercules_schema::EntityTypeId,
    ) -> Result<Vec<InstanceId>, HistoryError> {
        if self.schema().get(entity).is_none() {
            return Err(hercules_schema::SchemaError::UnknownEntityId(entity).into());
        }
        Ok(self
            .forward_chain(from)?
            .into_iter()
            .filter(|&i| {
                self.schema().is_subtype_of(
                    self.instance(i).expect("chained instance exists").entity(),
                    entity,
                )
            })
            .collect())
    }

    /// Looks for an instance of `entity` whose immediate derivation is
    /// exactly (`tool`, `inputs`) — i.e. "has this extraction already
    /// been performed?" (§3.3). Input order is ignored.
    pub fn find_cached(
        &self,
        entity: hercules_schema::EntityTypeId,
        tool: Option<InstanceId>,
        inputs: &[InstanceId],
    ) -> Option<InstanceId> {
        let mut sorted_inputs: Vec<InstanceId> = inputs.to_vec();
        sorted_inputs.sort();
        self.instances_of(entity).into_iter().find(|&id| {
            let inst = self.instance(id).expect("indexed instance exists");
            match inst.derivation() {
                Some(d) => {
                    let mut di = d.inputs.clone();
                    di.sort();
                    d.tool == tool && di == sorted_inputs
                }
                None => false,
            }
        })
    }

    /// Uses a task graph as a query template (§4.2): finds every
    /// assignment of history instances to flow nodes such that
    ///
    /// * each node's instance belongs to the node's entity family,
    /// * each functional edge matches the consumer instance's recorded
    ///   tool, and
    /// * each data edge's source instance appears among the consumer
    ///   instance's recorded inputs.
    ///
    /// `bindings` pins chosen nodes to known instances; this is how
    /// Fig. 9's browser question "find the simulations that were
    /// performed for *this* netlist" is posed.
    ///
    /// Matches are returned in deterministic order, at most `limit` if
    /// given.
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::SchemaMismatch`] if the flow was built
    /// against a different schema,
    /// [`HistoryError::BindingTypeMismatch`] for ill-typed bindings, or
    /// a flow error for corrupt graphs.
    pub fn query_template(
        &self,
        flow: &TaskGraph,
        bindings: &[(NodeId, InstanceId)],
        limit: Option<usize>,
    ) -> Result<Vec<TemplateMatch>, HistoryError> {
        if **flow.schema() != **self.schema() {
            return Err(HistoryError::SchemaMismatch);
        }
        for &(node, inst) in bindings {
            let node_entity = flow.entity_of(node)?;
            let inst_entity = self.instance(inst)?.entity();
            if !self.schema().is_subtype_of(inst_entity, node_entity) {
                return Err(HistoryError::BindingTypeMismatch {
                    node_entity: self.schema().entity(node_entity).name().to_owned(),
                    instance_entity: self.schema().entity(inst_entity).name().to_owned(),
                });
            }
        }

        // Process consumers before producers so each node's candidates
        // are constrained by already-assigned consumers.
        let mut order = flow.topo_order()?;
        order.reverse();

        let mut matches = Vec::new();
        let mut assignment: HashMap<NodeId, InstanceId> = HashMap::new();
        self.search(
            flow,
            bindings,
            &order,
            0,
            &mut assignment,
            &mut matches,
            limit,
        )?;
        matches.sort();
        Ok(matches)
    }

    #[allow(clippy::too_many_arguments)]
    fn search(
        &self,
        flow: &TaskGraph,
        bindings: &[(NodeId, InstanceId)],
        order: &[NodeId],
        idx: usize,
        assignment: &mut HashMap<NodeId, InstanceId>,
        matches: &mut Vec<TemplateMatch>,
        limit: Option<usize>,
    ) -> Result<(), HistoryError> {
        if let Some(l) = limit {
            if matches.len() >= l {
                return Ok(());
            }
        }
        if idx == order.len() {
            let mut m: TemplateMatch = assignment.iter().map(|(&n, &i)| (n, i)).collect();
            m.sort();
            matches.push(m);
            return Ok(());
        }
        let node = order[idx];
        let candidates = self.candidates_for(flow, bindings, assignment, node)?;
        for cand in candidates {
            assignment.insert(node, cand);
            self.search(flow, bindings, order, idx + 1, assignment, matches, limit)?;
            assignment.remove(&node);
        }
        Ok(())
    }

    /// Computes the candidate instances for `node` given the consumers
    /// already assigned.
    fn candidates_for(
        &self,
        flow: &TaskGraph,
        bindings: &[(NodeId, InstanceId)],
        assignment: &HashMap<NodeId, InstanceId>,
        node: NodeId,
    ) -> Result<Vec<InstanceId>, HistoryError> {
        let entity = flow.entity_of(node)?;

        // Start from the binding or the whole family.
        let mut candidates: Vec<InstanceId> = match bindings.iter().find(|(n, _)| *n == node) {
            Some(&(_, inst)) => vec![inst],
            None => self.instances_of_family(entity),
        };

        // Constrain by every already-assigned consumer.
        for edge in flow.consumers_of(node) {
            if let Some(&consumer_inst) = assignment.get(&edge.target()) {
                let consumer = self.instance(consumer_inst)?;
                let allowed: Vec<InstanceId> = match consumer.derivation() {
                    Some(d) => {
                        if edge.is_functional() {
                            d.tool.into_iter().collect()
                        } else {
                            d.inputs.clone()
                        }
                    }
                    None => Vec::new(),
                };
                candidates.retain(|c| allowed.contains(c));
            }
        }
        // An interior template node must be *derived* accordingly: if the
        // node has a functional producer edge, primary instances cannot
        // match.
        if flow.is_expanded(node) {
            candidates.retain(|&c| self.instance(c).map(|i| !i.is_primary()).unwrap_or(false));
        }
        Ok(candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derivation::Derivation;
    use crate::instance::Metadata;
    use hercules_schema::{fixtures, TaskSchema};
    use std::sync::Arc;

    /// Builds a small history: editor → netlist n1, n2 (edit of n1);
    /// simulator runs on circuits of both, producing perf1, perf2.
    fn sample() -> (Arc<TaskSchema>, HistoryDb, Vec<InstanceId>) {
        let schema = Arc::new(fixtures::fig1());
        let mut db = HistoryDb::new(schema.clone());
        let t = |n: &str| schema.require(n).expect("known");
        let editor = db
            .record_primary(t("CircuitEditor"), Metadata::by("jbb"), b"sced")
            .expect("ok");
        let sim = db
            .record_primary(t("Simulator"), Metadata::by("jbb"), b"hspice")
            .expect("ok");
        let dm = db
            .record_primary(t("DeviceModels"), Metadata::by("jbb"), b"bsim")
            .expect("ok");
        let stim = db
            .record_primary(t("Stimuli"), Metadata::by("jbb"), b"pulse")
            .expect("ok");
        let n1 = db
            .record_derived(
                t("EditedNetlist"),
                Metadata::by("jbb").named("lpf v1"),
                b"n1",
                Derivation::by_tool(editor, []),
            )
            .expect("ok");
        let n2 = db
            .record_derived(
                t("EditedNetlist"),
                Metadata::by("jbb").named("lpf v2"),
                b"n2",
                Derivation::by_tool(editor, [n1]),
            )
            .expect("ok");
        let c1 = db
            .record_derived(
                t("Circuit"),
                Metadata::by("jbb"),
                b"c1",
                Derivation::by_composition([dm, n1]),
            )
            .expect("ok");
        let c2 = db
            .record_derived(
                t("Circuit"),
                Metadata::by("jbb"),
                b"c2",
                Derivation::by_composition([dm, n2]),
            )
            .expect("ok");
        let p1 = db
            .record_derived(
                t("Performance"),
                Metadata::by("jbb"),
                b"p1",
                Derivation::by_tool(sim, [c1, stim]),
            )
            .expect("ok");
        let p2 = db
            .record_derived(
                t("Performance"),
                Metadata::by("jbb"),
                b"p2",
                Derivation::by_tool(sim, [c2, stim]),
            )
            .expect("ok");
        let ids = vec![editor, sim, dm, stim, n1, n2, c1, c2, p1, p2];
        (schema, db, ids)
    }

    #[test]
    fn backward_chain_depth_one_reveals_immediate_derivation() {
        let (_, db, ids) = sample();
        let (sim, stim, c1, p1) = (ids[1], ids[3], ids[6], ids[8]);
        let tree = db.backward_chain(p1, Some(1)).expect("ok");
        assert_eq!(tree.instance, p1);
        assert_eq!(tree.tool, Some(sim));
        let inputs: Vec<InstanceId> = tree.inputs.iter().map(|t| t.instance).collect();
        assert_eq!(inputs, vec![c1, stim]);
        // Depth 1: the circuit's own derivation is not revealed.
        assert!(tree.inputs[0].inputs.is_empty());
        assert_eq!(tree.depth(), 1);
    }

    #[test]
    fn backward_chain_unlimited_reaches_primaries() {
        let (_, db, ids) = sample();
        let p2 = ids[9];
        let tree = db.backward_chain(p2, None).expect("ok");
        let flat = tree.flatten();
        for &primary in &[ids[0], ids[1], ids[2], ids[3]] {
            assert!(flat.contains(&primary), "missing primary {primary}");
        }
        // Tools sit beside their product, so depth counts data steps:
        // perf <- circuit <- n2 <- n1.
        assert_eq!(tree.depth(), 3);
    }

    #[test]
    fn ancestors_is_the_dedup_closure() {
        let (_, db, ids) = sample();
        let p2 = ids[9];
        let anc = db.ancestors(p2).expect("ok");
        // Everything except the two performances and c1/n... let's check
        // exact membership: editor, sim, dm, stim, n1, n2, c2.
        for &a in &[ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], ids[7]] {
            assert!(anc.contains(&a));
        }
        assert!(!anc.contains(&ids[8]), "p1 not an ancestor of p2");
        assert!(!anc.contains(&ids[6]), "c1 not an ancestor of p2");
    }

    #[test]
    fn forward_chain_finds_all_dependents() {
        let (_, db, ids) = sample();
        let n1 = ids[4];
        let fwd = db.forward_chain(n1).expect("ok");
        // n1 -> n2 (edit), c1, then c2 (via n2), p1, p2.
        assert_eq!(fwd, vec![ids[5], ids[6], ids[7], ids[8], ids[9]]);
    }

    #[test]
    fn find_derived_filters_by_entity_family() {
        let (schema, db, ids) = sample();
        let n1 = ids[4];
        let perf_ty = schema.require("Performance").expect("known");
        let perfs = db.find_derived(n1, perf_ty).expect("ok");
        assert_eq!(perfs, vec![ids[8], ids[9]]);
    }

    #[test]
    fn find_cached_matches_exact_derivation() {
        let (schema, db, ids) = sample();
        let (sim, stim, c1, c2, p1) = (ids[1], ids[3], ids[6], ids[7], ids[8]);
        let perf_ty = schema.require("Performance").expect("known");
        assert_eq!(db.find_cached(perf_ty, Some(sim), &[c1, stim]), Some(p1));
        // Input order is irrelevant.
        assert_eq!(db.find_cached(perf_ty, Some(sim), &[stim, c1]), Some(p1));
        // Different inputs: p2, not p1.
        assert_eq!(
            db.find_cached(perf_ty, Some(sim), &[c2, stim]),
            Some(ids[9])
        );
        // No such run.
        assert_eq!(db.find_cached(perf_ty, Some(sim), &[c1, c2]), None);
    }

    #[test]
    fn template_query_finds_simulations_of_a_netlist() {
        let (schema, db, ids) = sample();
        let (n1, p1) = (ids[4], ids[8]);

        // Template: Performance <- Simulator, Circuit <- (DeviceModels,
        // Netlist); bind the Netlist node to n1.
        let mut flow = TaskGraph::new(schema.clone());
        let perf = flow
            .seed(schema.require("Performance").expect("known"))
            .expect("ok");
        let created = flow.expand(perf).expect("ok"); // sim, circuit, stimuli
        let circuit = created[1];
        let created = flow.expand(circuit).expect("ok"); // dm, netlist
        let netlist_node = created[1];

        let matches = db
            .query_template(&flow, &[(netlist_node, n1)], None)
            .expect("ok");
        assert_eq!(matches.len(), 1, "only p1 simulates n1");
        let m = &matches[0];
        let perf_inst = m.iter().find(|(n, _)| *n == perf).expect("assigned").1;
        assert_eq!(perf_inst, p1);

        // Unbound: both performances match.
        let matches = db.query_template(&flow, &[], None).expect("ok");
        assert_eq!(matches.len(), 2);
    }

    #[test]
    fn template_query_respects_limit_and_type_checks() {
        let (schema, db, ids) = sample();
        let mut flow = TaskGraph::new(schema.clone());
        let perf = flow
            .seed(schema.require("Performance").expect("known"))
            .expect("ok");
        flow.expand(perf).expect("ok");

        let matches = db.query_template(&flow, &[], Some(1)).expect("ok");
        assert_eq!(matches.len(), 1);

        // Binding a node to a wrongly-typed instance errors.
        let stim = ids[3];
        assert!(matches!(
            db.query_template(&flow, &[(perf, stim)], None).unwrap_err(),
            HistoryError::BindingTypeMismatch { .. }
        ));
    }

    #[test]
    fn template_query_rejects_mismatched_schema() {
        let (_, db, _) = sample();
        let other = Arc::new(fixtures::fig2());
        let flow = TaskGraph::new(other);
        assert_eq!(
            db.query_template(&flow, &[], None).unwrap_err(),
            HistoryError::SchemaMismatch
        );
    }

    #[test]
    fn unexpanded_single_node_template_lists_the_family() {
        let (schema, db, _) = sample();
        let mut flow = TaskGraph::new(schema.clone());
        let node = flow
            .seed(schema.require("Netlist").expect("known"))
            .expect("ok");
        let matches = db.query_template(&flow, &[], None).expect("ok");
        assert_eq!(matches.len(), 2, "n1 and n2");
        assert!(matches.iter().all(|m| m[0].0 == node));
    }
}
