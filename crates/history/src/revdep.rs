//! Persistent reverse-dependency index for incremental consistency
//! analysis (§3.3, ROADMAP item 3).
//!
//! The consistency queries in [`consistency`](crate::consistency) are
//! correct but *global*: `newest_version_of` rebuilds a family's whole
//! version forest and `stale_instances` rescans every derivation. This
//! module maintains the same information incrementally:
//!
//! * a **reverse-dependency index** — for every instance, the instances
//!   whose derivations reference it (the forward-chaining relation,
//!   precomputed);
//! * a **version cache** — each instance's version predecessor,
//!   successors, and the *newest* version in its subtree, maintained in
//!   `O(depth)` per append instead of `O(family)` per query;
//! * a **dirty cone** — given the instances appended since the last
//!   analysis, the set of instances whose consistency verdicts may have
//!   changed (the forward closure of the edit over the reverse index);
//! * a **retrace cone** — a structured prediction of what
//!   `hercules_exec::retrace` will recall, cut, and re-run for a goal
//!   instance, computed without executing anything.
//!
//! The index is append-only, mirroring the history database: `update`
//! folds in exactly the instances recorded since the last call. A
//! fingerprint over the indexed prefix lets a persisted index
//! ([`RevDepIndexSpec`]) prove it still describes the database it is
//! loaded against; on any mismatch the caller rebuilds from scratch.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use crate::db::HistoryDb;
use crate::error::HistoryError;
use crate::instance::{EntityInstance, InstanceId};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut fp: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        fp = (fp ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    fp
}

/// Folds one instance's identity-relevant fields into a running
/// fingerprint: id, entity type, and immediate derivation. Metadata is
/// deliberately excluded — annotations do not change dependency
/// structure.
fn fingerprint_instance(mut fp: u64, inst: &EntityInstance) -> u64 {
    fp = fnv_fold(fp, inst.id().raw());
    fp = fnv_fold(fp, inst.entity().index() as u64);
    match inst.derivation() {
        None => fp = fnv_fold(fp, u64::MAX),
        Some(d) => {
            fp = fnv_fold(fp, d.tool.map(|t| t.raw() + 1).unwrap_or(0));
            fp = fnv_fold(fp, d.inputs.len() as u64);
            for &i in &d.inputs {
                fp = fnv_fold(fp, i.raw());
            }
        }
    }
    fp
}

/// The incremental reverse-dependency index over a [`HistoryDb`].
///
/// Invariants (for the `indexed` prefix of the database):
///
/// * `dependents[x]` lists, in id order, every indexed instance whose
///   derivation references `x` (tool or input);
/// * `version_parent[x]` equals [`HistoryDb::version_parent`];
/// * `version_children[x]` lists the instances whose version parent is
///   `x`, in id order;
/// * `newest[x]` equals [`HistoryDb::newest_version_of`] — the newest
///   version in the version subtree rooted at `x`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RevDepIndex {
    indexed: usize,
    fingerprint: u64,
    dependents: Vec<Vec<InstanceId>>,
    version_parent: Vec<Option<InstanceId>>,
    version_children: Vec<Vec<InstanceId>>,
    newest: Vec<InstanceId>,
}

impl Default for RevDepIndex {
    fn default() -> RevDepIndex {
        RevDepIndex::new()
    }
}

impl RevDepIndex {
    /// Creates an empty index (watermark 0).
    pub fn new() -> RevDepIndex {
        RevDepIndex {
            indexed: 0,
            fingerprint: FNV_OFFSET,
            dependents: Vec::new(),
            version_parent: Vec::new(),
            version_children: Vec::new(),
            newest: Vec::new(),
        }
    }

    /// Builds a fresh index over the whole database.
    ///
    /// # Errors
    ///
    /// Propagates lookup errors (none occur on a well-formed database).
    pub fn build(db: &HistoryDb) -> Result<RevDepIndex, HistoryError> {
        let mut index = RevDepIndex::new();
        index.update(db)?;
        Ok(index)
    }

    /// Returns the watermark: how many instances (a prefix of the
    /// database, in id order) this index covers.
    pub fn watermark(&self) -> usize {
        self.indexed
    }

    /// Returns the fingerprint of the indexed prefix.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Folds in every instance recorded since the last update and
    /// returns their ids. The database must be the same append-only
    /// database previous updates saw; if it has *shrunk* the index
    /// rebuilds from scratch (and returns every id as new).
    ///
    /// # Errors
    ///
    /// Propagates lookup errors (none occur on a well-formed database).
    pub fn update(&mut self, db: &HistoryDb) -> Result<Vec<InstanceId>, HistoryError> {
        if self.indexed > db.len() {
            *self = RevDepIndex::new();
        }
        let mut fresh = Vec::new();
        for inst in db.instances().skip(self.indexed) {
            let id = inst.id();
            self.fingerprint = fingerprint_instance(self.fingerprint, inst);
            self.dependents.push(Vec::new());
            self.version_children.push(Vec::new());
            self.newest.push(id);
            let vp = db.version_parent(id)?;
            self.version_parent.push(vp);
            if let Some(p) = vp {
                self.version_children[p.index()].push(id);
            }
            if let Some(d) = inst.derivation() {
                for r in d.referenced() {
                    let deps = &mut self.dependents[r.index()];
                    if deps.last() != Some(&id) {
                        deps.push(id);
                    }
                }
            }
            // `id` is now the newest member of every version subtree
            // containing it, unless a cached entry is at least as
            // recent (same tie-breaking as the forest scan in
            // `newest_version_of`: replace only on strictly-later).
            let created = inst.meta().created;
            let mut cur = vp;
            while let Some(x) = cur {
                if created.is_after(db.created_at(self.newest[x.index()])?) {
                    self.newest[x.index()] = id;
                }
                cur = self.version_parent[x.index()];
            }
            self.indexed += 1;
            fresh.push(id);
        }
        Ok(fresh)
    }

    /// Returns the indexed instances whose derivations reference `id`
    /// (empty for unindexed ids).
    pub fn dependents(&self, id: InstanceId) -> &[InstanceId] {
        self.dependents
            .get(id.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Returns the cached version predecessor of `id`.
    pub fn version_parent(&self, id: InstanceId) -> Option<InstanceId> {
        self.version_parent.get(id.index()).copied().flatten()
    }

    /// Returns the cached direct version successors of `id`.
    pub fn version_children(&self, id: InstanceId) -> &[InstanceId] {
        self.version_children
            .get(id.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Returns the newest version in the version subtree rooted at `id`
    /// in `O(1)` (the cached equivalent of
    /// [`HistoryDb::newest_version_of`]).
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::UnknownInstance`] for unindexed ids.
    pub fn newest_version(&self, id: InstanceId) -> Result<InstanceId, HistoryError> {
        self.newest
            .get(id.index())
            .copied()
            .ok_or(HistoryError::UnknownInstance(id))
    }

    /// Computes the dirty cone of an edit: the instances whose
    /// consistency verdicts may differ after `fresh` were appended.
    ///
    /// Seeds are the new instances themselves, the instances their
    /// derivations reference directly (whose *dependent sets* changed —
    /// an instance stops being a goal the moment something consumes
    /// it), and their version ancestors (whose *newest version*
    /// changed). The cone is the forward closure of the seeds over the
    /// reverse-dependency relation: anything downstream of a superseded
    /// version may have become transitively stale.
    ///
    /// Call [`RevDepIndex::update`] first; every id in `fresh` must be
    /// indexed.
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::UnknownInstance`] for unindexed ids.
    pub fn dirty_cone(
        &self,
        db: &HistoryDb,
        fresh: &[InstanceId],
    ) -> Result<DirtyCone, HistoryError> {
        let mut seeds: BTreeSet<InstanceId> = BTreeSet::new();
        for &id in fresh {
            if id.index() >= self.indexed {
                return Err(HistoryError::UnknownInstance(id));
            }
            seeds.insert(id);
            if let Some(d) = db.instance(id)?.derivation() {
                seeds.extend(d.referenced());
            }
            let mut cur = self.version_parent(id);
            while let Some(x) = cur {
                seeds.insert(x);
                cur = self.version_parent(x);
            }
        }
        let seeds: Vec<InstanceId> = seeds.into_iter().collect();
        let mut members: BTreeSet<InstanceId> = seeds.iter().copied().collect();
        let mut stack: Vec<InstanceId> = seeds.clone();
        let mut visited = 0usize;
        while let Some(x) = stack.pop() {
            visited += 1;
            for &d in self.dependents(x) {
                if members.insert(d) {
                    stack.push(d);
                }
            }
        }
        Ok(DirtyCone {
            members: members.into_iter().collect(),
            seeds,
            visited,
        })
    }

    /// Computes the retrace cone for `goal` using this index's cached
    /// newest-version table (the fast path of
    /// [`RetraceCone::compute`]).
    ///
    /// # Errors
    ///
    /// Propagates lookup errors; every instance reachable from `goal`
    /// must be indexed.
    pub fn retrace_cone(
        &self,
        db: &HistoryDb,
        goal: InstanceId,
    ) -> Result<RetraceCone, HistoryError> {
        compute_cone(db, goal, &mut |i| self.newest_version(i))
    }
}

/// The instances whose consistency verdicts an edit can have changed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirtyCone {
    /// Every affected instance, in id order (seeds included).
    pub members: Vec<InstanceId>,
    /// The seed instances the closure started from, in id order.
    pub seeds: Vec<InstanceId>,
    /// Instances popped while closing the cone — the work the
    /// incremental path did, for comparison against a full scan.
    pub visited: usize,
}

impl DirtyCone {
    /// Returns `true` if `id` is in the cone.
    pub fn contains(&self, id: InstanceId) -> bool {
        self.members.binary_search(&id).is_ok()
    }
}

/// One version cut applied while recalling a flow: a superseded input
/// replaced by its newest version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VersionCut {
    /// The instance the original derivation used.
    pub superseded: InstanceId,
    /// The newest version bound in its place.
    pub newest: InstanceId,
}

/// A structured prediction of what retracing `goal` will do, computed
/// from the history alone — the §3.3 query "whether such retracing need
/// occur", answered before any tool runs.
///
/// The cone mirrors the recall walk of `hercules_exec::retrace`
/// exactly: fast-forwarded instances become leaves bound to their
/// newest versions ([`RetraceCone::cuts`]), version predecessors of
/// edits stay pinned, and everything else is expanded. An expanded
/// instance whose (transitive) inputs gained newer versions is
/// predicted to re-run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetraceCone {
    /// The goal instance the cone was computed for.
    pub goal: InstanceId,
    /// Every instance in the recalled flow, in id order.
    pub recall: Vec<InstanceId>,
    /// Expanded instances whose derivations are predicted to re-run
    /// (their recalled inputs differ from the original derivation), in
    /// id order. The executor's cache may still absorb some of these if
    /// an earlier retrace already produced the re-derivation.
    pub rerun: Vec<InstanceId>,
    /// The version cuts applied during recall, ordered by superseded
    /// instance.
    pub cuts: Vec<VersionCut>,
    /// `true` when nothing is predicted to re-run; retracing would
    /// serve the goal entirely from the history.
    pub already_current: bool,
    /// Instances visited while recalling — the cone-computation work.
    pub visited: usize,
}

impl RetraceCone {
    /// Computes the retrace cone for `goal`, building a fresh
    /// [`RevDepIndex`] for the newest-version lookups. Reuse an
    /// existing index via [`RevDepIndex::retrace_cone`] when analyzing
    /// repeatedly.
    ///
    /// # Errors
    ///
    /// Propagates lookup errors for unknown instances.
    pub fn compute(db: &HistoryDb, goal: InstanceId) -> Result<RetraceCone, HistoryError> {
        let index = RevDepIndex::build(db)?;
        index.retrace_cone(db, goal)
    }

    /// Renders a one-line summary ("3 to re-run, 1 cut, 14 recalled").
    pub fn summary(&self) -> String {
        if self.already_current {
            format!("already current ({} recalled)", self.recall.len())
        } else {
            format!(
                "{} to re-run, {} cut, {} recalled",
                self.rerun.len(),
                self.cuts.len(),
                self.recall.len()
            )
        }
    }
}

/// Per-instance outcome of the recall walk.
#[derive(Debug, Clone, Copy)]
struct ConeSlot {
    expanded: bool,
    bound: Option<InstanceId>,
}

struct ConeBuilder<'a, 'f> {
    db: &'a HistoryDb,
    newest: &'f mut dyn FnMut(InstanceId) -> Result<InstanceId, HistoryError>,
    slots: HashMap<InstanceId, ConeSlot>,
    cuts: Vec<VersionCut>,
    visited: usize,
}

impl ConeBuilder<'_, '_> {
    /// Mirrors `Recall::visit` in `hercules_exec::retrace`: same
    /// memoization, same fast-forward rule, same version-predecessor
    /// pinning — so the predicted flow is the one retrace will build.
    fn visit(&mut self, inst: InstanceId, fast_forward: bool) -> Result<(), HistoryError> {
        if self.slots.contains_key(&inst) {
            return Ok(());
        }
        self.visited += 1;
        self.slots.insert(
            inst,
            ConeSlot {
                expanded: false,
                bound: None,
            },
        );
        let record = self.db.instance(inst)?;
        if fast_forward {
            let newest = (self.newest)(inst)?;
            if newest != inst {
                self.slots.get_mut(&inst).expect("just inserted").bound = Some(newest);
                self.cuts.push(VersionCut {
                    superseded: inst,
                    newest,
                });
                return Ok(());
            }
        }
        let Some(derivation) = record.derivation().cloned() else {
            self.slots.get_mut(&inst).expect("just inserted").bound = Some(inst);
            return Ok(());
        };
        self.slots.get_mut(&inst).expect("just inserted").expanded = true;
        let version_parent = self.db.version_parent(inst)?;
        if let Some(tool) = derivation.tool {
            self.visit(tool, true)?;
        }
        for input in derivation.inputs {
            let pinned = Some(input) == version_parent;
            self.visit(input, !pinned)?;
            let slot = self.slots.get_mut(&input).expect("visited");
            if pinned && !slot.expanded {
                // Pinned predecessor stays a leaf bound to itself, even
                // if another path fast-forwarded it first.
                slot.bound = Some(input);
            }
        }
        Ok(())
    }
}

fn compute_cone(
    db: &HistoryDb,
    goal: InstanceId,
    newest: &mut dyn FnMut(InstanceId) -> Result<InstanceId, HistoryError>,
) -> Result<RetraceCone, HistoryError> {
    let mut builder = ConeBuilder {
        db,
        newest,
        slots: HashMap::new(),
        cuts: Vec::new(),
        visited: 0,
    };
    builder.visit(goal, false)?;
    let ConeBuilder {
        slots,
        mut cuts,
        visited,
        ..
    } = builder;

    let recall: Vec<InstanceId> = {
        let mut ids: Vec<InstanceId> = slots.keys().copied().collect();
        ids.sort_unstable();
        ids
    };
    // An expanded instance is affected when any dependency resolved to
    // something other than its original value: a leaf rebound to a
    // newer version, or an affected producer. Derivation inputs always
    // have smaller ids than their product, so one ascending pass
    // settles the whole cone.
    let mut affected: BTreeMap<InstanceId, bool> = BTreeMap::new();
    for &id in &recall {
        let slot = slots[&id];
        if !slot.expanded {
            affected.insert(id, false);
            continue;
        }
        let derivation = self_derivation(db, id)?;
        let mut hit = false;
        for r in derivation.referenced() {
            let rs = slots[&r];
            hit |= if rs.expanded {
                affected[&r]
            } else {
                rs.bound != Some(r)
            };
        }
        affected.insert(id, hit);
    }
    let rerun: Vec<InstanceId> = recall
        .iter()
        .copied()
        .filter(|id| slots[id].expanded && affected[id])
        .collect();
    cuts.sort_unstable_by_key(|c| c.superseded);
    let already_current = rerun.is_empty();
    Ok(RetraceCone {
        goal,
        recall,
        rerun,
        cuts,
        already_current,
        visited,
    })
}

fn self_derivation(
    db: &HistoryDb,
    id: InstanceId,
) -> Result<crate::derivation::Derivation, HistoryError> {
    Ok(db
        .instance(id)?
        .derivation()
        .cloned()
        .expect("expanded slots are derived"))
}

/// Serialized form of a [`RevDepIndex`]: the semantic caches plus a
/// fingerprint proving which database prefix they describe.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RevDepIndexSpec {
    /// Watermark: instances covered, a prefix of the database.
    pub indexed: u64,
    /// Fingerprint of the covered prefix.
    pub fingerprint: u64,
    /// Cached version predecessors, by raw id.
    pub version_parent: Vec<Option<u64>>,
    /// Cached newest-version table, by raw id.
    pub newest: Vec<u64>,
}

impl RevDepIndexSpec {
    /// Captures an index for persistence.
    pub fn capture(index: &RevDepIndex) -> RevDepIndexSpec {
        RevDepIndexSpec {
            indexed: index.indexed as u64,
            fingerprint: index.fingerprint,
            version_parent: index
                .version_parent
                .iter()
                .map(|p| p.map(InstanceId::raw))
                .collect(),
            newest: index.newest.iter().map(|n| n.raw()).collect(),
        }
    }

    /// Restores an index against `db`, validating that the captured
    /// prefix still matches: the watermark must not exceed the database
    /// and the prefix fingerprint must agree. Returns `None` when the
    /// spec does not describe this database (caller rebuilds).
    ///
    /// # Errors
    ///
    /// Propagates lookup errors (none occur on a well-formed database).
    pub fn restore(&self, db: &HistoryDb) -> Result<Option<RevDepIndex>, HistoryError> {
        let indexed = self.indexed as usize;
        if indexed > db.len()
            || self.version_parent.len() != indexed
            || self.newest.len() != indexed
        {
            return Ok(None);
        }
        let mut fp = FNV_OFFSET;
        for inst in db.instances().take(indexed) {
            fp = fingerprint_instance(fp, inst);
        }
        if fp != self.fingerprint {
            return Ok(None);
        }
        let in_prefix = |raw: u64| (raw as usize) < indexed;
        if self.newest.iter().any(|&n| !in_prefix(n))
            || self.version_parent.iter().flatten().any(|&p| !in_prefix(p))
        {
            return Ok(None);
        }
        // Structure (reverse edges, version children) is cheap to
        // re-derive; only the caches above carry cross-instance work.
        let version_parent: Vec<Option<InstanceId>> = self
            .version_parent
            .iter()
            .map(|p| p.map(InstanceId::from_raw))
            .collect();
        let mut dependents: Vec<Vec<InstanceId>> = vec![Vec::new(); indexed];
        let mut version_children: Vec<Vec<InstanceId>> = vec![Vec::new(); indexed];
        for inst in db.instances().take(indexed) {
            let id = inst.id();
            if let Some(d) = inst.derivation() {
                for r in d.referenced() {
                    let deps = &mut dependents[r.index()];
                    if deps.last() != Some(&id) {
                        deps.push(id);
                    }
                }
            }
            if let Some(p) = version_parent[id.index()] {
                version_children[p.index()].push(id);
            }
        }
        Ok(Some(RevDepIndex {
            indexed,
            fingerprint: self.fingerprint,
            dependents,
            version_parent,
            version_children,
            newest: self
                .newest
                .iter()
                .map(|&n| InstanceId::from_raw(n))
                .collect(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derivation::Derivation;
    use crate::instance::Metadata;
    use hercules_schema::fixtures;
    use std::sync::Arc;

    /// layout L1 --extract--> X1, then the netlist input is re-edited:
    /// the standard §3.3 out-of-date scenario.
    fn extraction_db() -> (HistoryDb, Vec<InstanceId>) {
        let schema = Arc::new(fixtures::fig1());
        let mut db = HistoryDb::new(schema.clone());
        let t = |n: &str| schema.require(n).expect("known");
        let placer = db
            .record_primary(t("Placer"), Metadata::by("u"), b"placer")
            .expect("ok");
        let extractor = db
            .record_primary(t("Extractor"), Metadata::by("u"), b"ext")
            .expect("ok");
        let editor = db
            .record_primary(t("CircuitEditor"), Metadata::by("u"), b"ed")
            .expect("ok");
        let net = db
            .record_derived(
                t("EditedNetlist"),
                Metadata::by("u"),
                b"net",
                Derivation::by_tool(editor, []),
            )
            .expect("ok");
        let rules = db
            .record_primary(t("PlacementRules"), Metadata::by("u"), b"rules")
            .expect("ok");
        let l1 = db
            .record_derived(
                t("Layout"),
                Metadata::by("u").named("L1"),
                b"l1",
                Derivation::by_tool(placer, [net, rules]),
            )
            .expect("ok");
        let x1 = db
            .record_derived(
                t("ExtractedNetlist"),
                Metadata::by("u").named("X1"),
                b"x1",
                Derivation::by_tool(extractor, [l1]),
            )
            .expect("ok");
        (db, vec![placer, extractor, editor, net, rules, l1, x1])
    }

    fn edit_netlist(db: &mut HistoryDb, editor: InstanceId, from: InstanceId) -> InstanceId {
        db.record_derived(
            db.schema().require("EditedNetlist").expect("known"),
            Metadata::by("u"),
            b"net'",
            Derivation::by_tool(editor, [from]),
        )
        .expect("ok")
    }

    #[test]
    fn index_matches_db_queries() {
        let (mut db, ids) = extraction_db();
        let net2 = edit_netlist(&mut db, ids[2], ids[3]);
        let net3 = edit_netlist(&mut db, ids[2], net2);
        let index = RevDepIndex::build(&db).expect("ok");
        for inst in db.instances() {
            let id = inst.id();
            assert_eq!(
                index.newest_version(id).expect("ok"),
                db.newest_version_of(id).expect("ok"),
                "newest of {id}"
            );
            assert_eq!(
                index.version_parent(id),
                db.version_parent(id).expect("ok"),
                "version parent of {id}"
            );
            assert_eq!(
                index.dependents(id),
                db.direct_dependents(id).expect("ok"),
                "dependents of {id}"
            );
        }
        assert_eq!(index.newest_version(ids[3]).expect("ok"), net3);
    }

    #[test]
    fn incremental_update_equals_fresh_build() {
        let (mut db, ids) = extraction_db();
        let mut live = RevDepIndex::build(&db).expect("ok");
        let net2 = edit_netlist(&mut db, ids[2], ids[3]);
        let fresh_ids = live.update(&db).expect("ok");
        assert_eq!(fresh_ids, vec![net2]);
        assert_eq!(live, RevDepIndex::build(&db).expect("ok"));
        assert!(live.update(&db).expect("ok").is_empty());
    }

    #[test]
    fn dirty_cone_covers_the_downstream_of_an_edit() {
        let (mut db, ids) = extraction_db();
        let (editor, net, l1, x1) = (ids[2], ids[3], ids[5], ids[6]);
        let net2 = edit_netlist(&mut db, editor, net);
        let index = RevDepIndex::build(&db).expect("ok");
        let cone = index.dirty_cone(&db, &[net2]).expect("ok");
        for id in [net, net2, l1, x1, editor] {
            assert!(cone.contains(id), "{id} should be dirty");
        }
        // The placement rules are untouched by the edit.
        assert!(!cone.contains(ids[4]));
        assert!(cone.visited <= db.len());
    }

    #[test]
    fn retrace_cone_predicts_cuts_and_reruns() {
        let (mut db, ids) = extraction_db();
        let (editor, net, rules, l1, x1) = (ids[2], ids[3], ids[4], ids[5], ids[6]);
        let fresh = RetraceCone::compute(&db, x1).expect("ok");
        assert!(fresh.already_current);
        assert!(fresh.cuts.is_empty());
        assert!(fresh.rerun.is_empty());
        assert!(fresh.recall.contains(&l1) && fresh.recall.contains(&rules));

        let net2 = edit_netlist(&mut db, editor, net);
        let cone = RetraceCone::compute(&db, x1).expect("ok");
        assert!(!cone.already_current);
        assert_eq!(
            cone.cuts,
            vec![VersionCut {
                superseded: net,
                newest: net2
            }]
        );
        assert_eq!(cone.rerun, vec![l1, x1]);
    }

    #[test]
    fn pinned_version_parent_is_not_cut() {
        let (mut db, ids) = extraction_db();
        let (editor, net) = (ids[2], ids[3]);
        let net2 = edit_netlist(&mut db, editor, net);
        let _net3 = edit_netlist(&mut db, editor, net2);
        // Retracing net2 pins its predecessor `net` even though net2
        // itself has a successor: an edit is never stale w.r.t. the
        // version it edits.
        let cone = RetraceCone::compute(&db, net2).expect("ok");
        assert!(cone.already_current, "edit of a pinned parent is current");
        assert!(cone.cuts.is_empty());
    }

    #[test]
    fn index_cone_matches_fresh_cone() {
        let (mut db, ids) = extraction_db();
        let mut index = RevDepIndex::build(&db).expect("ok");
        let net2 = edit_netlist(&mut db, ids[2], ids[3]);
        let _ = net2;
        index.update(&db).expect("ok");
        for inst in db.instances() {
            let id = inst.id();
            assert_eq!(
                index.retrace_cone(&db, id).expect("ok"),
                RetraceCone::compute(&db, id).expect("ok"),
                "cone of {id}"
            );
        }
    }

    #[test]
    fn spec_round_trips_and_rejects_mismatches() {
        let (mut db, ids) = extraction_db();
        let index = RevDepIndex::build(&db).expect("ok");
        let spec = RevDepIndexSpec::capture(&index);
        let restored = spec.restore(&db).expect("ok").expect("valid");
        assert_eq!(restored, index);

        // A stale spec (captured before more edits) still validates as
        // a prefix and catches up via update().
        let net2 = edit_netlist(&mut db, ids[2], ids[3]);
        let mut caught_up = spec.restore(&db).expect("ok").expect("prefix valid");
        assert_eq!(caught_up.update(&db).expect("ok"), vec![net2]);
        assert_eq!(caught_up, RevDepIndex::build(&db).expect("ok"));

        // A tampered fingerprint is rejected.
        let mut bad = spec.clone();
        bad.fingerprint ^= 1;
        assert!(bad.restore(&db).expect("ok").is_none());

        // A spec from a different database is rejected.
        let other = HistoryDb::new(Arc::new(fixtures::fig1()));
        assert!(spec.restore(&other).expect("ok").is_none());
    }

    #[test]
    fn serde_round_trip() {
        let (db, _) = extraction_db();
        let index = RevDepIndex::build(&db).expect("ok");
        let spec = RevDepIndexSpec::capture(&index);
        let json = serde_json::to_string(&spec).expect("encode");
        let back: RevDepIndexSpec = serde_json::from_str(&json).expect("decode");
        assert_eq!(back, spec);
    }
}
