//! Immediate derivation records.

use serde::{Deserialize, Serialize};

use crate::instance::InstanceId;

/// The immediate derivation of an instance: "the immediate tool and data
/// used in creating that object" (§1).
///
/// The full derivation history of a design is the transitive closure of
/// these records, reconstructed on demand by backward chaining
/// ([`HistoryDb::backward_chain`]) — nothing more than this record is
/// ever stored per object.
///
/// [`HistoryDb::backward_chain`]: crate::HistoryDb::backward_chain
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Derivation {
    /// The tool instance that ran, or `None` for implicit composition
    /// functions of composite entities.
    pub tool: Option<InstanceId>,
    /// The data instances consumed, in the task's input order.
    pub inputs: Vec<InstanceId>,
}

impl Derivation {
    /// Creates a derivation by a tool over inputs.
    pub fn by_tool<I>(tool: InstanceId, inputs: I) -> Derivation
    where
        I: IntoIterator<Item = InstanceId>,
    {
        Derivation {
            tool: Some(tool),
            inputs: inputs.into_iter().collect(),
        }
    }

    /// Creates a tool-less derivation (implicit composition of a
    /// composite entity).
    pub fn by_composition<I>(inputs: I) -> Derivation
    where
        I: IntoIterator<Item = InstanceId>,
    {
        Derivation {
            tool: None,
            inputs: inputs.into_iter().collect(),
        }
    }

    /// Iterates over every instance referenced: tool (if any) first,
    /// then inputs.
    pub fn referenced(&self) -> impl Iterator<Item = InstanceId> + '_ {
        self.tool.into_iter().chain(self.inputs.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_tool_records_tool_and_inputs() {
        let d = Derivation::by_tool(
            InstanceId::from_raw(0),
            [InstanceId::from_raw(1), InstanceId::from_raw(2)],
        );
        assert_eq!(d.tool, Some(InstanceId::from_raw(0)));
        assert_eq!(d.inputs.len(), 2);
        let refs: Vec<_> = d.referenced().collect();
        assert_eq!(refs.len(), 3);
        assert_eq!(refs[0], InstanceId::from_raw(0));
    }

    #[test]
    fn composition_has_no_tool() {
        let d = Derivation::by_composition([InstanceId::from_raw(4)]);
        assert!(d.tool.is_none());
        assert_eq!(d.referenced().count(), 1);
    }
}
