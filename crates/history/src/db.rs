//! The design-history database.
//!
//! The task schema "specifies the data schema for a database that stores
//! the design derivation history" (§3.1). Every design object created by
//! executing flows is recorded here with its meta-data and immediate
//! derivation; queries into this database replace a separate
//! version-management subsystem (§1).

use std::collections::HashMap;
use std::sync::Arc;

use hercules_schema::{EntityKind, EntityTypeId, TaskSchema};

use crate::clock::{LogicalClock, Timestamp};
use crate::derivation::Derivation;
use crate::error::HistoryError;
use crate::instance::{EntityInstance, InstanceId, Metadata};
use crate::store::{BlobHash, BlobStore};

/// The design-history database: instances, meta-data, derivations, and
/// the shared physical store.
///
/// # Examples
///
/// ```
/// use hercules_history::{HistoryDb, Metadata, Derivation};
/// use hercules_schema::fixtures;
///
/// # fn main() -> Result<(), hercules_history::HistoryError> {
/// let schema = std::sync::Arc::new(fixtures::fig1());
/// let mut db = HistoryDb::new(schema.clone());
///
/// let editor = db.record_primary(
///     schema.require("CircuitEditor")?,
///     Metadata::by("jbb").named("sced v2.1"),
///     b"/usr/cad/bin/sced",
/// )?;
/// let netlist = db.record_derived(
///     schema.require("EditedNetlist")?,
///     Metadata::by("jbb").named("Low pass filter"),
///     b".subckt lpf in out",
///     Derivation::by_tool(editor, []),
/// )?;
/// assert_eq!(db.instance(netlist)?.meta().user, "jbb");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HistoryDb {
    schema: Arc<TaskSchema>,
    instances: Vec<EntityInstance>,
    by_entity: HashMap<EntityTypeId, Vec<InstanceId>>,
    /// Reverse index: instance → instances whose derivation references
    /// it (drives forward chaining).
    dependents: Vec<Vec<InstanceId>>,
    store: BlobStore,
    clock: LogicalClock,
}

impl HistoryDb {
    /// Creates an empty database over `schema`.
    pub fn new(schema: Arc<TaskSchema>) -> HistoryDb {
        HistoryDb {
            schema,
            instances: Vec::new(),
            by_entity: HashMap::new(),
            dependents: Vec::new(),
            store: BlobStore::new(),
            clock: LogicalClock::new(),
        }
    }

    /// Returns the schema the database is typed against.
    pub fn schema(&self) -> &Arc<TaskSchema> {
        &self.schema
    }

    /// Returns the number of recorded instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Returns the blob store holding the physical data.
    pub fn store(&self) -> &BlobStore {
        &self.store
    }

    /// Returns the logical clock (e.g. to advance it between "days").
    pub fn clock_mut(&mut self) -> &mut LogicalClock {
        &mut self.clock
    }

    /// Records a *primary* instance: a design object imported from
    /// outside (a tool binary, a device-model library, hand-written
    /// stimuli). It has meta-data but no derivation.
    ///
    /// # Errors
    ///
    /// Returns a schema error if `entity` is not declared.
    pub fn record_primary(
        &mut self,
        entity: EntityTypeId,
        meta: Metadata,
        data: &[u8],
    ) -> Result<InstanceId, HistoryError> {
        self.record(entity, meta, Some(data), None)
    }

    /// Records a *derived* instance with its immediate derivation.
    ///
    /// The derivation is type-checked against the schema:
    ///
    /// * the tool instance (if any) must be an instance of the entity's
    ///   constructing tool (or a subtype);
    /// * every input must exist.
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::WrongTool`],
    /// [`HistoryError::UnknownInstance`], or a schema error.
    pub fn record_derived(
        &mut self,
        entity: EntityTypeId,
        meta: Metadata,
        data: &[u8],
        derivation: Derivation,
    ) -> Result<InstanceId, HistoryError> {
        self.record(entity, meta, Some(data), Some(derivation))
    }

    fn record(
        &mut self,
        entity: EntityTypeId,
        mut meta: Metadata,
        data: Option<&[u8]>,
        derivation: Option<Derivation>,
    ) -> Result<InstanceId, HistoryError> {
        if self.schema.get(entity).is_none() {
            return Err(hercules_schema::SchemaError::UnknownEntityId(entity).into());
        }
        if let Some(d) = &derivation {
            for referenced in d.referenced() {
                if referenced.index() >= self.instances.len() {
                    return Err(HistoryError::UnknownInstance(referenced));
                }
            }
            if let Some(tool) = d.tool {
                let tool_entity = self.instances[tool.index()].entity();
                let expected = self.schema.constructing_tool(entity);
                let tool_ok = match expected {
                    Some(expected) => self.schema.is_subtype_of(tool_entity, expected),
                    // Entities without a functional dependency (composites)
                    // must use tool-less derivations; any tool is wrong.
                    None => false,
                };
                if !tool_ok {
                    return Err(HistoryError::WrongTool {
                        entity: self.schema.entity(entity).name().to_owned(),
                        tool: self.schema.entity(tool_entity).name().to_owned(),
                    });
                }
            }
        }
        let id = InstanceId(self.instances.len() as u64);
        meta.created = self.clock.now();
        let blob = data.map(|bytes| self.store.put(bytes));
        if let Some(d) = &derivation {
            for referenced in d.referenced() {
                self.dependents[referenced.index()].push(id);
            }
        }
        self.instances.push(EntityInstance {
            id,
            entity,
            meta,
            data: blob,
            derivation,
        });
        self.dependents.push(Vec::new());
        self.by_entity.entry(entity).or_default().push(id);
        Ok(id)
    }

    /// Returns the instance with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::UnknownInstance`] for out-of-range ids.
    pub fn instance(&self, id: InstanceId) -> Result<&EntityInstance, HistoryError> {
        self.instances
            .get(id.index())
            .ok_or(HistoryError::UnknownInstance(id))
    }

    /// Returns the physical data of an instance, if it has any.
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::UnknownInstance`] for out-of-range ids.
    pub fn data_of(&self, id: InstanceId) -> Result<Option<&[u8]>, HistoryError> {
        let inst = self.instance(id)?;
        Ok(inst.data().and_then(|h| self.store.get(h)))
    }

    /// Iterates over all instances in creation order.
    pub fn instances(&self) -> impl Iterator<Item = &EntityInstance> + '_ {
        self.instances.iter()
    }

    /// Returns the instances of exactly the given entity type, in
    /// creation order.
    pub fn instances_of(&self, entity: EntityTypeId) -> Vec<InstanceId> {
        self.by_entity.get(&entity).cloned().unwrap_or_default()
    }

    /// Returns the instances of the given entity type *or any of its
    /// subtypes* — an abstract `Netlist` browser lists extracted, edited
    /// and optimized netlists alike.
    pub fn instances_of_family(&self, entity: EntityTypeId) -> Vec<InstanceId> {
        let mut ids = self.instances_of(entity);
        for sub in self.schema.all_subtypes(entity) {
            ids.extend(self.instances_of(sub));
        }
        ids.sort();
        ids
    }

    /// Returns the most recently created instance of the entity family,
    /// if any.
    pub fn latest_of_family(&self, entity: EntityTypeId) -> Option<InstanceId> {
        self.instances_of_family(entity)
            .into_iter()
            .max_by_key(|&id| self.instances[id.index()].meta().created)
    }

    /// Returns the instances whose derivations directly reference `id`
    /// (one step of forward chaining).
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::UnknownInstance`] for out-of-range ids.
    pub fn direct_dependents(&self, id: InstanceId) -> Result<&[InstanceId], HistoryError> {
        self.instance(id)?;
        Ok(&self.dependents[id.index()])
    }

    /// Updates an instance's annotation (name, comment, keywords). The
    /// user and timestamp are immutable provenance and cannot be edited.
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::UnknownInstance`] for out-of-range ids.
    pub fn annotate(
        &mut self,
        id: InstanceId,
        name: Option<&str>,
        comment: Option<&str>,
        keywords: Option<&[&str]>,
    ) -> Result<(), HistoryError> {
        self.instance(id)?;
        let meta = &mut self.instances[id.index()].meta;
        if let Some(n) = name {
            meta.name = n.to_owned();
        }
        if let Some(c) = comment {
            meta.comment = c.to_owned();
        }
        if let Some(kws) = keywords {
            meta.keywords = kws.iter().map(|s| (*s).to_owned()).collect();
        }
        Ok(())
    }

    /// Returns the distinct users that have recorded instances, sorted.
    pub fn users(&self) -> Vec<String> {
        let mut users: Vec<String> = self
            .instances
            .iter()
            .map(|i| i.meta().user.clone())
            .collect();
        users.sort();
        users.dedup();
        users
    }

    /// Returns the timestamp of an instance.
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::UnknownInstance`] for out-of-range ids.
    pub fn created_at(&self, id: InstanceId) -> Result<Timestamp, HistoryError> {
        Ok(self.instance(id)?.meta().created)
    }

    /// Checks that an instance's entity belongs to the family of
    /// `expected` (used when binding instances to flow nodes).
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::TypeMismatch`] when it does not.
    pub fn check_type(&self, id: InstanceId, expected: EntityTypeId) -> Result<(), HistoryError> {
        let found = self.instance(id)?.entity();
        if self.schema.is_subtype_of(found, expected) {
            Ok(())
        } else {
            Err(HistoryError::TypeMismatch {
                expected: self.schema.entity(expected).name().to_owned(),
                found: self.schema.entity(found).name().to_owned(),
            })
        }
    }

    /// Returns `true` if the instance is of a tool entity.
    pub fn is_tool_instance(&self, id: InstanceId) -> Result<bool, HistoryError> {
        Ok(self.schema.entity(self.instance(id)?.entity()).kind() == EntityKind::Tool)
    }

    /// Returns the hash a given payload would share storage under —
    /// useful for checking physical-data sharing (footnote 5).
    pub fn blob_hash(bytes: &[u8]) -> BlobHash {
        BlobHash::of(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hercules_schema::fixtures;

    fn db() -> (Arc<TaskSchema>, HistoryDb) {
        let schema = Arc::new(fixtures::fig1());
        let db = HistoryDb::new(schema.clone());
        (schema, db)
    }

    #[test]
    fn record_primary_and_lookup() {
        let (schema, mut db) = db();
        let stim_ty = schema.require("Stimuli").expect("known");
        let id = db
            .record_primary(stim_ty, Metadata::by("jbb").named("step"), b"0 0\n1 5")
            .expect("ok");
        assert_eq!(db.len(), 1);
        let inst = db.instance(id).expect("present");
        assert!(inst.is_primary());
        assert_eq!(inst.entity(), stim_ty);
        assert_eq!(inst.meta().name, "step");
        assert_eq!(db.data_of(id).expect("present"), Some(&b"0 0\n1 5"[..]));
    }

    #[test]
    fn timestamps_increase_monotonically() {
        let (schema, mut db) = db();
        let stim_ty = schema.require("Stimuli").expect("known");
        let a = db
            .record_primary(stim_ty, Metadata::by("a"), b"1")
            .expect("ok");
        let b = db
            .record_primary(stim_ty, Metadata::by("b"), b"2")
            .expect("ok");
        assert!(db
            .created_at(b)
            .expect("ok")
            .is_after(db.created_at(a).expect("ok")));
    }

    #[test]
    fn derived_instance_checks_tool_type() {
        let (schema, mut db) = db();
        let editor_ty = schema.require("CircuitEditor").expect("known");
        let edited_ty = schema.require("EditedNetlist").expect("known");
        let sim_ty = schema.require("Simulator").expect("known");

        let editor = db
            .record_primary(editor_ty, Metadata::by("jbb"), b"sced")
            .expect("ok");
        let sim = db
            .record_primary(sim_ty, Metadata::by("jbb"), b"hspice")
            .expect("ok");

        // Correct tool: accepted.
        let net = db
            .record_derived(
                edited_ty,
                Metadata::by("jbb"),
                b"netlist",
                Derivation::by_tool(editor, []),
            )
            .expect("ok");
        assert!(!db.instance(net).expect("present").is_primary());

        // Wrong tool: a Simulator does not construct EditedNetlists.
        assert!(matches!(
            db.record_derived(
                edited_ty,
                Metadata::by("jbb"),
                b"netlist2",
                Derivation::by_tool(sim, []),
            )
            .unwrap_err(),
            HistoryError::WrongTool { .. }
        ));
    }

    #[test]
    fn derivation_with_unknown_input_is_rejected() {
        let (schema, mut db) = db();
        let edited_ty = schema.require("EditedNetlist").expect("known");
        assert!(matches!(
            db.record_derived(
                edited_ty,
                Metadata::by("jbb"),
                b"x",
                Derivation::by_tool(InstanceId::from_raw(42), []),
            )
            .unwrap_err(),
            HistoryError::UnknownInstance(_)
        ));
    }

    #[test]
    fn composite_uses_toolless_derivation() {
        let (schema, mut db) = db();
        let dm_ty = schema.require("DeviceModels").expect("known");
        let edited_ty = schema.require("EditedNetlist").expect("known");
        let circuit_ty = schema.require("Circuit").expect("known");
        let editor_ty = schema.require("CircuitEditor").expect("known");

        let editor = db
            .record_primary(editor_ty, Metadata::by("u"), b"ed")
            .expect("ok");
        let dm = db
            .record_primary(dm_ty, Metadata::by("u"), b"models")
            .expect("ok");
        let net = db
            .record_derived(
                edited_ty,
                Metadata::by("u"),
                b"net",
                Derivation::by_tool(editor, []),
            )
            .expect("ok");
        let cct = db
            .record_derived(
                circuit_ty,
                Metadata::by("u"),
                b"",
                Derivation::by_composition([dm, net]),
            )
            .expect("ok");
        assert!(db
            .instance(cct)
            .expect("present")
            .derivation()
            .expect("derived")
            .tool
            .is_none());

        // A tool on a composite is rejected.
        assert!(matches!(
            db.record_derived(
                circuit_ty,
                Metadata::by("u"),
                b"",
                Derivation::by_tool(editor, [dm, net]),
            )
            .unwrap_err(),
            HistoryError::WrongTool { .. }
        ));
    }

    #[test]
    fn family_lookup_includes_subtypes() {
        let (schema, mut db) = db();
        let netlist_ty = schema.require("Netlist").expect("known");
        let edited_ty = schema.require("EditedNetlist").expect("known");
        let editor_ty = schema.require("CircuitEditor").expect("known");
        let editor = db
            .record_primary(editor_ty, Metadata::by("u"), b"ed")
            .expect("ok");
        let net = db
            .record_derived(
                edited_ty,
                Metadata::by("u"),
                b"n1",
                Derivation::by_tool(editor, []),
            )
            .expect("ok");
        assert!(db.instances_of(netlist_ty).is_empty());
        assert_eq!(db.instances_of_family(netlist_ty), vec![net]);
        assert_eq!(db.latest_of_family(netlist_ty), Some(net));
    }

    #[test]
    fn dependents_reverse_index() {
        let (schema, mut db) = db();
        let editor_ty = schema.require("CircuitEditor").expect("known");
        let edited_ty = schema.require("EditedNetlist").expect("known");
        let editor = db
            .record_primary(editor_ty, Metadata::by("u"), b"ed")
            .expect("ok");
        let n1 = db
            .record_derived(
                edited_ty,
                Metadata::by("u"),
                b"n1",
                Derivation::by_tool(editor, []),
            )
            .expect("ok");
        let n2 = db
            .record_derived(
                edited_ty,
                Metadata::by("u"),
                b"n2",
                Derivation::by_tool(editor, [n1]),
            )
            .expect("ok");
        assert_eq!(db.direct_dependents(editor).expect("ok"), &[n1, n2]);
        assert_eq!(db.direct_dependents(n1).expect("ok"), &[n2]);
        assert!(db.direct_dependents(n2).expect("ok").is_empty());
    }

    #[test]
    fn annotate_updates_only_annotation_fields() {
        let (schema, mut db) = db();
        let stim_ty = schema.require("Stimuli").expect("known");
        let id = db
            .record_primary(stim_ty, Metadata::by("jbb"), b"s")
            .expect("ok");
        db.annotate(id, Some("ramp"), Some("slow ramp"), Some(&["test"]))
            .expect("ok");
        let m = db.instance(id).expect("present").meta();
        assert_eq!(m.name, "ramp");
        assert_eq!(m.comment, "slow ramp");
        assert_eq!(m.keywords, vec!["test"]);
        assert_eq!(m.user, "jbb", "user is immutable provenance");
    }

    #[test]
    fn shared_payloads_share_blobs() {
        let (schema, mut db) = db();
        let stim_ty = schema.require("Stimuli").expect("known");
        db.record_primary(stim_ty, Metadata::by("a"), b"same bytes")
            .expect("ok");
        db.record_primary(stim_ty, Metadata::by("b"), b"same bytes")
            .expect("ok");
        assert_eq!(db.store().blob_count(), 1, "footnote 5 sharing");
        assert_eq!(db.store().logical_bytes(), 20);
        assert_eq!(db.store().stored_bytes(), 10);
    }

    #[test]
    fn check_type_accepts_subtypes() {
        let (schema, mut db) = db();
        let netlist_ty = schema.require("Netlist").expect("known");
        let edited_ty = schema.require("EditedNetlist").expect("known");
        let editor_ty = schema.require("CircuitEditor").expect("known");
        let editor = db
            .record_primary(editor_ty, Metadata::by("u"), b"ed")
            .expect("ok");
        let net = db
            .record_derived(
                edited_ty,
                Metadata::by("u"),
                b"n",
                Derivation::by_tool(editor, []),
            )
            .expect("ok");
        db.check_type(net, netlist_ty).expect("subtype ok");
        assert!(db.check_type(editor, netlist_ty).is_err());
        assert!(db.is_tool_instance(editor).expect("ok"));
        assert!(!db.is_tool_instance(net).expect("ok"));
    }

    #[test]
    fn users_are_deduplicated_and_sorted() {
        let (schema, mut db) = db();
        let stim_ty = schema.require("Stimuli").expect("known");
        for u in ["sutton", "jbb", "sutton", "director"] {
            db.record_primary(stim_ty, Metadata::by(u), b"s")
                .expect("ok");
        }
        assert_eq!(db.users(), vec!["director", "jbb", "sutton"]);
    }
}
