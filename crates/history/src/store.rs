//! Content-addressed blob store for instance data.
//!
//! Footnote 5 of the paper: "although each instance of an entity
//! (including different versions of the same design) has its own
//! associated meta-data, it may share the actual (physical) data with
//! other instances. For example, several design history instances could
//! point to the same Unix RCS … file." The [`BlobStore`] reproduces this
//! sharing: identical contents hash to the same [`BlobHash`] and are
//! stored once, with a reference count.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Content hash of a stored blob (64-bit FNV-1a over the bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlobHash(u64);

impl BlobHash {
    /// Returns the raw hash value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Hashes a byte string with 64-bit FNV-1a.
    pub fn of(bytes: &[u8]) -> BlobHash {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        BlobHash(h)
    }
}

impl fmt::Display for BlobHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A content-addressed, reference-counted blob store.
///
/// # Examples
///
/// ```
/// use hercules_history::BlobStore;
///
/// let mut store = BlobStore::new();
/// let a = store.put(b"v1 of the netlist");
/// let b = store.put(b"v1 of the netlist"); // shared, not duplicated
/// assert_eq!(a, b);
/// assert_eq!(store.blob_count(), 1);
/// assert_eq!(store.refcount(a), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlobStore {
    blobs: HashMap<u64, (Vec<u8>, usize)>,
    stored_bytes: u64,
    logical_bytes: u64,
}

impl BlobStore {
    /// Creates an empty store.
    pub fn new() -> BlobStore {
        BlobStore::default()
    }

    /// Stores `bytes`, sharing storage with identical prior content.
    /// Returns the content hash; each call adds one reference.
    pub fn put(&mut self, bytes: &[u8]) -> BlobHash {
        let hash = BlobHash::of(bytes);
        self.logical_bytes += bytes.len() as u64;
        let entry = self.blobs.entry(hash.0).or_insert_with(|| {
            self.stored_bytes += bytes.len() as u64;
            (bytes.to_vec(), 0)
        });
        entry.1 += 1;
        hash
    }

    /// Returns the bytes stored under `hash`, if present.
    pub fn get(&self, hash: BlobHash) -> Option<&[u8]> {
        self.blobs.get(&hash.0).map(|(b, _)| b.as_slice())
    }

    /// Drops one reference; removes the blob when the count reaches
    /// zero. Returns the remaining reference count, or `None` if the
    /// hash was unknown.
    pub fn release(&mut self, hash: BlobHash) -> Option<usize> {
        let (bytes_len, remaining) = {
            let entry = self.blobs.get_mut(&hash.0)?;
            entry.1 -= 1;
            (entry.0.len() as u64, entry.1)
        };
        if remaining == 0 {
            self.blobs.remove(&hash.0);
            self.stored_bytes -= bytes_len;
        }
        Some(remaining)
    }

    /// Returns the reference count of a blob (0 if unknown).
    pub fn refcount(&self, hash: BlobHash) -> usize {
        self.blobs.get(&hash.0).map_or(0, |(_, c)| *c)
    }

    /// Returns the number of distinct blobs stored.
    pub fn blob_count(&self) -> usize {
        self.blobs.len()
    }

    /// Returns `true` if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }

    /// Returns the bytes physically stored (after sharing).
    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes
    }

    /// Returns the bytes that *would* be stored without sharing; the
    /// difference quantifies footnote 5's saving.
    pub fn logical_bytes(&self) -> u64 {
        self.logical_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_content_is_shared() {
        let mut s = BlobStore::new();
        let a = s.put(b"hello");
        let b = s.put(b"hello");
        let c = s.put(b"world");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(s.blob_count(), 2);
        assert_eq!(s.refcount(a), 2);
        assert_eq!(s.stored_bytes(), 10);
        assert_eq!(s.logical_bytes(), 15);
    }

    #[test]
    fn get_returns_content() {
        let mut s = BlobStore::new();
        let h = s.put(b"netlist v1");
        assert_eq!(s.get(h), Some(&b"netlist v1"[..]));
        assert_eq!(s.get(BlobHash::of(b"missing")), None);
    }

    #[test]
    fn release_frees_at_zero() {
        let mut s = BlobStore::new();
        let h = s.put(b"data");
        s.put(b"data");
        assert_eq!(s.release(h), Some(1));
        assert_eq!(s.blob_count(), 1);
        assert_eq!(s.release(h), Some(0));
        assert!(s.is_empty());
        assert_eq!(s.stored_bytes(), 0);
        assert_eq!(s.release(h), None);
    }

    #[test]
    fn fnv_matches_known_vector() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(BlobHash::of(b"").raw(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn display_is_hex() {
        let h = BlobHash::of(b"");
        assert_eq!(h.to_string(), "cbf29ce484222325");
    }
}
