//! Entity instances and their meta-data.
//!
//! §4.1: "meta-data such as user-id and creation time-stamp are
//! recorded. The user is also able to annotate entity instances
//! providing both a name and a more detailed textual description … An
//! instance's most important meta-data is its design history which
//! records the entity instances used to create that instance."

use std::fmt;

use hercules_schema::EntityTypeId;
use serde::{Deserialize, Serialize};

use crate::clock::Timestamp;
use crate::derivation::Derivation;
use crate::store::BlobHash;

/// Identifier of an entity instance in one [`HistoryDb`].
///
/// [`HistoryDb`]: crate::HistoryDb
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstanceId(pub(crate) u64);

impl InstanceId {
    /// Returns the raw id value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Creates an id from a raw value (deserialization and tests).
    pub fn from_raw(raw: u64) -> InstanceId {
        InstanceId(raw)
    }

    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// User-visible meta-data attached to every instance (Fig. 9's browser
/// columns: user, date, name/comment — plus keywords for its keyword
/// filter).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Metadata {
    /// User-id of the creator (`jbb`, `director`, `sutton` in Fig. 9).
    pub user: String,
    /// Logical creation time.
    pub created: Timestamp,
    /// Short annotation name ("Low pass filter").
    pub name: String,
    /// Longer textual description.
    pub comment: String,
    /// Keywords for browser filtering.
    pub keywords: Vec<String>,
}

impl Metadata {
    /// Creates metadata with just a user; the database fills the
    /// timestamp at record time.
    pub fn by(user: &str) -> Metadata {
        Metadata {
            user: user.to_owned(),
            ..Metadata::default()
        }
    }

    /// Sets the annotation name.
    pub fn named(mut self, name: &str) -> Metadata {
        self.name = name.to_owned();
        self
    }

    /// Sets the comment.
    pub fn commented(mut self, comment: &str) -> Metadata {
        self.comment = comment.to_owned();
        self
    }

    /// Adds a keyword.
    pub fn keyword(mut self, kw: &str) -> Metadata {
        self.keywords.push(kw.to_owned());
        self
    }
}

/// One design object: an instance of a schema entity type, with its
/// meta-data and (for derived objects) the *immediate* derivation that
/// created it.
///
/// Storing only the immediate tool and inputs is the paper's key storage
/// claim (§1): "by associating a small amount of meta-data with each
/// design object, indicating the immediate tool and data used in
/// creating that object, the complete derivation history of a design may
/// be stored."
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntityInstance {
    pub(crate) id: InstanceId,
    pub(crate) entity: EntityTypeId,
    pub(crate) meta: Metadata,
    /// Content hash of the physical data in the blob store; instances
    /// may share one blob (footnote 5's shared RCS files).
    pub(crate) data: Option<BlobHash>,
    pub(crate) derivation: Option<Derivation>,
}

impl EntityInstance {
    /// Returns the instance id.
    pub fn id(&self) -> InstanceId {
        self.id
    }

    /// Returns the entity type this instance belongs to.
    pub fn entity(&self) -> EntityTypeId {
        self.entity
    }

    /// Returns the user-visible meta-data.
    pub fn meta(&self) -> &Metadata {
        &self.meta
    }

    /// Returns the content hash of the instance's physical data, if it
    /// has any (tool instances, for example, may be pure references).
    pub fn data(&self) -> Option<BlobHash> {
        self.data
    }

    /// Returns the immediate derivation, or `None` for primary
    /// (imported) instances.
    pub fn derivation(&self) -> Option<&Derivation> {
        self.derivation.as_ref()
    }

    /// Returns `true` if this instance was imported rather than derived.
    pub fn is_primary(&self) -> bool {
        self.derivation.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_builder() {
        let m = Metadata::by("sutton")
            .named("Operational Amplifier")
            .commented("two-stage")
            .keyword("analog")
            .keyword("opamp");
        assert_eq!(m.user, "sutton");
        assert_eq!(m.name, "Operational Amplifier");
        assert_eq!(m.comment, "two-stage");
        assert_eq!(m.keywords, vec!["analog", "opamp"]);
        assert_eq!(m.created, Timestamp(0));
    }

    #[test]
    fn instance_id_round_trips() {
        let id = InstanceId::from_raw(9);
        assert_eq!(id.raw(), 9);
        assert_eq!(id.to_string(), "i9");
    }
}
