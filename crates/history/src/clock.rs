//! Deterministic logical time for instance metadata.
//!
//! The paper's browser filters instances by creation date (Fig. 9's
//! "Date Limits: From 10/1/1992 To 10/31/1992"). For reproducibility the
//! history database stamps instances from a monotonically increasing
//! *logical clock* rather than wall time; a [`Timestamp`] is an opaque
//! tick that tests and benchmarks can partition into "days" however they
//! like.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A logical creation time. Higher is later.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Returns the raw tick value.
    pub fn tick(self) -> u64 {
        self.0
    }

    /// Returns `true` if `self` is strictly later than `other`.
    pub fn is_after(self, other: Timestamp) -> bool {
        self.0 > other.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The database's monotone clock.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogicalClock {
    next: u64,
}

impl LogicalClock {
    /// Creates a clock starting at tick 0.
    pub fn new() -> LogicalClock {
        LogicalClock::default()
    }

    /// Returns the next timestamp and advances the clock.
    pub fn now(&mut self) -> Timestamp {
        let t = Timestamp(self.next);
        self.next += 1;
        t
    }

    /// Returns the timestamp the next call to [`LogicalClock::now`] will
    /// produce, without advancing.
    pub fn peek(&self) -> Timestamp {
        Timestamp(self.next)
    }

    /// Advances the clock so the next timestamp is at least `to`. Useful
    /// for simulating gaps ("a day later").
    pub fn advance_to(&mut self, to: Timestamp) {
        self.next = self.next.max(to.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let mut c = LogicalClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b.is_after(a));
        assert!(!a.is_after(b));
        assert!(!a.is_after(a));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut c = LogicalClock::new();
        assert_eq!(c.peek(), c.peek());
        let t = c.now();
        assert_eq!(t, Timestamp(0));
    }

    #[test]
    fn advance_to_skips_forward_but_never_back() {
        let mut c = LogicalClock::new();
        c.advance_to(Timestamp(100));
        assert_eq!(c.now(), Timestamp(100));
        c.advance_to(Timestamp(5));
        assert_eq!(c.now(), Timestamp(101));
    }

    #[test]
    fn display() {
        assert_eq!(Timestamp(7).to_string(), "t7");
    }
}
