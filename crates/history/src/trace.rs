//! Flow traces: the design history rendered as a task graph
//! (§4.2, Fig. 11b).
//!
//! "Our representation — a flow trace — is a semantically richer
//! superset of a version tree, not only showing the relationship between
//! the data, but also showing the tools that were used in creating that
//! data. A flow trace has the same form as a task graph and can be built
//! up using the forward- and backward-chaining approaches."

use std::collections::HashMap;

use hercules_flow::{NodeId, TaskGraph};
use hercules_schema::DepKind;

use crate::db::HistoryDb;
use crate::error::HistoryError;
use crate::instance::InstanceId;
use crate::version::VersionForest;

/// A flow trace: the derivation closure of a set of instances, in task-
/// graph form, with the node ↔ instance correspondence retained.
///
/// Because a trace *is* a task graph, it can be stored in the flow
/// catalog, used as a query template, or re-executed — "previously
/// executed tasks to be recalled, possibly modified, and executed"
/// (§4.1).
#[derive(Debug, Clone)]
pub struct FlowTrace {
    graph: TaskGraph,
    node_of: HashMap<InstanceId, NodeId>,
    instance_of: HashMap<NodeId, InstanceId>,
}

impl FlowTrace {
    /// Builds the trace of everything that led to `roots` (backward
    /// chaining), merged into one task graph. Shared ancestors become
    /// shared nodes, exactly as Fig. 5 reuses entities.
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::UnknownInstance`] for out-of-range roots.
    pub fn backward(db: &HistoryDb, roots: &[InstanceId]) -> Result<FlowTrace, HistoryError> {
        let mut members: Vec<InstanceId> = Vec::new();
        for &r in roots {
            db.instance(r)?;
            if !members.contains(&r) {
                members.push(r);
            }
            for a in db.ancestors(r)? {
                if !members.contains(&a) {
                    members.push(a);
                }
            }
        }
        members.sort();
        FlowTrace::over(db, &members)
    }

    /// Builds the trace of everything derived from `root` (forward
    /// chaining), including `root` itself and, for each dependent, its
    /// immediate tool so the graph stays well-formed.
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::UnknownInstance`] for out-of-range roots.
    pub fn forward(db: &HistoryDb, root: InstanceId) -> Result<FlowTrace, HistoryError> {
        let mut members = vec![root];
        members.extend(db.forward_chain(root)?);
        // Pull in the tools of member derivations so functional edges
        // have sources.
        let mut extra = Vec::new();
        for &m in &members {
            if let Some(d) = db.instance(m)?.derivation() {
                if let Some(t) = d.tool {
                    if !members.contains(&t) && !extra.contains(&t) {
                        extra.push(t);
                    }
                }
            }
        }
        members.extend(extra);
        members.sort();
        members.dedup();
        FlowTrace::over(db, &members)
    }

    /// Builds a trace over exactly `members`: one node per instance,
    /// edges for every derivation reference whose endpoints are both
    /// members.
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::UnknownInstance`] for out-of-range
    /// members.
    pub fn over(db: &HistoryDb, members: &[InstanceId]) -> Result<FlowTrace, HistoryError> {
        let mut graph = TaskGraph::new(db.schema().clone());
        let mut node_of = HashMap::new();
        let mut instance_of = HashMap::new();
        for &m in members {
            let inst = db.instance(m)?;
            let node = graph.add_node_raw(inst.entity())?;
            node_of.insert(m, node);
            instance_of.insert(node, m);
        }
        for &m in members {
            let inst = db.instance(m)?;
            let Some(d) = inst.derivation() else { continue };
            let target = node_of[&m];
            if let Some(tool) = d.tool {
                if let Some(&src) = node_of.get(&tool) {
                    graph.add_edge_raw(src, target, DepKind::Functional)?;
                }
            }
            for &input in &d.inputs {
                if let Some(&src) = node_of.get(&input) {
                    graph.add_edge_raw(src, target, DepKind::Data)?;
                }
            }
        }
        Ok(FlowTrace {
            graph,
            node_of,
            instance_of,
        })
    }

    /// Returns the trace as a task graph.
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// Consumes the trace, yielding the task graph (for catalog storage
    /// or re-execution).
    pub fn into_graph(self) -> TaskGraph {
        self.graph
    }

    /// Returns the node representing `instance`, if it is in the trace.
    pub fn node_of(&self, instance: InstanceId) -> Option<NodeId> {
        self.node_of.get(&instance).copied()
    }

    /// Returns the instance represented by `node`, if any.
    pub fn instance_of(&self, node: NodeId) -> Option<InstanceId> {
        self.instance_of.get(&node).copied()
    }

    /// Returns the number of instances in the trace.
    pub fn len(&self) -> usize {
        self.node_of.len()
    }

    /// Returns `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.node_of.is_empty()
    }

    /// Projects the trace onto the version forest of an entity family —
    /// the demonstration that "a flow trace is a semantically richer
    /// superset of a version tree": dropping the tools and the
    /// cross-family data edges yields exactly Fig. 11a from Fig. 11b.
    ///
    /// # Errors
    ///
    /// Returns a schema error for unknown entities.
    pub fn to_version_forest(
        &self,
        db: &HistoryDb,
        entity: hercules_schema::EntityTypeId,
    ) -> Result<VersionForest, HistoryError> {
        db.version_forest(entity)
    }

    /// Renders the trace with instance annotations: each node shows the
    /// entity type and the instance name (the inverse-video icons of
    /// Fig. 10).
    pub fn to_text(&self, db: &HistoryDb) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut nodes: Vec<(&NodeId, &InstanceId)> = self.instance_of.iter().collect();
        nodes.sort();
        for (node, inst) in nodes {
            let i = db.instance(*inst).expect("trace member exists");
            let entity = db.schema().entity(i.entity()).name();
            let name = if i.meta().name.is_empty() {
                inst.to_string()
            } else {
                i.meta().name.clone()
            };
            let _ = write!(out, "[{entity} \"{name}\"]");
            let mut produced_by = Vec::new();
            if let Some(d) = i.derivation() {
                if let Some(t) = d.tool {
                    if let Some(tn) = self.node_of(t) {
                        produced_by.push(format!("f:{tn}"));
                    }
                }
                for &input in &d.inputs {
                    if let Some(inn) = self.node_of(input) {
                        produced_by.push(format!("d:{inn}"));
                    }
                }
            }
            if produced_by.is_empty() {
                let _ = writeln!(out, " ({node}, primary)");
            } else {
                let _ = writeln!(out, " ({node} <- {})", produced_by.join(" "));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derivation::Derivation;
    use crate::instance::Metadata;
    use hercules_schema::fixtures;
    use std::sync::Arc;

    fn sample() -> (HistoryDb, Vec<InstanceId>) {
        let schema = Arc::new(fixtures::fig1());
        let mut db = HistoryDb::new(schema.clone());
        let t = |n: &str| schema.require(n).expect("known");
        let editor = db
            .record_primary(t("CircuitEditor"), Metadata::by("u").named("sced"), b"ed")
            .expect("ok");
        let n1 = db
            .record_derived(
                t("EditedNetlist"),
                Metadata::by("u").named("v1"),
                b"n1",
                Derivation::by_tool(editor, []),
            )
            .expect("ok");
        let n2 = db
            .record_derived(
                t("EditedNetlist"),
                Metadata::by("u").named("v2"),
                b"n2",
                Derivation::by_tool(editor, [n1]),
            )
            .expect("ok");
        (db, vec![editor, n1, n2])
    }

    #[test]
    fn backward_trace_contains_closure() {
        let (db, ids) = sample();
        let trace = FlowTrace::backward(&db, &[ids[2]]).expect("ok");
        assert_eq!(trace.len(), 3);
        let g = trace.graph();
        assert_eq!(g.edge_count(), 3, "two f edges + one d edge");
        g.validate().expect("trace is a valid task graph");
        // Node/instance mappings are mutual inverses.
        for &i in &ids {
            let n = trace.node_of(i).expect("member");
            assert_eq!(trace.instance_of(n), Some(i));
        }
    }

    #[test]
    fn forward_trace_includes_tools_of_dependents() {
        let (db, ids) = sample();
        let trace = FlowTrace::forward(&db, ids[1]).expect("ok");
        // n1 itself, n2, plus the editor pulled in as n2's tool.
        assert_eq!(trace.len(), 3);
        assert!(trace.node_of(ids[0]).is_some());
    }

    #[test]
    fn trace_is_reusable_as_task_graph() {
        let (db, ids) = sample();
        let trace = FlowTrace::backward(&db, &[ids[2]]).expect("ok");
        let graph = trace.into_graph();
        // The trace validates and can be stored in a catalog.
        let mut catalog = hercules_flow::FlowCatalog::new();
        catalog.store("recalled", &graph, "recalled from history", "u");
        let again = catalog
            .instantiate("recalled", db.schema().clone())
            .expect("stored");
        assert_eq!(again.len(), 3);
    }

    #[test]
    fn trace_text_shows_tools_and_versions() {
        let (db, _) = sample();
        let all: Vec<InstanceId> = db.instances().map(|i| i.id()).collect();
        let trace = FlowTrace::over(&db, &all).expect("ok");
        let text = trace.to_text(&db);
        assert!(text.contains("[CircuitEditor \"sced\"]"));
        assert!(text.contains("[EditedNetlist \"v2\"]"));
        assert!(text.contains("primary"));
        assert!(text.contains("f:"), "tools appear, unlike a version tree");
        assert!(text.contains("d:"), "version arcs appear");
    }

    #[test]
    fn superset_claim_version_forest_is_a_projection() {
        let (db, ids) = sample();
        let trace = FlowTrace::backward(&db, &[ids[2]]).expect("ok");
        let schema = db.schema().clone();
        let forest = trace
            .to_version_forest(&db, schema.require("Netlist").expect("known"))
            .expect("ok");
        // The version forest has exactly the data instances, no tools.
        assert_eq!(forest.members(), &[ids[1], ids[2]]);
        assert_eq!(forest.parent(ids[2]), Some(ids[1]));
        // The trace has strictly more information (the editor node).
        assert!(trace.len() > forest.members().len());
    }

    #[test]
    fn empty_trace() {
        let (db, _) = sample();
        let trace = FlowTrace::over(&db, &[]).expect("ok");
        assert!(trace.is_empty());
        assert_eq!(trace.len(), 0);
    }
}
