//! Version trees derived from the design history (§4.2, Fig. 11a).
//!
//! The paper's claim: a separate version-management subsystem is
//! unnecessary because "versioning is closely associated with editing
//! tasks which, in a task schema, are characterized by having a data
//! dependency whose source and target are of the same entity type". A
//! traditional version tree is therefore a *projection* of the design
//! history: keep only the instances of one entity family and the
//! edit-derivation arcs between them.

use std::collections::HashMap;

use hercules_schema::EntityTypeId;

use crate::db::HistoryDb;
use crate::error::HistoryError;
use crate::instance::InstanceId;

/// A version forest of one entity family: parents, children and roots
/// reconstructed from edit derivations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionForest {
    entity: EntityTypeId,
    /// Version predecessor of each instance, if any.
    parent: HashMap<InstanceId, InstanceId>,
    /// Version successors of each instance.
    children: HashMap<InstanceId, Vec<InstanceId>>,
    roots: Vec<InstanceId>,
    members: Vec<InstanceId>,
}

impl VersionForest {
    /// Returns the entity family this forest covers.
    pub fn entity(&self) -> EntityTypeId {
        self.entity
    }

    /// Returns the root versions (instances with no version
    /// predecessor), in creation order.
    pub fn roots(&self) -> &[InstanceId] {
        &self.roots
    }

    /// Returns every member instance, in creation order.
    pub fn members(&self) -> &[InstanceId] {
        &self.members
    }

    /// Returns the version predecessor of `id`, if any.
    pub fn parent(&self, id: InstanceId) -> Option<InstanceId> {
        self.parent.get(&id).copied()
    }

    /// Returns the direct version successors of `id`.
    pub fn children(&self, id: InstanceId) -> &[InstanceId] {
        self.children.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Returns every transitive version successor of `id`.
    pub fn descendants(&self, id: InstanceId) -> Vec<InstanceId> {
        let mut out = Vec::new();
        let mut stack: Vec<InstanceId> = self.children(id).to_vec();
        while let Some(next) = stack.pop() {
            out.push(next);
            stack.extend_from_slice(self.children(next));
        }
        out.sort();
        out
    }

    /// Returns the version-tree depth of `id` (roots are depth 0).
    pub fn depth(&self, id: InstanceId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Renders the forest as an indented text tree, one root per block
    /// (the Fig. 11a picture).
    pub fn to_text(&self, db: &HistoryDb) -> String {
        let mut out = String::new();
        for &root in &self.roots {
            self.render(db, root, 0, &mut out);
        }
        out
    }

    fn render(&self, db: &HistoryDb, id: InstanceId, indent: usize, out: &mut String) {
        use std::fmt::Write as _;
        let name = db
            .instance(id)
            .map(|i| {
                if i.meta().name.is_empty() {
                    id.to_string()
                } else {
                    i.meta().name.clone()
                }
            })
            .unwrap_or_else(|_| id.to_string());
        let _ = writeln!(out, "{}{name}", "  ".repeat(indent));
        for &c in self.children(id) {
            self.render(db, c, indent + 1, out);
        }
    }
}

impl HistoryDb {
    /// Returns the version predecessor of `id`: the input of its
    /// derivation that belongs to the same entity family (the paper's
    /// edit-task signature), if any.
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::UnknownInstance`] for out-of-range ids.
    pub fn version_parent(&self, id: InstanceId) -> Result<Option<InstanceId>, HistoryError> {
        let inst = self.instance(id)?;
        let family = self.family_root(inst.entity());
        let Some(d) = inst.derivation() else {
            return Ok(None);
        };
        for &input in &d.inputs {
            let input_entity = self.instance(input)?.entity();
            if self.family_root(input_entity) == family {
                return Ok(Some(input));
            }
        }
        Ok(None)
    }

    /// Returns the topmost supertype of `entity` (its family root).
    pub fn family_root(&self, entity: EntityTypeId) -> EntityTypeId {
        self.schema()
            .supertype_chain(entity)
            .last()
            .copied()
            .unwrap_or(entity)
    }

    /// Builds the version forest of an entity family (Fig. 11a): the
    /// projection of the design history onto same-family edit
    /// derivations.
    ///
    /// # Errors
    ///
    /// Returns a schema error for unknown entities.
    pub fn version_forest(&self, entity: EntityTypeId) -> Result<VersionForest, HistoryError> {
        if self.schema().get(entity).is_none() {
            return Err(hercules_schema::SchemaError::UnknownEntityId(entity).into());
        }
        let root_entity = self.family_root(entity);
        let members = self.instances_of_family(root_entity);
        let mut parent = HashMap::new();
        let mut children: HashMap<InstanceId, Vec<InstanceId>> = HashMap::new();
        let mut roots = Vec::new();
        for &m in &members {
            match self.version_parent(m)? {
                Some(p) => {
                    parent.insert(m, p);
                    children.entry(p).or_default().push(m);
                }
                None => roots.push(m),
            }
        }
        Ok(VersionForest {
            entity: root_entity,
            parent,
            children,
            roots,
            members,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derivation::Derivation;
    use crate::instance::Metadata;
    use hercules_schema::fixtures;
    use std::sync::Arc;

    /// The Fig. 11 scenario: circuit-editor edits producing
    /// c1 -> c2 -> {c3 (direct child), c4 -> c5}; plus an unrelated root.
    fn fig11_db() -> (HistoryDb, Vec<InstanceId>) {
        let schema = Arc::new(fixtures::fig1());
        let mut db = HistoryDb::new(schema.clone());
        let t = |n: &str| schema.require(n).expect("known");
        let editor = db
            .record_primary(t("CircuitEditor"), Metadata::by("u"), b"ed")
            .expect("ok");
        let edit = |db: &mut HistoryDb, name: &str, from: Option<InstanceId>| {
            db.record_derived(
                t("EditedNetlist"),
                Metadata::by("u").named(name),
                name.as_bytes(),
                Derivation::by_tool(editor, from),
            )
            .expect("ok")
        };
        let c1 = edit(&mut db, "c1", None);
        let c2 = edit(&mut db, "c2", Some(c1));
        let c3 = edit(&mut db, "c3", Some(c2));
        let c4 = edit(&mut db, "c4", Some(c2));
        let c5 = edit(&mut db, "c5", Some(c4));
        let other = edit(&mut db, "other", None);
        (db, vec![editor, c1, c2, c3, c4, c5, other])
    }

    #[test]
    fn version_parent_follows_edit_inputs() {
        let (db, ids) = fig11_db();
        assert_eq!(db.version_parent(ids[1]).expect("ok"), None);
        assert_eq!(db.version_parent(ids[2]).expect("ok"), Some(ids[1]));
        assert_eq!(db.version_parent(ids[5]).expect("ok"), Some(ids[4]));
    }

    #[test]
    fn forest_matches_fig11a() {
        let (db, ids) = fig11_db();
        let schema = db.schema().clone();
        let forest = db
            .version_forest(schema.require("EditedNetlist").expect("known"))
            .expect("ok");
        // Two roots: c1 and the unrelated netlist.
        assert_eq!(forest.roots(), &[ids[1], ids[6]]);
        assert_eq!(forest.children(ids[2]), &[ids[3], ids[4]]);
        assert_eq!(forest.parent(ids[4]), Some(ids[2]));
        assert_eq!(
            forest.descendants(ids[1]),
            vec![ids[2], ids[3], ids[4], ids[5]]
        );
        assert_eq!(forest.depth(ids[5]), 3);
        assert_eq!(forest.members().len(), 6);
    }

    #[test]
    fn forest_is_family_wide() {
        // Asking for the forest of the abstract Netlist gives the same
        // result as asking via the subtype.
        let (db, _) = fig11_db();
        let schema = db.schema().clone();
        let via_sub = db
            .version_forest(schema.require("EditedNetlist").expect("known"))
            .expect("ok");
        let via_root = db
            .version_forest(schema.require("Netlist").expect("known"))
            .expect("ok");
        assert_eq!(via_sub, via_root);
    }

    #[test]
    fn text_rendering_indents_by_depth() {
        let (db, _) = fig11_db();
        let schema = db.schema().clone();
        let forest = db
            .version_forest(schema.require("Netlist").expect("known"))
            .expect("ok");
        let text = forest.to_text(&db);
        assert!(text.contains("c1\n"));
        assert!(text.contains("  c2\n"));
        assert!(text.contains("    c3\n"));
        assert!(text.contains("      c5\n"));
        assert!(text.contains("other\n"));
    }
}
