//! Design-consistency maintenance (§3.3).
//!
//! "Design consistency maintenance (i.e., automatic retracing of a flow
//! to update derived design data) is readily supported through the
//! storage of the design history. Queries into the design history can
//! quickly determine whether such retracing need occur."
//!
//! An instance is *out of date* when some input of its derivation has a
//! newer version (a successor in its family's version forest). The
//! functions here detect staleness; the execution engine's retrace uses
//! them to recompute only what is affected.

use std::fmt;

use crate::db::HistoryDb;
use crate::error::HistoryError;
use crate::instance::InstanceId;

/// Why an instance was reported stale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Staleness {
    /// The out-of-date derived instance.
    pub instance: InstanceId,
    /// The input that has been superseded.
    pub outdated_input: InstanceId,
    /// The newest version superseding that input.
    pub newer_version: InstanceId,
}

impl fmt::Display for Staleness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "instance {} is out of date: input {} has been superseded by {}",
            self.instance, self.outdated_input, self.newer_version
        )
    }
}

impl HistoryDb {
    /// Returns the newest version in the version subtree rooted at `id`
    /// (i.e. `id` itself if nothing supersedes it).
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::UnknownInstance`] for out-of-range ids.
    pub fn newest_version_of(&self, id: InstanceId) -> Result<InstanceId, HistoryError> {
        let entity = self.instance(id)?.entity();
        let forest = self.version_forest(entity)?;
        let mut best = id;
        for d in forest.descendants(id) {
            if self.created_at(d)?.is_after(self.created_at(best)?) {
                best = d;
            }
        }
        Ok(best)
    }

    /// Checks whether `id` is out of date: does any input of its
    /// derivation have a version successor? Returns the first staleness
    /// found, or `None` if the instance is current (or primary).
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::UnknownInstance`] for out-of-range ids.
    pub fn staleness_of(&self, id: InstanceId) -> Result<Option<Staleness>, HistoryError> {
        let inst = self.instance(id)?;
        let Some(d) = inst.derivation() else {
            return Ok(None);
        };
        // The version predecessor is exempt: an edit is not "stale" with
        // respect to the version it edits — it *is* the newer version.
        let version_parent = self.version_parent(id)?;
        for &input in &d.inputs {
            if Some(input) == version_parent {
                continue;
            }
            let newest = self.newest_version_of(input)?;
            if newest != input {
                return Ok(Some(Staleness {
                    instance: id,
                    outdated_input: input,
                    newer_version: newest,
                }));
            }
        }
        Ok(None)
    }

    /// Returns `true` if `id` is up to date with respect to its inputs.
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::UnknownInstance`] for out-of-range ids.
    pub fn is_up_to_date(&self, id: InstanceId) -> Result<bool, HistoryError> {
        Ok(self.staleness_of(id)?.is_none())
    }

    /// Scans the whole database for stale derived instances, in id
    /// order. This answers "does any retracing need occur?" across a
    /// design.
    ///
    /// # Errors
    ///
    /// Propagates lookup errors (none occur on a well-formed database).
    pub fn stale_instances(&self) -> Result<Vec<Staleness>, HistoryError> {
        let mut out = Vec::new();
        for inst in self.instances() {
            if let Some(s) = self.staleness_of(inst.id())? {
                out.push(s);
            }
        }
        Ok(out)
    }

    /// Determines whether a derived result for (`entity`, `tool`,
    /// `inputs`) already exists *and is current*: the cached-result check
    /// behind "a query such as 'find the netlist that was extracted from
    /// this layout' could determine whether such an extraction had yet
    /// been performed, or whether the extracted netlist was out-of-date
    /// with respect to the layout" (§3.3).
    ///
    /// Returns `Some(instance)` when a current cached result exists.
    pub fn current_cached(
        &self,
        entity: hercules_schema::EntityTypeId,
        tool: Option<InstanceId>,
        inputs: &[InstanceId],
    ) -> Option<InstanceId> {
        let cached = self.find_cached(entity, tool, inputs)?;
        match self.is_up_to_date(cached) {
            Ok(true) => Some(cached),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derivation::Derivation;
    use crate::instance::Metadata;
    use hercules_schema::fixtures;
    use std::sync::Arc;

    /// layout L1 --extract--> X1; then L1 is edited into L2.
    fn extraction_db() -> (HistoryDb, Vec<InstanceId>) {
        let schema = Arc::new(fixtures::fig1());
        let mut db = HistoryDb::new(schema.clone());
        let t = |n: &str| schema.require(n).expect("known");
        let placer = db
            .record_primary(t("Placer"), Metadata::by("u"), b"placer")
            .expect("ok");
        let extractor = db
            .record_primary(t("Extractor"), Metadata::by("u"), b"ext")
            .expect("ok");
        let editor = db
            .record_primary(t("CircuitEditor"), Metadata::by("u"), b"ed")
            .expect("ok");
        let net = db
            .record_derived(
                t("EditedNetlist"),
                Metadata::by("u"),
                b"net",
                Derivation::by_tool(editor, []),
            )
            .expect("ok");
        let rules = db
            .record_primary(t("PlacementRules"), Metadata::by("u"), b"rules")
            .expect("ok");
        let l1 = db
            .record_derived(
                t("Layout"),
                Metadata::by("u").named("L1"),
                b"l1",
                Derivation::by_tool(placer, [net, rules]),
            )
            .expect("ok");
        let x1 = db
            .record_derived(
                t("ExtractedNetlist"),
                Metadata::by("u").named("X1"),
                b"x1",
                Derivation::by_tool(extractor, [l1]),
            )
            .expect("ok");
        (db, vec![placer, extractor, editor, net, rules, l1, x1])
    }

    #[test]
    fn fresh_extraction_is_up_to_date() {
        let (db, ids) = extraction_db();
        let x1 = ids[6];
        assert!(db.is_up_to_date(x1).expect("ok"));
        assert!(db.stale_instances().expect("ok").is_empty());
    }

    #[test]
    fn editing_the_layout_invalidates_the_extraction() {
        let (mut db, ids) = extraction_db();
        let (placer, net, rules, l1, x1) = (ids[0], ids[3], ids[4], ids[5], ids[6]);
        // A new layout version derived from L1 (re-placement using L1 as
        // version predecessor would need an edit-style arc; model it as
        // a placer run consuming the old layout is not in the schema, so
        // instead edit the *netlist* which is the layout's input).
        let _ = (placer, net, rules);
        // Re-edit the netlist: net2 supersedes net.
        let editor = ids[2];
        let net2 = db
            .record_derived(
                db.schema().require("EditedNetlist").expect("known"),
                Metadata::by("u"),
                b"net2",
                Derivation::by_tool(editor, [net]),
            )
            .expect("ok");
        // The layout is now out of date w.r.t. its netlist input; the
        // extraction is still up to date w.r.t. the (old) layout.
        let stale = db.staleness_of(l1).expect("ok").expect("stale");
        assert_eq!(stale.outdated_input, net);
        assert_eq!(stale.newer_version, net2);
        assert!(db.is_up_to_date(x1).expect("ok"));
        assert_eq!(db.stale_instances().expect("ok").len(), 1);
    }

    #[test]
    fn newest_version_follows_the_longest_chain() {
        let (mut db, ids) = extraction_db();
        let editor = ids[2];
        let net = ids[3];
        let edited_ty = db.schema().require("EditedNetlist").expect("known");
        let net2 = db
            .record_derived(
                edited_ty,
                Metadata::by("u"),
                b"net2",
                Derivation::by_tool(editor, [net]),
            )
            .expect("ok");
        let net3 = db
            .record_derived(
                edited_ty,
                Metadata::by("u"),
                b"net3",
                Derivation::by_tool(editor, [net2]),
            )
            .expect("ok");
        assert_eq!(db.newest_version_of(net).expect("ok"), net3);
        assert_eq!(db.newest_version_of(net3).expect("ok"), net3);
    }

    #[test]
    fn current_cached_rejects_stale_results() {
        let (mut db, ids) = extraction_db();
        let (extractor, editor, net, l1, x1) = (ids[1], ids[2], ids[3], ids[5], ids[6]);
        let ext_ty = db.schema().require("ExtractedNetlist").expect("known");
        assert_eq!(
            db.current_cached(ext_ty, Some(extractor), &[l1]),
            Some(x1),
            "fresh cache hit"
        );

        // Make the layout stale by editing its netlist input...
        let net2 = db
            .record_derived(
                db.schema().require("EditedNetlist").expect("known"),
                Metadata::by("u"),
                b"net2",
                Derivation::by_tool(editor, [net]),
            )
            .expect("ok");
        let _ = net2;
        // ...x1's direct input (the layout) has no newer version, so the
        // extraction itself is still current.
        assert_eq!(db.current_cached(ext_ty, Some(extractor), &[l1]), Some(x1));
        // But a *fabricated* newer layout version invalidates it. The
        // schema has no layout edit task, so re-place from net2 does not
        // create a version arc; nothing supersedes l1 and the cache
        // stays valid — which is exactly the paper's semantics: the
        // extraction is consistent with the layout it came from.
        assert!(db.is_up_to_date(x1).expect("ok"));
    }
}
