//! Instance-browser queries (Fig. 9b).
//!
//! The Hercules entity-instance browser filters by keywords, date
//! limits, user, and "Use Dependencies" (restricting the listing to
//! instances derived from a selected instance). [`BrowserQuery`] is that
//! dialog as a builder.

use hercules_schema::EntityTypeId;

use crate::clock::Timestamp;
use crate::db::HistoryDb;
use crate::error::HistoryError;
use crate::instance::InstanceId;

/// A browser query over one entity family.
///
/// # Examples
///
/// ```
/// use hercules_history::{BrowserQuery, HistoryDb, Metadata};
/// use hercules_schema::fixtures;
///
/// # fn main() -> Result<(), hercules_history::HistoryError> {
/// let schema = std::sync::Arc::new(fixtures::fig1());
/// let mut db = HistoryDb::new(schema.clone());
/// let stim = schema.require("Stimuli")?;
/// db.record_primary(stim, Metadata::by("jbb").named("pulse"), b"p")?;
/// db.record_primary(stim, Metadata::by("sutton").named("ramp"), b"r")?;
///
/// let hits = BrowserQuery::family(stim).user("jbb").run(&db)?;
/// assert_eq!(hits.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrowserQuery {
    entity: EntityTypeId,
    user: Option<String>,
    from: Option<Timestamp>,
    to: Option<Timestamp>,
    keywords: Vec<String>,
    name_contains: Option<String>,
    use_dependencies: Option<InstanceId>,
}

impl BrowserQuery {
    /// Creates a query listing the family of `entity` (the entity and
    /// all its subtypes), unfiltered.
    pub fn family(entity: EntityTypeId) -> BrowserQuery {
        BrowserQuery {
            entity,
            user: None,
            from: None,
            to: None,
            keywords: Vec::new(),
            name_contains: None,
            use_dependencies: None,
        }
    }

    /// Restricts to instances created by `user` (Fig. 9's "User
    /// Limits").
    pub fn user(mut self, user: &str) -> BrowserQuery {
        self.user = Some(user.to_owned());
        self
    }

    /// Restricts to instances created at or after `from` (Fig. 9's
    /// "Date Limits: From").
    pub fn from(mut self, from: Timestamp) -> BrowserQuery {
        self.from = Some(from);
        self
    }

    /// Restricts to instances created at or before `to` (Fig. 9's "Date
    /// Limits: To").
    pub fn to(mut self, to: Timestamp) -> BrowserQuery {
        self.to = Some(to);
        self
    }

    /// Requires the given keyword (repeatable; all must match).
    pub fn keyword(mut self, kw: &str) -> BrowserQuery {
        self.keywords.push(kw.to_owned());
        self
    }

    /// Requires the annotation name to contain `needle`.
    pub fn name_contains(mut self, needle: &str) -> BrowserQuery {
        self.name_contains = Some(needle.to_owned());
        self
    }

    /// Restricts to instances that (transitively) depend on `instance`
    /// — the "Use Dependencies" checkbox driving forward-chaining
    /// queries (§4.2).
    pub fn use_dependencies(mut self, instance: InstanceId) -> BrowserQuery {
        self.use_dependencies = Some(instance);
        self
    }

    /// Runs the query, returning matching instances in creation order.
    ///
    /// # Errors
    ///
    /// Returns a schema error for an unknown entity or
    /// [`HistoryError::UnknownInstance`] for a dangling
    /// `use_dependencies` anchor.
    pub fn run(&self, db: &HistoryDb) -> Result<Vec<InstanceId>, HistoryError> {
        if db.schema().get(self.entity).is_none() {
            return Err(hercules_schema::SchemaError::UnknownEntityId(self.entity).into());
        }
        let downstream = match self.use_dependencies {
            Some(anchor) => Some(db.forward_chain(anchor)?),
            None => None,
        };
        let mut out = Vec::new();
        for id in db.instances_of_family(self.entity) {
            let inst = db.instance(id)?;
            let m = inst.meta();
            if let Some(u) = &self.user {
                if &m.user != u {
                    continue;
                }
            }
            if let Some(f) = self.from {
                if m.created < f {
                    continue;
                }
            }
            if let Some(t) = self.to {
                if m.created > t {
                    continue;
                }
            }
            if !self.keywords.iter().all(|k| m.keywords.contains(k)) {
                continue;
            }
            if let Some(n) = &self.name_contains {
                if !m.name.contains(n.as_str()) {
                    continue;
                }
            }
            if let Some(d) = &downstream {
                if !d.contains(&id) {
                    continue;
                }
            }
            out.push(id);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derivation::Derivation;
    use crate::instance::Metadata;
    use hercules_schema::fixtures;
    use std::sync::Arc;

    fn db() -> (Arc<hercules_schema::TaskSchema>, HistoryDb, Vec<InstanceId>) {
        let schema = Arc::new(fixtures::fig1());
        let mut db = HistoryDb::new(schema.clone());
        let t = |n: &str| schema.require(n).expect("known");
        let editor = db
            .record_primary(t("CircuitEditor"), Metadata::by("cad"), b"ed")
            .expect("ok");
        let n1 = db
            .record_derived(
                t("EditedNetlist"),
                Metadata::by("jbb")
                    .named("Low pass filter")
                    .keyword("filter"),
                b"n1",
                Derivation::by_tool(editor, []),
            )
            .expect("ok");
        db.clock_mut().advance_to(Timestamp(100));
        let n2 = db
            .record_derived(
                t("EditedNetlist"),
                Metadata::by("director")
                    .named("CMOS Full adder")
                    .keyword("digital"),
                b"n2",
                Derivation::by_tool(editor, []),
            )
            .expect("ok");
        db.clock_mut().advance_to(Timestamp(200));
        let n3 = db
            .record_derived(
                t("EditedNetlist"),
                Metadata::by("sutton")
                    .named("Operational Amplifier")
                    .keyword("analog")
                    .keyword("filter"),
                b"n3",
                Derivation::by_tool(editor, [n1]),
            )
            .expect("ok");
        (schema, db, vec![editor, n1, n2, n3])
    }

    #[test]
    fn unfiltered_family_query_lists_all() {
        let (schema, db, ids) = db();
        let hits = BrowserQuery::family(schema.require("Netlist").expect("known"))
            .run(&db)
            .expect("ok");
        assert_eq!(hits, vec![ids[1], ids[2], ids[3]]);
    }

    #[test]
    fn user_filter() {
        let (schema, db, ids) = db();
        let hits = BrowserQuery::family(schema.require("Netlist").expect("known"))
            .user("director")
            .run(&db)
            .expect("ok");
        assert_eq!(hits, vec![ids[2]]);
    }

    #[test]
    fn date_limits_from_to() {
        let (schema, db, ids) = db();
        let net = schema.require("Netlist").expect("known");
        let hits = BrowserQuery::family(net)
            .from(Timestamp(100))
            .run(&db)
            .expect("ok");
        assert_eq!(hits, vec![ids[2], ids[3]]);
        let hits = BrowserQuery::family(net)
            .from(Timestamp(100))
            .to(Timestamp(150))
            .run(&db)
            .expect("ok");
        assert_eq!(hits, vec![ids[2]]);
    }

    #[test]
    fn keyword_filters_conjunctively() {
        let (schema, db, ids) = db();
        let net = schema.require("Netlist").expect("known");
        let hits = BrowserQuery::family(net)
            .keyword("filter")
            .run(&db)
            .expect("ok");
        assert_eq!(hits, vec![ids[1], ids[3]]);
        let hits = BrowserQuery::family(net)
            .keyword("filter")
            .keyword("analog")
            .run(&db)
            .expect("ok");
        assert_eq!(hits, vec![ids[3]]);
    }

    #[test]
    fn name_substring() {
        let (schema, db, ids) = db();
        let net = schema.require("Netlist").expect("known");
        let hits = BrowserQuery::family(net)
            .name_contains("Amplifier")
            .run(&db)
            .expect("ok");
        assert_eq!(hits, vec![ids[3]]);
    }

    #[test]
    fn use_dependencies_restricts_to_forward_chain() {
        let (schema, db, ids) = db();
        let net = schema.require("Netlist").expect("known");
        // Only n3 is derived from n1.
        let hits = BrowserQuery::family(net)
            .use_dependencies(ids[1])
            .run(&db)
            .expect("ok");
        assert_eq!(hits, vec![ids[3]]);
    }

    #[test]
    fn combined_filters() {
        let (schema, db, ids) = db();
        let net = schema.require("Netlist").expect("known");
        let hits = BrowserQuery::family(net)
            .user("sutton")
            .keyword("filter")
            .from(Timestamp(1))
            .run(&db)
            .expect("ok");
        assert_eq!(hits, vec![ids[3]]);
    }
}
