//! The design-history database of the Hercules task manager.
//!
//! This crate implements the design-data-management half of Sutton,
//! Brockman & Director, *"Design Management Using Dynamically Defined
//! Flows"* (DAC 1993): "all design objects are created through the
//! execution of flows and … each design object may be uniquely
//! identified according to the sequence of tool/data transformations
//! used in creating that object. A consequence of this is that if flows
//! are properly defined, queries into the derivation history of design
//! objects obviate the need for additional version management schemes."
//!
//! * [`HistoryDb`] stores [`EntityInstance`]s — each with user-visible
//!   [`Metadata`] and, crucially, only the *immediate* [`Derivation`]
//!   (tool + inputs) that created it;
//! * backward chaining ([`HistoryDb::backward_chain`]) reconstructs a
//!   complete derivation history from those immediate records (Fig. 10);
//!   forward chaining ([`HistoryDb::forward_chain`]) finds dependents;
//! * a task graph doubles as a *query template*
//!   ([`HistoryDb::query_template`], §4.2);
//! * version trees are a projection of the history
//!   ([`HistoryDb::version_forest`], Fig. 11a) and a [`FlowTrace`] is the
//!   richer task-graph form (Fig. 11b);
//! * out-of-date detection ([`HistoryDb::staleness_of`]) supports
//!   design-consistency maintenance (§3.3);
//! * [`BrowserQuery`] is the Fig. 9 instance browser (user / date /
//!   keyword / use-dependency filters);
//! * the [`BlobStore`] shares physical data between instances
//!   (footnote 5's shared RCS files).
//!
//! # Examples
//!
//! ```
//! use hercules_history::{Derivation, HistoryDb, Metadata};
//! use hercules_schema::fixtures;
//!
//! # fn main() -> Result<(), hercules_history::HistoryError> {
//! let schema = std::sync::Arc::new(fixtures::fig1());
//! let mut db = HistoryDb::new(schema.clone());
//!
//! let editor = db.record_primary(
//!     schema.require("CircuitEditor")?, Metadata::by("jbb"), b"sced")?;
//! let netlist = db.record_derived(
//!     schema.require("EditedNetlist")?,
//!     Metadata::by("jbb").named("Low pass filter"),
//!     b".subckt lpf",
//!     Derivation::by_tool(editor, []),
//! )?;
//!
//! // Fig. 10: select History on the netlist icon.
//! let history = db.backward_chain(netlist, Some(1))?;
//! assert_eq!(history.tool, Some(editor));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain;
mod clock;
mod consistency;
mod db;
mod derivation;
mod error;
mod instance;
mod persist;
mod query;
mod revdep;
mod store;
mod trace;
mod version;

pub use chain::{DerivationTree, TemplateMatch};
pub use clock::{LogicalClock, Timestamp};
pub use consistency::Staleness;
pub use db::HistoryDb;
pub use derivation::Derivation;
pub use error::HistoryError;
pub use instance::{EntityInstance, InstanceId, Metadata};
pub use persist::{HistorySpec, InstanceSpec};
pub use query::BrowserQuery;
pub use revdep::{DirtyCone, RetraceCone, RevDepIndex, RevDepIndexSpec, VersionCut};
pub use store::{BlobHash, BlobStore};
pub use trace::FlowTrace;
pub use version::VersionForest;
