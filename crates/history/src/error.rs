//! Error type for the design-history database.

use std::error::Error;
use std::fmt;

use hercules_schema::SchemaError;

use crate::instance::InstanceId;

/// Errors raised by the design-history database and its queries.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
#[allow(missing_docs)] // variant fields are self-describing names/ids
pub enum HistoryError {
    /// An instance id does not exist in this database.
    UnknownInstance(InstanceId),
    /// A schema lookup failed.
    Schema(SchemaError),
    /// An instance was recorded with an entity type incompatible with
    /// the requested operation.
    TypeMismatch { expected: String, found: String },
    /// A derivation references the instance being created, or otherwise
    /// cannot be part of a well-founded history.
    CircularDerivation(InstanceId),
    /// The derivation's tool instance is not an instance of the entity's
    /// constructing tool.
    WrongTool { entity: String, tool: String },
    /// The derivation's inputs cannot be matched to the entity's data
    /// dependencies.
    BadDerivationInputs { entity: String },
    /// A blob hash is not present in the store.
    UnknownBlob,
    /// A flow-template query mixed flows and databases built against
    /// different schemas.
    SchemaMismatch,
    /// A template query bound a node to an instance of an incompatible
    /// entity type.
    BindingTypeMismatch {
        node_entity: String,
        instance_entity: String,
    },
    /// A flow error surfaced while using a task graph as a template.
    Flow(hercules_flow::FlowError),
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryError::UnknownInstance(id) => {
                write!(f, "no instance {id} in the design history")
            }
            HistoryError::Schema(e) => write!(f, "schema error: {e}"),
            HistoryError::TypeMismatch { expected, found } => {
                write!(f, "expected an instance of `{expected}`, found `{found}`")
            }
            HistoryError::CircularDerivation(id) => {
                write!(f, "derivation of {id} refers to itself or a descendant")
            }
            HistoryError::WrongTool { entity, tool } => write!(
                f,
                "`{entity}` is not constructed by the tool `{tool}` in the schema"
            ),
            HistoryError::BadDerivationInputs { entity } => write!(
                f,
                "derivation inputs do not match the data dependencies of `{entity}`"
            ),
            HistoryError::UnknownBlob => f.write_str("blob hash not present in the store"),
            HistoryError::SchemaMismatch => {
                f.write_str("flow and history database use different schemas")
            }
            HistoryError::BindingTypeMismatch {
                node_entity,
                instance_entity,
            } => write!(
                f,
                "cannot bind a `{instance_entity}` instance to a `{node_entity}` node"
            ),
            HistoryError::Flow(e) => write!(f, "flow error: {e}"),
        }
    }
}

impl Error for HistoryError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HistoryError::Schema(e) => Some(e),
            HistoryError::Flow(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SchemaError> for HistoryError {
    fn from(e: SchemaError) -> HistoryError {
        HistoryError::Schema(e)
    }
}

impl From<hercules_flow::FlowError> for HistoryError {
    fn from(e: hercules_flow::FlowError) -> HistoryError {
        HistoryError::Flow(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let errors = vec![
            HistoryError::UnknownInstance(InstanceId::from_raw(1)),
            HistoryError::UnknownBlob,
            HistoryError::SchemaMismatch,
            HistoryError::TypeMismatch {
                expected: "Netlist".into(),
                found: "Layout".into(),
            },
        ];
        for err in errors {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn sources_are_chained() {
        use std::error::Error as _;
        let e: HistoryError = SchemaError::UnknownEntity("X".into()).into();
        assert!(e.source().is_some());
        let e: HistoryError = hercules_flow::FlowError::Cycle.into();
        assert!(e.source().is_some());
    }
}
