//! The common "designer move" language used to compare flow managers.
//!
//! §2 of the paper compares dynamically defined flows against predefined
//! flows (JESSI [3], NELSIS [5], flowmaps [4]) and raw traces
//! (Casotto [8]). To quantify the comparison we model a design session
//! as a sequence of *moves*: "construct an instance of entity `goal`
//! from what I have". A move is *schema-valid* when the goal is
//! constructible and all its required inputs are available; managers
//! differ in which schema-valid moves they accept and which invalid
//! moves they reject.

use hercules_schema::{EntityTypeId, TaskSchema};
use rand::seq::IndexedRandom as _;
use rand::SeedableRng as _;
use rand_chacha::ChaCha8Rng;

/// One designer move: run the task that constructs `goal`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    /// The (concrete) entity the designer wants to construct.
    pub goal: EntityTypeId,
}

/// Tracks which entity types the designer has instances of.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Holdings {
    have: Vec<bool>,
}

impl Holdings {
    /// Starts with every primary entity available (libraries, tools,
    /// stimuli are imported, not constructed).
    pub fn initial(schema: &TaskSchema) -> Holdings {
        let mut have = vec![false; schema.len()];
        for id in schema.entity_ids() {
            if schema.is_primary(id) {
                have[id.index()] = true;
            }
        }
        Holdings { have }
    }

    /// Returns `true` if an instance of `entity` (or any subtype) is
    /// available.
    pub fn has(&self, schema: &TaskSchema, entity: EntityTypeId) -> bool {
        if self.have[entity.index()] {
            return true;
        }
        schema
            .all_subtypes(entity)
            .into_iter()
            .any(|s| self.have[s.index()])
    }

    /// Records that `entity` is now available.
    pub fn add(&mut self, entity: EntityTypeId) {
        self.have[entity.index()] = true;
    }
}

/// Returns `true` if `mv` is schema-valid given the holdings: the goal
/// is concrete and constructible, and every required dependency source
/// is available.
pub fn is_schema_valid(schema: &TaskSchema, holdings: &Holdings, mv: Move) -> bool {
    let goal = mv.goal;
    if schema.is_abstract(goal) || !schema.is_constructible(goal) {
        return false;
    }
    schema.deps_of(goal).iter().all(|d| {
        // Optional inputs never block a move; functional and data
        // requirements alike need an instance in hand.
        d.is_optional() || holdings.has(schema, d.source())
    })
}

/// A generated design session: moves plus their schema validity.
#[derive(Debug, Clone)]
pub struct Session {
    /// The moves in order.
    pub moves: Vec<(Move, bool)>,
}

impl Session {
    /// Returns how many moves are schema-valid.
    pub fn valid_count(&self) -> usize {
        self.moves.iter().filter(|(_, v)| *v).count()
    }
}

/// Generates a random design session of `length` moves over `schema`.
/// Valid moves are preferred with probability `valid_bias` (0–1);
/// deterministic per seed.
pub fn random_session(schema: &TaskSchema, length: usize, valid_bias: f64, seed: u64) -> Session {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut holdings = Holdings::initial(schema);
    let all: Vec<EntityTypeId> = schema.entity_ids().collect();
    let mut moves = Vec::with_capacity(length);
    for _ in 0..length {
        let want_valid = rand::Rng::random::<f64>(&mut rng) < valid_bias;
        let candidates: Vec<Move> = all
            .iter()
            .map(|&goal| Move { goal })
            .filter(|&m| is_schema_valid(schema, &holdings, m) == want_valid)
            .collect();
        let pool: Vec<Move> = if candidates.is_empty() {
            all.iter().map(|&goal| Move { goal }).collect()
        } else {
            candidates
        };
        let mv = *pool.choose(&mut rng).expect("nonempty pool");
        let valid = is_schema_valid(schema, &holdings, mv);
        if valid {
            holdings.add(mv.goal);
        }
        moves.push((mv, valid));
    }
    Session { moves }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hercules_schema::fixtures;

    #[test]
    fn primaries_are_initially_held() {
        let schema = fixtures::fig1();
        let h = Holdings::initial(&schema);
        assert!(h.has(&schema, schema.require("Stimuli").expect("known")));
        assert!(!h.has(&schema, schema.require("Performance").expect("known")));
    }

    #[test]
    fn subtype_instances_satisfy_supertype_needs() {
        let schema = fixtures::fig1();
        let mut h = Holdings::initial(&schema);
        let netlist = schema.require("Netlist").expect("known");
        assert!(!h.has(&schema, netlist));
        h.add(schema.require("EditedNetlist").expect("known"));
        assert!(h.has(&schema, netlist));
    }

    #[test]
    fn validity_follows_dependencies() {
        let schema = fixtures::fig1();
        let mut h = Holdings::initial(&schema);
        let edited = Move {
            goal: schema.require("EditedNetlist").expect("known"),
        };
        let perf = Move {
            goal: schema.require("Performance").expect("known"),
        };
        // Editor is primary, so editing is immediately possible.
        assert!(is_schema_valid(&schema, &h, edited));
        // Simulation needs a circuit first.
        assert!(!is_schema_valid(&schema, &h, perf));
        h.add(schema.require("EditedNetlist").expect("known"));
        h.add(schema.require("Circuit").expect("known"));
        assert!(is_schema_valid(&schema, &h, perf));
    }

    #[test]
    fn abstract_goals_are_invalid_moves() {
        let schema = fixtures::fig1();
        let h = Holdings::initial(&schema);
        assert!(!is_schema_valid(
            &schema,
            &h,
            Move {
                goal: schema.require("Netlist").expect("known")
            }
        ));
    }

    #[test]
    fn sessions_are_deterministic_per_seed() {
        let schema = fixtures::fig1();
        let a = random_session(&schema, 50, 0.8, 1);
        let b = random_session(&schema, 50, 0.8, 1);
        assert_eq!(a.moves, b.moves);
        assert!(a.valid_count() > 0);
        assert!(a.valid_count() < 50, "bias leaves some invalid moves");
    }
}
