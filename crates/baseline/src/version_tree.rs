//! A conventional standalone version-tree manager (Fig. 11a's world):
//! the baseline the paper's flow traces subsume.
//!
//! It knows *that* `c2` came from `c1`, but not *how* — no tool, no
//! other inputs. The Fig. 11 comparison (`tests/fig11_versions.rs` and
//! the `fig11_trace` bench) measures what that costs: per-object
//! metadata is smaller, but derivation queries are unanswerable.

use serde::{Deserialize, Serialize};

/// Identifier of a version in one [`VersionTreeStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VersionId(u64);

impl VersionId {
    /// Returns the raw id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// One version record: name and parent only — that is the whole point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VersionRecord {
    /// Version label.
    pub name: String,
    /// Parent version, if any.
    pub parent: Option<VersionId>,
}

/// A classic check-in-based version store for one design object family.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VersionTreeStore {
    records: Vec<VersionRecord>,
}

impl VersionTreeStore {
    /// Creates an empty store.
    pub fn new() -> VersionTreeStore {
        VersionTreeStore::default()
    }

    /// Checks in a new version derived from `parent`.
    pub fn check_in(&mut self, name: &str, parent: Option<VersionId>) -> VersionId {
        let id = VersionId(self.records.len() as u64);
        self.records.push(VersionRecord {
            name: name.to_owned(),
            parent,
        });
        id
    }

    /// Returns a version record.
    pub fn get(&self, id: VersionId) -> Option<&VersionRecord> {
        self.records.get(id.0 as usize)
    }

    /// Returns the parent of a version.
    pub fn parent(&self, id: VersionId) -> Option<VersionId> {
        self.get(id).and_then(|r| r.parent)
    }

    /// Returns the direct children of a version.
    pub fn children(&self, id: VersionId) -> Vec<VersionId> {
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.parent == Some(id))
            .map(|(i, _)| VersionId(i as u64))
            .collect()
    }

    /// Returns the root versions.
    pub fn roots(&self) -> Vec<VersionId> {
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.parent.is_none())
            .map(|(i, _)| VersionId(i as u64))
            .collect()
    }

    /// Returns the number of versions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Approximate per-record metadata size in bytes (name + parent
    /// link), for the storage comparison against flow traces.
    pub fn metadata_bytes(&self) -> usize {
        self.records
            .iter()
            .map(|r| r.name.len() + std::mem::size_of::<Option<VersionId>>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 11a tree: c1 -> c2 -> {c3, c4 -> c5}.
    fn fig11a() -> (VersionTreeStore, Vec<VersionId>) {
        let mut s = VersionTreeStore::new();
        let c1 = s.check_in("c1", None);
        let c2 = s.check_in("c2", Some(c1));
        let c3 = s.check_in("c3", Some(c2));
        let c4 = s.check_in("c4", Some(c2));
        let c5 = s.check_in("c5", Some(c4));
        (s, vec![c1, c2, c3, c4, c5])
    }

    #[test]
    fn tree_structure() {
        let (s, ids) = fig11a();
        assert_eq!(s.len(), 5);
        assert_eq!(s.roots(), vec![ids[0]]);
        assert_eq!(s.children(ids[1]), vec![ids[2], ids[3]]);
        assert_eq!(s.parent(ids[4]), Some(ids[3]));
        assert_eq!(s.get(ids[0]).expect("present").name, "c1");
    }

    #[test]
    fn metadata_is_small_but_toolless() {
        let (s, _) = fig11a();
        assert!(s.metadata_bytes() > 0);
        // The API simply has no way to ask "which tool made c2" — the
        // paper's point about flow traces being a richer superset.
    }

    #[test]
    fn empty_store() {
        let s = VersionTreeStore::new();
        assert!(s.is_empty());
        assert!(s.roots().is_empty());
        assert!(s.get(VersionId(0)).is_none());
    }
}
