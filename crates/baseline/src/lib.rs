//! Baseline design-management approaches compared in §2 of the paper.
//!
//! The paper argues qualitatively against two prior styles; this crate
//! implements both — plus a conventional version-tree store — behind a
//! common [`FlowManager`] interface so the comparison can be *measured*:
//!
//! * [`StaticFlowManager`] — JESSI \[3\] / NELSIS \[5\] style predefined
//!   flows: the designer must follow a fixed activity sequence (the
//!   "flow straight-jacket" of Rumsey & Farquhar \[1\]);
//! * [`TraceManager`] — Casotto \[8\] style design traces: every action is
//!   recorded and nothing is enforced; an existing trace can serve as a
//!   prototype for a new activity;
//! * [`DynamicManager`] — this paper's dynamically defined flows:
//!   accepts every schema-valid move and rejects the rest;
//! * [`VersionTreeStore`] — a standalone check-in version tree, the
//!   Fig. 11a baseline that flow traces subsume.
//!
//! The [`flexibility`] module runs the acceptance/enforcement experiment
//! (experiment E1 of `DESIGN.md`); see `crates/bench` for the measured
//! comparison.
//!
//! # Examples
//!
//! ```
//! use hercules_baseline::{DynamicManager, FlowManager, Move};
//! use hercules_schema::fixtures;
//!
//! # fn main() -> Result<(), hercules_schema::SchemaError> {
//! let schema = fixtures::fig1();
//! let mut manager = DynamicManager::new(&schema);
//! let edit = Move { goal: schema.require("EditedNetlist")? };
//! assert!(manager.offer(&schema, edit));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod managers;
mod moves;
mod version_tree;

pub mod flexibility;

pub use managers::{DynamicManager, FlowManager, StaticFlowManager, TraceManager};
pub use moves::{is_schema_valid, random_session, Holdings, Move, Session};
pub use version_tree::{VersionId, VersionRecord, VersionTreeStore};
