//! The flexibility/enforcement experiment (experiment E1 in
//! `DESIGN.md`): quantifying §2's qualitative comparison.
//!
//! A good flow manager should accept every *schema-valid* designer move
//! (flexibility — no "flow straight-jacket") while rejecting
//! schema-invalid ones (methodology enforcement). Dynamically defined
//! flows achieve both; predefined flows sacrifice flexibility; raw
//! traces sacrifice enforcement.

use hercules_schema::TaskSchema;

use crate::managers::FlowManager;
use crate::moves::Session;

/// Confusion-matrix style outcome of offering one session to one
/// manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Outcome {
    /// Schema-valid moves the manager accepted.
    pub accepted_valid: usize,
    /// Schema-valid moves the manager rejected (lost flexibility).
    pub rejected_valid: usize,
    /// Schema-invalid moves the manager accepted (lost enforcement).
    pub accepted_invalid: usize,
    /// Schema-invalid moves the manager rejected.
    pub rejected_invalid: usize,
}

impl Outcome {
    /// Flexibility: fraction of schema-valid moves accepted (1.0 is
    /// best).
    pub fn flexibility(&self) -> f64 {
        let total = self.accepted_valid + self.rejected_valid;
        if total == 0 {
            return 1.0;
        }
        self.accepted_valid as f64 / total as f64
    }

    /// Enforcement: fraction of schema-invalid moves rejected (1.0 is
    /// best).
    pub fn enforcement(&self) -> f64 {
        let total = self.accepted_invalid + self.rejected_invalid;
        if total == 0 {
            return 1.0;
        }
        self.rejected_invalid as f64 / total as f64
    }

    /// Accumulates another outcome.
    pub fn merge(&mut self, other: Outcome) {
        self.accepted_valid += other.accepted_valid;
        self.rejected_valid += other.rejected_valid;
        self.accepted_invalid += other.accepted_invalid;
        self.rejected_invalid += other.rejected_invalid;
    }
}

/// Offers every move of a session to a manager and tallies the outcome.
pub fn evaluate(schema: &TaskSchema, manager: &mut dyn FlowManager, session: &Session) -> Outcome {
    let mut out = Outcome::default();
    for &(mv, valid) in &session.moves {
        let accepted = manager.offer(schema, mv);
        match (valid, accepted) {
            (true, true) => out.accepted_valid += 1,
            (true, false) => out.rejected_valid += 1,
            (false, true) => out.accepted_invalid += 1,
            (false, false) => out.rejected_invalid += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::managers::{DynamicManager, StaticFlowManager, TraceManager};
    use crate::moves::random_session;
    use hercules_schema::fixtures;

    fn experiment() -> (TaskSchema, Vec<Session>) {
        let schema = fixtures::fig1();
        let sessions: Vec<Session> = (0..20)
            .map(|seed| random_session(&schema, 40, 0.7, seed))
            .collect();
        (schema, sessions)
    }

    #[test]
    fn dynamic_manager_is_flexible_and_enforcing() {
        let (schema, sessions) = experiment();
        let mut total = Outcome::default();
        for s in &sessions {
            let mut m = DynamicManager::new(&schema);
            total.merge(evaluate(&schema, &mut m, s));
        }
        assert_eq!(total.flexibility(), 1.0, "no straight-jacket");
        assert_eq!(total.enforcement(), 1.0, "methodology still enforced");
    }

    #[test]
    fn static_manager_loses_flexibility_but_enforces() {
        let (schema, sessions) = experiment();
        let mut total = Outcome::default();
        for s in &sessions {
            let mut m = StaticFlowManager::reference_flow(&schema);
            total.merge(evaluate(&schema, &mut m, s));
        }
        assert!(
            total.flexibility() < 1.0,
            "the fixed sequence rejects valid moves"
        );
        assert!(total.enforcement() > 0.9, "off-flow moves are rejected");
    }

    #[test]
    fn trace_manager_is_flexible_but_never_enforces() {
        let (schema, sessions) = experiment();
        let mut total = Outcome::default();
        for s in &sessions {
            let mut m = TraceManager::new();
            total.merge(evaluate(&schema, &mut m, s));
        }
        assert_eq!(total.flexibility(), 1.0);
        assert_eq!(total.enforcement(), 0.0, "anything goes");
    }

    #[test]
    fn ordering_matches_the_papers_claim() {
        // dynamic dominates both baselines on the combined score.
        let (schema, sessions) = experiment();
        let score = |mk: &mut dyn FnMut() -> Box<dyn FlowManager>| -> f64 {
            let mut total = Outcome::default();
            for s in &sessions {
                let mut m = mk();
                total.merge(evaluate(&schema, m.as_mut(), s));
            }
            total.flexibility() + total.enforcement()
        };
        let dynamic = score(&mut || Box::new(DynamicManager::new(&schema)));
        let static_ = score(&mut || Box::new(StaticFlowManager::reference_flow(&schema)));
        let trace = score(&mut || Box::new(TraceManager::new()));
        assert!(dynamic > static_);
        assert!(dynamic > trace);
    }
}
