//! The three flow-management styles the paper compares (§2), as
//! implementations of one [`FlowManager`] interface.

use hercules_schema::{EntityTypeId, TaskSchema};

use crate::moves::{is_schema_valid, Holdings, Move};

/// A flow manager judges designer moves.
pub trait FlowManager {
    /// Human-readable style name.
    fn name(&self) -> &'static str;

    /// Offers a move; returns `true` if the manager accepts it. The
    /// manager updates its own state (holdings, cursor, trace) as a
    /// side effect of acceptance.
    fn offer(&mut self, schema: &TaskSchema, mv: Move) -> bool;
}

/// Dynamically defined flows (this paper): any schema-valid move is
/// acceptable — "the designer should be able to perform any allowable
/// task in any order" (§3.3) — and schema-invalid moves are rejected,
/// so the methodology is still enforced.
#[derive(Debug, Clone)]
pub struct DynamicManager {
    holdings: Holdings,
}

impl DynamicManager {
    /// Creates the manager with primary entities in hand.
    pub fn new(schema: &TaskSchema) -> DynamicManager {
        DynamicManager {
            holdings: Holdings::initial(schema),
        }
    }
}

impl FlowManager for DynamicManager {
    fn name(&self) -> &'static str {
        "dynamic"
    }

    fn offer(&mut self, schema: &TaskSchema, mv: Move) -> bool {
        if is_schema_valid(schema, &self.holdings, mv) {
            self.holdings.add(mv.goal);
            true
        } else {
            false
        }
    }
}

/// A JESSI/NELSIS-style predefined flow: "a predefined sequence of
/// activities" the designer must follow step by step — the "flow
/// straight-jacket" of Rumsey & Farquhar \[1\].
#[derive(Debug, Clone)]
pub struct StaticFlowManager {
    sequence: Vec<EntityTypeId>,
    cursor: usize,
}

impl StaticFlowManager {
    /// Creates the manager with a fixed activity sequence (each entry
    /// the goal entity of one step).
    pub fn new(sequence: Vec<EntityTypeId>) -> StaticFlowManager {
        StaticFlowManager {
            sequence,
            cursor: 0,
        }
    }

    /// Builds the "reference methodology" flow for a schema: a
    /// topological pass constructing every concrete, constructible
    /// entity exactly once.
    pub fn reference_flow(schema: &TaskSchema) -> StaticFlowManager {
        let sequence = schema
            .topo_order()
            .into_iter()
            .filter(|&id| {
                !schema.is_abstract(id) && !schema.is_primary(id) && schema.is_constructible(id)
            })
            .collect();
        StaticFlowManager::new(sequence)
    }

    /// Returns the number of steps remaining.
    pub fn remaining(&self) -> usize {
        self.sequence.len().saturating_sub(self.cursor)
    }
}

impl FlowManager for StaticFlowManager {
    fn name(&self) -> &'static str {
        "static"
    }

    fn offer(&mut self, _schema: &TaskSchema, mv: Move) -> bool {
        if self.cursor < self.sequence.len() && self.sequence[self.cursor] == mv.goal {
            self.cursor += 1;
            true
        } else {
            false
        }
    }
}

/// A Casotto-style trace recorder: "merely capturing a trace of
/// designer activity". Every move is accepted — which also means "it
/// provides no means for enforcing a particular design methodology"
/// (§2).
#[derive(Debug, Clone, Default)]
pub struct TraceManager {
    trace: Vec<Move>,
}

impl TraceManager {
    /// Creates an empty recorder.
    pub fn new() -> TraceManager {
        TraceManager::default()
    }

    /// Returns the captured trace.
    pub fn trace(&self) -> &[Move] {
        &self.trace
    }

    /// Uses an existing trace as a prototype for a new activity (the
    /// one reuse mechanism Casotto offers): returns a static manager
    /// replaying it.
    pub fn as_prototype(&self) -> StaticFlowManager {
        StaticFlowManager::new(self.trace.iter().map(|m| m.goal).collect())
    }
}

impl FlowManager for TraceManager {
    fn name(&self) -> &'static str {
        "trace"
    }

    fn offer(&mut self, _schema: &TaskSchema, mv: Move) -> bool {
        self.trace.push(mv);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hercules_schema::fixtures;

    #[test]
    fn dynamic_accepts_valid_rejects_invalid() {
        let schema = fixtures::fig1();
        let mut m = DynamicManager::new(&schema);
        let edited = Move {
            goal: schema.require("EditedNetlist").expect("known"),
        };
        let perf = Move {
            goal: schema.require("Performance").expect("known"),
        };
        assert!(!m.offer(&schema, perf), "no circuit yet");
        assert!(m.offer(&schema, edited));
        let models = Move {
            goal: schema.require("DeviceModels").expect("known"),
        };
        assert!(m.offer(&schema, models), "device-model editor is primary");
        let circuit = Move {
            goal: schema.require("Circuit").expect("known"),
        };
        assert!(m.offer(&schema, circuit));
        assert!(m.offer(&schema, perf), "now allowed");
        assert_eq!(m.name(), "dynamic");
    }

    #[test]
    fn static_manager_is_a_straight_jacket() {
        let schema = fixtures::fig1();
        let edited = schema.require("EditedNetlist").expect("known");
        let circuit = schema.require("Circuit").expect("known");
        let perf = schema.require("Performance").expect("known");
        let mut m = StaticFlowManager::new(vec![edited, circuit, perf]);
        assert_eq!(m.remaining(), 3);
        // Out of order: rejected even though schema-valid.
        assert!(!m.offer(&schema, Move { goal: circuit }));
        assert!(m.offer(&schema, Move { goal: edited }));
        assert!(m.offer(&schema, Move { goal: circuit }));
        assert!(m.offer(&schema, Move { goal: perf }));
        assert_eq!(m.remaining(), 0);
        // Flow exhausted: nothing more is allowed.
        assert!(!m.offer(&schema, Move { goal: edited }));
    }

    #[test]
    fn reference_flow_covers_constructible_entities() {
        let schema = fixtures::fig1();
        let m = StaticFlowManager::reference_flow(&schema);
        assert!(m.remaining() >= 5);
    }

    #[test]
    fn trace_manager_accepts_everything_and_replays() {
        let schema = fixtures::fig1();
        let perf = Move {
            goal: schema.require("Performance").expect("known"),
        };
        let mut m = TraceManager::new();
        // Even a schema-invalid move is recorded without complaint.
        assert!(m.offer(&schema, perf));
        assert_eq!(m.trace().len(), 1);
        let mut replay = m.as_prototype();
        assert!(replay.offer(&schema, perf));
        assert!(!replay.offer(&schema, perf), "prototype exhausted");
    }
}
