//! Worklist/fixpoint dataflow framework.
//!
//! The HL05xx consistency passes are *dataflow analyses*: abstract
//! facts (which superseded versions reach an instance, which entity
//! types a subflow transitively reads) propagate along dependency
//! edges until nothing changes. This module provides the shared
//! machinery — join-semilattice states, a monotone worklist solver
//! with visit counters, and the two lattices the passes use
//! ([`BitSet`] for reach-sets, [`Interval`] for version ranges).
//!
//! The solver supports **seeded re-solving** ([`solve_seeded`]): start
//! from a previous fixpoint and a worklist of dirty nodes instead of
//! from bottom. Over an append-only design history this is sound —
//! information only grows (supersession is monotone: a version, once
//! superseded, stays superseded), so a prior fixpoint under-approximates
//! the new one and the worklist closes the gap, visiting only the
//! affected cone. The visit counters are how tests *prove* the
//! incremental path did less work.

use std::collections::VecDeque;

/// A join-semilattice: partial order with a least upper bound.
pub trait JoinSemiLattice: Clone + PartialEq {
    /// Joins `other` into `self`; returns `true` if `self` changed.
    fn join_from(&mut self, other: &Self) -> bool;
}

/// A dense bit-set lattice ordered by inclusion (join = union).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set.
    pub fn new() -> BitSet {
        BitSet::default()
    }

    /// Inserts `i`; returns `true` if it was absent.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Returns `true` if `i` is in the set.
    pub fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1 << (i % 64)) != 0)
    }

    /// Returns the number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set has no members.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| (w & (1 << b) != 0).then_some(wi * 64 + b))
        })
    }

    /// Returns the smallest member, if any.
    pub fn min(&self) -> Option<usize> {
        self.iter().next()
    }

    /// Returns the largest member, if any.
    pub fn max(&self) -> Option<usize> {
        self.words
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &w)| w != 0)
            .map(|(wi, &w)| wi * 64 + 63 - w.leading_zeros() as usize)
    }
}

impl JoinSemiLattice for BitSet {
    fn join_from(&mut self, other: &Self) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        for (s, &o) in self.words.iter_mut().zip(&other.words) {
            let joined = *s | o;
            changed |= joined != *s;
            *s = joined;
        }
        changed
    }
}

/// An interval lattice over `u64` (join = hull). The empty interval is
/// bottom; joining only ever widens, so fixpoints terminate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    min: u64,
    max: u64,
}

impl Default for Interval {
    fn default() -> Interval {
        Interval::EMPTY
    }
}

impl Interval {
    /// The empty interval (bottom).
    pub const EMPTY: Interval = Interval {
        min: u64::MAX,
        max: 0,
    };

    /// Creates the point interval `[v, v]`.
    pub fn point(v: u64) -> Interval {
        Interval { min: v, max: v }
    }

    /// Returns `true` if nothing has been joined in.
    pub fn is_empty(self) -> bool {
        self.min > self.max
    }

    /// Returns the lower bound, if non-empty.
    pub fn min(self) -> Option<u64> {
        (!self.is_empty()).then_some(self.min)
    }

    /// Returns the upper bound, if non-empty.
    pub fn max(self) -> Option<u64> {
        (!self.is_empty()).then_some(self.max)
    }

    /// Widens the interval to cover `v`.
    pub fn insert(&mut self, v: u64) {
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

impl JoinSemiLattice for Interval {
    fn join_from(&mut self, other: &Self) -> bool {
        if other.is_empty() {
            return false;
        }
        let before = *self;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        *self != before
    }
}

/// A forward dataflow problem over a dense node space `0..num_nodes`.
///
/// `transfer` computes a node's new state from the full state vector —
/// implementations read their own predecessors, which lets them apply
/// per-edge exemptions (the version-predecessor pinning of §3.3, for
/// example) without the framework knowing about edges at all.
pub trait DataflowProblem {
    /// The abstract state attached to each node.
    type State: JoinSemiLattice + Default;

    /// Number of nodes; states live at indices `0..num_nodes()`.
    fn num_nodes(&self) -> usize;

    /// Appends the successors of `n` (nodes whose transfer reads `n`'s
    /// state) to `out`.
    fn successors(&self, n: usize, out: &mut Vec<usize>);

    /// Computes the state of `n` from the current state vector.
    fn transfer(&self, n: usize, states: &[Self::State]) -> Self::State;
}

/// A solved fixpoint: final states plus the work the solver did.
#[derive(Debug, Clone)]
pub struct FixpointResult<S> {
    /// Final abstract state per node.
    pub states: Vec<S>,
    /// How many times each node's transfer ran.
    pub visits: Vec<u32>,
    /// Total transfer executions — the analysis-work metric the
    /// incremental tests assert on.
    pub total_visits: usize,
}

/// Solves `problem` from bottom, seeding every node in index order.
pub fn solve<P: DataflowProblem>(problem: &P) -> FixpointResult<P::State> {
    let seeds: Vec<usize> = (0..problem.num_nodes()).collect();
    solve_seeded(problem, &seeds, Vec::new())
}

/// Solves `problem` starting from `prior` states (padded with bottom
/// for new nodes), seeding only `seeds`. With a `prior` that
/// under-approximates the fixpoint — e.g. the previous fixpoint of an
/// append-only history — the result equals a full solve, but only the
/// cone reachable from the seeds is visited.
pub fn solve_seeded<P: DataflowProblem>(
    problem: &P,
    seeds: &[usize],
    mut prior: Vec<P::State>,
) -> FixpointResult<P::State> {
    let n = problem.num_nodes();
    prior.truncate(n);
    prior.resize_with(n, Default::default);
    let mut states = prior;
    let mut visits = vec![0u32; n];
    let mut total_visits = 0usize;
    let mut queued = vec![false; n];
    let mut list: VecDeque<usize> = VecDeque::new();
    for &s in seeds {
        if s < n && !queued[s] {
            queued[s] = true;
            list.push_back(s);
        }
    }
    let mut succ = Vec::new();
    while let Some(x) = list.pop_front() {
        queued[x] = false;
        visits[x] += 1;
        total_visits += 1;
        let new = problem.transfer(x, &states);
        // Join rather than replace: prior states must never regress.
        if states[x].join_from(&new) {
            succ.clear();
            problem.successors(x, &mut succ);
            for &s in &succ {
                if s < n && !queued[s] {
                    queued[s] = true;
                    list.push_back(s);
                }
            }
        }
    }
    FixpointResult {
        states,
        visits,
        total_visits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reachability over a tiny DAG: state of n = union of {p} ∪
    /// state(p) over predecessors p.
    struct Reach {
        preds: Vec<Vec<usize>>,
        succs: Vec<Vec<usize>>,
    }

    impl Reach {
        fn new(edges: &[(usize, usize)], n: usize) -> Reach {
            let mut preds = vec![Vec::new(); n];
            let mut succs = vec![Vec::new(); n];
            for &(a, b) in edges {
                preds[b].push(a);
                succs[a].push(b);
            }
            Reach { preds, succs }
        }
    }

    impl DataflowProblem for Reach {
        type State = BitSet;

        fn num_nodes(&self) -> usize {
            self.preds.len()
        }

        fn successors(&self, n: usize, out: &mut Vec<usize>) {
            out.extend_from_slice(&self.succs[n]);
        }

        fn transfer(&self, n: usize, states: &[BitSet]) -> BitSet {
            let mut s = BitSet::new();
            for &p in &self.preds[n] {
                s.insert(p);
                s.join_from(&states[p]);
            }
            s
        }
    }

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::new();
        assert!(s.is_empty() && s.min().is_none());
        assert_eq!(s.len(), 0);
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(130));
        assert!(s.contains(3) && s.contains(130) && !s.contains(4));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 130]);
        assert_eq!((s.min(), s.max()), (Some(3), Some(130)));
    }

    #[test]
    fn interval_widens() {
        let mut i = Interval::EMPTY;
        assert!(i.is_empty());
        assert!(!i.join_from(&Interval::EMPTY));
        i.insert(7);
        i.insert(3);
        assert_eq!((i.min(), i.max()), (Some(3), Some(7)));
        let mut j = Interval::point(10);
        assert!(j.join_from(&i));
        assert_eq!((j.min(), j.max()), (Some(3), Some(10)));
        assert!(!j.join_from(&i));
    }

    #[test]
    fn full_solve_reaches_fixpoint() {
        // 0 -> 1 -> 2, 0 -> 2, 3 isolated.
        let p = Reach::new(&[(0, 1), (1, 2), (0, 2)], 4);
        let r = solve(&p);
        assert!(r.states[0].is_empty());
        assert_eq!(r.states[1].iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(r.states[2].iter().collect::<Vec<_>>(), vec![0, 1]);
        assert!(r.states[3].is_empty());
        assert!(r.total_visits >= 4);
    }

    #[test]
    fn seeded_solve_matches_full_and_visits_less() {
        // A chain 0..64 with an extra edge appended later.
        let n = 64;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let p = Reach::new(&edges, n);
        let full = solve(&p);

        // "Append" node 64 fed by node 10: prior states stay valid.
        let mut edges2 = edges.clone();
        edges2.push((10, 64));
        let p2 = Reach::new(&edges2, n + 1);
        let full2 = solve(&p2);
        let inc = solve_seeded(&p2, &[64], full.states.clone());
        assert_eq!(inc.states, full2.states);
        assert!(
            inc.total_visits < full2.total_visits,
            "incremental {} vs full {}",
            inc.total_visits,
            full2.total_visits
        );
    }
}
