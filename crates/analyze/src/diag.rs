//! The shared diagnostics type.
//!
//! Every finding `herclint` can make — a lint pass hit, a schema or
//! flow gate error, a stale instance, a corrupt journal frame — is
//! reported as a [`Diagnostic`]: a stable code (`HL0103`), a severity,
//! a [`Span`] naming the offending entity type / flow node / journal
//! frame, and a human message. [`Diagnostics`] collects them, applies
//! per-code suppression, and renders text or JSON.

use std::collections::BTreeSet;
use std::fmt;

use hercules_flow::FlowError;
use hercules_history::Staleness;
use hercules_schema::SchemaError;
use serde::{Deserialize, Serialize};

use crate::runner::JsonPassTiming;

/// How bad a finding is. `Error` findings make `herclint` exit
/// non-zero by default (and fail the CI lint job).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory; never fails a run.
    Info,
    /// Suspicious but not fatal; flows may still execute.
    Warn,
    /// The target is broken or cannot behave as written.
    Error,
}

impl Severity {
    /// Lowercase name, as rendered in text and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
            Severity::Info => "info",
        }
    }

    /// Parses the lowercase name back.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "error" => Some(Severity::Error),
            "warn" => Some(Severity::Warn),
            "info" => Some(Severity::Info),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What kind of thing a [`Span`] points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// An entity type of the task schema.
    Entity,
    /// A dependency arc of the task schema.
    Dependency,
    /// A node of the task graph.
    Node,
    /// A group of flow nodes (a sub-flow or a scheduled subtask).
    Subflow,
    /// An instance in the design history.
    Instance,
    /// A frame of a workspace journal.
    Frame,
    /// A file of a durable workspace.
    File,
    /// The whole lint target.
    Target,
}

impl SpanKind {
    /// Lowercase name, as rendered in text and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Entity => "entity",
            SpanKind::Dependency => "dependency",
            SpanKind::Node => "node",
            SpanKind::Subflow => "subflow",
            SpanKind::Instance => "instance",
            SpanKind::Frame => "frame",
            SpanKind::File => "file",
            SpanKind::Target => "target",
        }
    }

    /// Parses the lowercase name back.
    pub fn parse(s: &str) -> Option<SpanKind> {
        match s {
            "entity" => Some(SpanKind::Entity),
            "dependency" => Some(SpanKind::Dependency),
            "node" => Some(SpanKind::Node),
            "subflow" => Some(SpanKind::Subflow),
            "instance" => Some(SpanKind::Instance),
            "frame" => Some(SpanKind::Frame),
            "file" => Some(SpanKind::File),
            "target" => Some(SpanKind::Target),
            _ => None,
        }
    }
}

/// Where a finding points: the offending entity type, flow node,
/// journal frame, workspace file, …
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// What kind of location this is.
    pub kind: SpanKind,
    /// The location itself, e.g. `Netlist`, `n5 (Netlist)`, `frame 3`.
    pub name: String,
}

impl Span {
    /// A span naming an entity type.
    pub fn entity(name: &str) -> Span {
        Span {
            kind: SpanKind::Entity,
            name: name.to_owned(),
        }
    }

    /// A span naming a dependency arc `target <- source`.
    pub fn dependency(target: &str, source: &str) -> Span {
        Span {
            kind: SpanKind::Dependency,
            name: format!("{target} <- {source}"),
        }
    }

    /// A span naming a flow node with its entity type.
    pub fn node(id: impl fmt::Display, entity: &str) -> Span {
        Span {
            kind: SpanKind::Node,
            name: format!("{id} ({entity})"),
        }
    }

    /// A span naming a group of flow nodes.
    pub fn subflow(ids: impl IntoIterator<Item = impl fmt::Display>) -> Span {
        let names: Vec<String> = ids.into_iter().map(|i| i.to_string()).collect();
        Span {
            kind: SpanKind::Subflow,
            name: names.join("+"),
        }
    }

    /// A span naming a design-history instance.
    pub fn instance(id: impl fmt::Display) -> Span {
        Span {
            kind: SpanKind::Instance,
            name: id.to_string(),
        }
    }

    /// A span naming a journal frame by index.
    pub fn frame(index: usize) -> Span {
        Span {
            kind: SpanKind::Frame,
            name: format!("frame {index}"),
        }
    }

    /// A span naming a workspace file.
    pub fn file(name: &str) -> Span {
        Span {
            kind: SpanKind::File,
            name: name.to_owned(),
        }
    }

    /// A span covering the whole lint target.
    pub fn target() -> Span {
        Span {
            kind: SpanKind::Target,
            name: String::from("*"),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.kind.as_str(), self.name)
    }
}

/// One finding: stable code, severity, location, message.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Diagnostic {
    /// Stable code, e.g. `HL0103`. Codes are allocated in ranges per
    /// layer; see [`crate::registry`].
    pub code: &'static str,
    /// How bad the finding is.
    pub severity: Severity,
    /// What the finding points at.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(code: &'static str, severity: Severity, span: Span, message: String) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            span,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.span, self.message
        )
    }
}

/// Lint configuration: which codes to silence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintConfig {
    /// Codes (e.g. `HL0203`) whose findings are dropped at collection.
    pub suppress: BTreeSet<String>,
}

impl LintConfig {
    /// A configuration with nothing suppressed.
    pub fn new() -> LintConfig {
        LintConfig::default()
    }

    /// Suppresses one code (builder style).
    #[must_use]
    pub fn suppressing(mut self, code: &str) -> LintConfig {
        self.suppress.insert(code.to_owned());
        self
    }

    /// Is `code` suppressed?
    pub fn suppressed(&self, code: &str) -> bool {
        self.suppress.contains(code)
    }
}

/// An ordered collection of findings with suppression applied at
/// insertion.
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    config: LintConfig,
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collection with nothing suppressed.
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// An empty collection using `config` for suppression.
    pub fn with_config(config: LintConfig) -> Diagnostics {
        Diagnostics {
            config,
            items: Vec::new(),
        }
    }

    /// Adds a finding unless its code is suppressed.
    pub fn push(&mut self, d: Diagnostic) {
        if !self.config.suppressed(d.code) {
            self.items.push(d);
        }
    }

    /// The findings, in collection order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Number of findings collected (after suppression).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.items.iter().filter(|d| d.severity == severity).count()
    }

    /// The worst severity present, if any.
    pub fn max_severity(&self) -> Option<Severity> {
        self.items.iter().map(|d| d.severity).max()
    }

    /// The distinct codes present, sorted.
    pub fn codes(&self) -> BTreeSet<&'static str> {
        self.items.iter().map(|d| d.code).collect()
    }

    /// Sorts findings most severe first, then by code, then by span.
    pub fn sort(&mut self) {
        self.items.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.code.cmp(b.code))
                .then_with(|| a.span.cmp(&b.span))
        });
    }

    /// Renders one finding per line; empty string when clean.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.items {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }
}

impl Extend<Diagnostic> for Diagnostics {
    fn extend<T: IntoIterator<Item = Diagnostic>>(&mut self, iter: T) {
        for d in iter {
            self.push(d);
        }
    }
}

// ---------------------------------------------------------------------
// JSON wire format (`--format json`).
// ---------------------------------------------------------------------

/// One finding on the JSON wire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JsonDiagnostic {
    /// Name of the lint target the finding belongs to.
    pub target: String,
    /// Stable code, e.g. `HL0103`.
    pub code: String,
    /// `error`, `warn`, or `info`.
    pub severity: String,
    /// Span kind: `entity`, `node`, `frame`, …
    pub span_kind: String,
    /// Span location, e.g. `Netlist` or `frame 3`.
    pub span: String,
    /// Human-readable description.
    pub message: String,
}

/// The complete JSON report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JsonReport {
    /// All findings across all targets.
    pub diagnostics: Vec<JsonDiagnostic>,
    /// Count of `error` findings.
    pub errors: usize,
    /// Count of `warn` findings.
    pub warnings: usize,
    /// Count of `info` findings.
    pub infos: usize,
    /// Per-pass wall times, when the caller ran the timed runner.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub timings: Vec<JsonPassTiming>,
}

impl JsonReport {
    /// Builds the wire report from per-target diagnostic sets.
    pub fn from_targets<'a>(targets: impl IntoIterator<Item = (&'a str, &'a Diagnostics)>) -> Self {
        let mut diagnostics = Vec::new();
        let (mut errors, mut warnings, mut infos) = (0, 0, 0);
        for (name, diags) in targets {
            for d in diags.iter() {
                match d.severity {
                    Severity::Error => errors += 1,
                    Severity::Warn => warnings += 1,
                    Severity::Info => infos += 1,
                }
                diagnostics.push(JsonDiagnostic {
                    target: name.to_owned(),
                    code: d.code.to_owned(),
                    severity: d.severity.as_str().to_owned(),
                    span_kind: d.span.kind.as_str().to_owned(),
                    span: d.span.name.clone(),
                    message: d.message.clone(),
                });
            }
        }
        JsonReport {
            diagnostics,
            errors,
            warnings,
            infos,
            timings: Vec::new(),
        }
    }

    /// Attaches per-pass timings (builder style).
    #[must_use]
    pub fn with_timings(mut self, timings: Vec<JsonPassTiming>) -> Self {
        self.timings = timings;
        self
    }

    /// Serializes the report as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures (none occur for this type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

// ---------------------------------------------------------------------
// Gate errors rendered as diagnostics: the three existing validators
// (schema, flow, history consistency) emit through this shared type so
// gate errors and lint findings look identical.
// ---------------------------------------------------------------------

/// Maps a schema gate error ([`SchemaError`]) to a diagnostic.
///
/// Gate errors occupy the `HL0001`–`HL0019` range and are always
/// `error` severity: the schema cannot be built at all.
pub fn diagnose_schema_error(e: &SchemaError) -> Diagnostic {
    let (code, span) = match e {
        SchemaError::DuplicateEntityName(name) => ("HL0001", Span::entity(name)),
        SchemaError::UnknownEntity(name) => ("HL0002", Span::entity(name)),
        SchemaError::UnknownEntityId(id) => ("HL0003", Span::entity(&id.to_string())),
        SchemaError::MultipleFunctionalDeps { entity } => ("HL0004", Span::entity(entity)),
        SchemaError::FunctionalDepOnNonTool { entity, source } => {
            ("HL0005", Span::dependency(entity, source))
        }
        SchemaError::RequiredDependencyCycle { entities } => (
            "HL0006",
            Span {
                kind: SpanKind::Entity,
                name: entities.join(", "),
            },
        ),
        SchemaError::RequiredSelfDependency { entity } => ("HL0007", Span::entity(entity)),
        SchemaError::SubtypeCycle { entity } => ("HL0008", Span::entity(entity)),
        SchemaError::SubtypeKindMismatch { subtype, .. } => ("HL0009", Span::entity(subtype)),
        SchemaError::DuplicateDependency { source, target } => {
            ("HL0010", Span::dependency(target, source))
        }
        SchemaError::OptionalFunctionalDep { entity } => ("HL0011", Span::entity(entity)),
        SchemaError::AbstractEntityWithFunctionalDep { entity } => ("HL0012", Span::entity(entity)),
        SchemaError::InvalidComposite { entity } => ("HL0013", Span::entity(entity)),
        _ => ("HL0019", Span::target()),
    };
    Diagnostic::new(code, Severity::Error, span, e.to_string())
}

/// Maps a flow gate error ([`FlowError`]) to a diagnostic.
///
/// Flow gate errors occupy the `HL0020`–`HL0039` range and are always
/// `error` severity, except [`FlowError::IncompleteExpansion`], which
/// is a warning: the flow is structurally sound, merely not yet
/// runnable (the normal state of a flow under construction).
pub fn diagnose_flow_error(e: &FlowError) -> Diagnostic {
    if let FlowError::Schema(inner) = e {
        return diagnose_schema_error(inner);
    }
    let (code, severity, span) = match e {
        FlowError::NodeNotFound(id) => ("HL0020", Severity::Error, Span::node(id, "?")),
        FlowError::ExpandNeedsSpecialization { entity } => {
            ("HL0021", Severity::Error, Span::entity(entity))
        }
        FlowError::NothingToExpand { entity } => ("HL0022", Severity::Error, Span::entity(entity)),
        FlowError::AlreadyExpanded(id) => ("HL0023", Severity::Error, Span::node(id, "?")),
        FlowError::NotASubtype { entity, .. } => ("HL0024", Severity::Error, Span::entity(entity)),
        FlowError::SpecializeAfterExpand(id) => ("HL0025", Severity::Error, Span::node(id, "?")),
        FlowError::ReuseTypeMismatch { offered, .. } => {
            ("HL0026", Severity::Error, Span::entity(offered))
        }
        FlowError::NoDependencyPath { from, to } => {
            ("HL0027", Severity::Error, Span::dependency(to, from))
        }
        FlowError::EdgeNotInSchema { source, target } => {
            ("HL0028", Severity::Error, Span::dependency(target, source))
        }
        FlowError::DuplicateFunctionalEdge(id) => ("HL0029", Severity::Error, Span::node(id, "?")),
        FlowError::DuplicateEdge(s, t) => ("HL0030", Severity::Error, Span::subflow([s, t])),
        FlowError::Cycle => ("HL0031", Severity::Error, Span::target()),
        FlowError::IncompleteExpansion { entity, .. } => {
            ("HL0032", Severity::Warn, Span::entity(entity))
        }
        FlowError::SchemaMismatch => ("HL0033", Severity::Error, Span::target()),
        FlowError::UnknownFlow(name) => ("HL0034", Severity::Error, Span::file(name)),
        _ => ("HL0039", Severity::Error, Span::target()),
    };
    Diagnostic::new(code, severity, span, e.to_string())
}

/// Maps a design-history staleness report to a diagnostic (`HL0501`):
/// the consistency validator's findings rendered like any other lint.
pub fn diagnose_staleness(s: &Staleness) -> Diagnostic {
    Diagnostic::new(
        "HL0501",
        Severity::Warn,
        Span::instance(s.instance),
        s.to_string(),
    )
}
