//! The timed pass runner: every registry pass run individually, with
//! wall time and finding counts per code.
//!
//! `herclint --format json` reports a `timings` array so CI can watch
//! for pass-level performance regressions; the REPL's `lint` command
//! shows the same numbers. The runner never reads a clock itself — the
//! caller injects one (`hercules-analyze` stays free of ambient time;
//! binaries pass an `Instant`-based closure, tests pass a counter), so
//! analyses stay deterministic under the simulation harness.

use hercules_flow::TaskGraph;
use hercules_history::HistoryDb;
use hercules_schema::TaskSchema;
use serde::{Deserialize, Serialize};

use crate::diag::{diagnose_flow_error, Diagnostics};
use crate::history_passes::lint_history;
use crate::{flow_passes, hazard, schema_passes};

/// One pass's measured run: its code, wall time, and finding count
/// (after suppression).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassTiming {
    /// The pass's stable code (a fused family like `HL0501-HL0504`
    /// when several codes share one analysis).
    pub code: &'static str,
    /// Wall time in nanoseconds, as measured by the injected clock.
    pub nanos: u64,
    /// Findings the pass contributed (post-suppression).
    pub findings: usize,
}

/// A monotonically increasing nanosecond clock, injected by the caller.
pub type Clock<'a> = &'a mut dyn FnMut() -> u64;

fn timed(
    code: &'static str,
    out: &mut Diagnostics,
    clock: Clock<'_>,
    run: impl FnOnce(&mut Diagnostics),
) -> PassTiming {
    let before = out.len();
    let t0 = clock();
    run(out);
    let nanos = clock().saturating_sub(t0);
    PassTiming {
        code,
        nanos,
        findings: out.len() - before,
    }
}

/// Runs every `HL01xx` schema pass individually, timing each. Emits
/// exactly the diagnostics of [`crate::lint_schema`].
pub fn lint_schema_timed(
    schema: &TaskSchema,
    out: &mut Diagnostics,
    clock: Clock<'_>,
) -> Vec<PassTiming> {
    type Pass = fn(&TaskSchema, &mut Diagnostics);
    let passes: [(&'static str, Pass); 6] = [
        ("HL0102", schema_passes::inconstructible_entity),
        ("HL0103", schema_passes::unused_tool),
        ("HL0104", schema_passes::inert_subtype),
        ("HL0105", schema_passes::shadowed_construction),
        ("HL0106", schema_passes::tool_input_deadlock),
        ("HL0107", schema_passes::orphan_entity),
    ];
    passes
        .into_iter()
        .map(|(code, pass)| timed(code, out, clock, |out| pass(schema, out)))
        .collect()
}

/// Runs the flow gate plus every `HL02xx`/`HL03xx` pass individually,
/// timing each. Emits exactly the diagnostics of [`crate::lint_flow`].
pub fn lint_flow_timed(
    flow: &TaskGraph,
    out: &mut Diagnostics,
    clock: Clock<'_>,
) -> Vec<PassTiming> {
    let mut timings = vec![timed("HL0020-HL0039", out, clock, |out| {
        for e in flow.validate_all() {
            out.push(diagnose_flow_error(&e));
        }
    })];
    type Pass = fn(&TaskGraph, &mut Diagnostics);
    let passes: [(&'static str, Pass); 9] = [
        ("HL0201", flow_passes::abstract_node),
        ("HL0202", flow_passes::incomplete_expansion),
        ("HL0203", flow_passes::duplicate_expansion),
        ("HL0204", flow_passes::inert_subflow),
        ("HL0205", flow_passes::unconsumed_tool),
        ("HL0301", hazard::lint_write_write),
        ("HL0302", hazard::lint_read_write),
        ("HL0303", hazard::lint_family_overlap),
        ("HL0312", hazard::lint_barrier_limited),
    ];
    timings.extend(
        passes
            .into_iter()
            .map(|(code, pass)| timed(code, out, clock, |out| pass(flow, out))),
    );
    timings
}

/// Runs the `HL05xx` consistency family, timed as one unit — the
/// history passes share a single fixpoint solve (HL0506 aggregates
/// HL0504's verdicts), so splitting their wall time would be fiction.
/// The session-layer HL0505 runs elsewhere.
pub fn lint_history_timed(
    db: &HistoryDb,
    out: &mut Diagnostics,
    clock: Clock<'_>,
) -> Vec<PassTiming> {
    vec![timed("HL0501-HL0506", out, clock, |out| {
        let _ = lint_history(db, out);
    })]
}

/// A pass timing on the JSON wire (`herclint --format json`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JsonPassTiming {
    /// Name of the lint target the pass ran over.
    pub target: String,
    /// The pass's stable code (or fused family).
    pub code: String,
    /// Wall time in nanoseconds.
    pub nanos: u64,
    /// Findings the pass contributed.
    pub findings: usize,
}

impl JsonPassTiming {
    /// Converts measured timings for one target to the wire form.
    pub fn from_timings(target: &str, timings: &[PassTiming]) -> Vec<JsonPassTiming> {
        timings
            .iter()
            .map(|t| JsonPassTiming {
                target: target.to_owned(),
                code: t.code.to_owned(),
                nanos: t.nanos,
                findings: t.findings,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use hercules_flow::fixtures as flow_fixtures;
    use hercules_schema::fixtures as schema_fixtures;

    use super::*;
    use crate::{lint_flow, lint_schema};

    /// A deterministic clock: each read advances one "nanosecond".
    fn ticker() -> impl FnMut() -> u64 {
        let mut t = 0u64;
        move || {
            t += 1;
            t
        }
    }

    #[test]
    fn timed_schema_lint_matches_untimed() {
        let schema = schema_fixtures::fig1();
        let mut plain = Diagnostics::new();
        lint_schema(&schema, &mut plain);
        let mut timed = Diagnostics::new();
        let mut clock = ticker();
        let timings = lint_schema_timed(&schema, &mut timed, &mut clock);
        plain.sort();
        timed.sort();
        assert_eq!(plain.render_text(), timed.render_text());
        assert_eq!(timings.len(), 6);
        assert_eq!(
            timings.iter().map(|t| t.findings).sum::<usize>(),
            plain.len()
        );
    }

    #[test]
    fn timed_flow_lint_matches_untimed() {
        let schema = Arc::new(schema_fixtures::fig1());
        let flow = flow_fixtures::fig5(schema).unwrap();
        let mut plain = Diagnostics::new();
        lint_flow(&flow, &mut plain);
        let mut timed = Diagnostics::new();
        let mut clock = ticker();
        let timings = lint_flow_timed(&flow, &mut timed, &mut clock);
        plain.sort();
        timed.sort();
        assert_eq!(plain.render_text(), timed.render_text());
        assert_eq!(timings.len(), 10);
        // The injected clock ticks twice per pass; nothing else reads it.
        assert!(timings.iter().all(|t| t.nanos == 1));
    }
}
