//! Schema lint passes (`HL01xx`).
//!
//! These run over §3.1 structures: entity types, functional/data
//! dependency arcs, optional (loop-breaking) arcs, subtype forests, and
//! composite annotations. The build gate already rejects malformed
//! schemas; these passes find *legal but broken-in-practice* designs —
//! entities no tool run can ever produce, subtypes that change nothing,
//! tool-typed inputs that deadlock construction.

use std::collections::HashMap;

use hercules_schema::{SchemaSpec, TaskSchema};

use crate::diag::{Diagnostic, Diagnostics, Severity, Span};

/// Runs every schema pass over a valid schema.
pub fn lint_schema(schema: &TaskSchema, out: &mut Diagnostics) {
    inconstructible_entity(schema, out);
    unused_tool(schema, out);
    inert_subtype(schema, out);
    shadowed_construction(schema, out);
    tool_input_deadlock(schema, out);
    orphan_entity(schema, out);
}

/// HL0101: required-dependency cycles detected directly on a
/// [`SchemaSpec`], before the build gate. The gate reports the same
/// condition as `HL0006` but stops at the first error; this pass runs
/// even when the spec has other problems, so a broken spec still gets a
/// complete cycle report. Arcs naming unknown entities are ignored
/// (they are reported separately by the gate).
pub fn spec_cycle_pass(spec: &SchemaSpec, out: &mut Diagnostics) {
    let index: HashMap<&str, usize> = spec
        .entities
        .iter()
        .enumerate()
        .map(|(i, e)| (e.name.as_str(), i))
        .collect();
    let n = spec.entities.len();
    let mut indegree = vec![0usize; n];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for dep in &spec.deps {
        if dep.optional {
            continue;
        }
        let (Some(&s), Some(&t)) = (
            index.get(dep.source.as_str()),
            index.get(dep.target.as_str()),
        ) else {
            continue;
        };
        indegree[t] += 1;
        dependents[s].push(t);
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut seen = 0usize;
    while let Some(i) = ready.pop() {
        seen += 1;
        for &t in &dependents[i] {
            indegree[t] -= 1;
            if indegree[t] == 0 {
                ready.push(t);
            }
        }
    }
    if seen == n {
        return;
    }
    let members: Vec<&str> = (0..n)
        .filter(|&i| indegree[i] > 0)
        .map(|i| spec.entities[i].name.as_str())
        .collect();
    out.push(Diagnostic::new(
        "HL0101",
        Severity::Error,
        Span::entity(&members.join(", ")),
        format!(
            "required dependencies cycle through [{}] and no optional arc breaks the loop; \
             construction of these entities can never finish",
            members.join(", ")
        ),
    ));
}

/// HL0102: an entity that declares data dependencies but has no way to
/// come into existence — no functional dependency, not a composite, and
/// no constructible subtype. It is unreachable from any tool output,
/// yet its declared inputs suggest it was meant to be constructed.
pub(crate) fn inconstructible_entity(schema: &TaskSchema, out: &mut Diagnostics) {
    for id in schema.entity_ids() {
        if !schema.supertype_chain(id).is_empty() {
            continue; // subtype defects get the more specific HL0104/HL0105
        }
        if schema.data_deps(id).next().is_some() && !schema.is_constructible(id) {
            let e = schema.entity(id);
            out.push(Diagnostic::new(
                "HL0102",
                Severity::Warn,
                Span::entity(e.name()),
                format!(
                    "`{}` declares data dependencies but no tool, composition, or subtype \
                     produces it; it is unreachable from any tool output",
                    e.name()
                ),
            ));
        }
    }
}

/// HL0103: a tool that no construction rule references — neither the
/// tool itself nor any of its supertypes is the source of any arc, and
/// it has no subtypes that could be referenced in its place.
pub(crate) fn unused_tool(schema: &TaskSchema, out: &mut Diagnostics) {
    for id in schema.entity_ids() {
        let e = schema.entity(id);
        if !e.kind().is_tool() || !schema.subtypes(id).is_empty() {
            continue;
        }
        let mut family = vec![id];
        family.extend(schema.supertype_chain(id));
        if family
            .iter()
            .all(|&f| schema.dependents_of(f).next().is_none())
        {
            out.push(Diagnostic::new(
                "HL0103",
                Severity::Warn,
                Span::entity(e.name()),
                format!(
                    "tool `{}` is not referenced by any functional or data dependency; \
                     no task can ever invoke it",
                    e.name()
                ),
            ));
        }
    }
}

/// HL0104: a subtype that *never specializes*. With no construction
/// method of its own, no ancestor method to inherit, no dependencies,
/// and no further subtypes, selecting it over its supertype is a no-op.
pub(crate) fn inert_subtype(schema: &TaskSchema, out: &mut Diagnostics) {
    for id in schema.entity_ids() {
        let chain = schema.supertype_chain(id);
        if chain.is_empty() || schema.is_constructible(id) {
            continue;
        }
        if chain.iter().any(|&a| schema.functional_dep(a).is_some()) {
            continue; // an inherited method makes this HL0105's case
        }
        if schema.deps_of(id).is_empty() && schema.subtypes(id).is_empty() {
            let e = schema.entity(id);
            out.push(Diagnostic::new(
                "HL0104",
                Severity::Warn,
                Span::entity(e.name()),
                format!(
                    "subtype `{}` never specializes: it adds no construction method, \
                     dependencies, or further subtypes over `{}`",
                    e.name(),
                    schema.entity(chain[0]).name()
                ),
            ));
        }
    }
}

/// HL0105: a subtype that *shadows* an ancestor's construction method:
/// the ancestor has a functional dependency, but expansion of the
/// specialized node uses the subtype's — empty — dependency set, hiding
/// the method.
pub(crate) fn shadowed_construction(schema: &TaskSchema, out: &mut Diagnostics) {
    for id in schema.entity_ids() {
        let chain = schema.supertype_chain(id);
        if chain.is_empty() || schema.is_constructible(id) {
            continue;
        }
        let Some(&a) = chain.iter().find(|&&a| schema.functional_dep(a).is_some()) else {
            continue;
        };
        let e = schema.entity(id);
        out.push(Diagnostic::new(
            "HL0105",
            Severity::Warn,
            Span::entity(e.name()),
            format!(
                "subtype `{}` shadows the construction method of `{}`: specializing to it \
                 hides the ancestor's functional dependency and adds none of its own",
                e.name(),
                schema.entity(a).name()
            ),
        ));
    }
}

/// HL0106: a required *data* dependency on a tool entity that wants to
/// be constructed (it has data dependencies of its own) but cannot be
/// (no functional dependency, composition, or constructible subtype).
/// Any flow needing the dependent entity deadlocks waiting for a tool
/// no task can produce (§3.3 builds tools *during* design — Fig. 2 —
/// which is exactly when this wiring mistake happens).
pub(crate) fn tool_input_deadlock(schema: &TaskSchema, out: &mut Diagnostics) {
    for dep in schema.deps() {
        if !dep.is_data() || !dep.is_required() {
            continue;
        }
        let src = schema.entity(dep.source());
        if src.kind().is_tool()
            && schema.data_deps(dep.source()).next().is_some()
            && !schema.is_constructible(dep.source())
        {
            let target = schema.entity(dep.target());
            out.push(Diagnostic::new(
                "HL0106",
                Severity::Warn,
                Span::dependency(target.name(), src.name()),
                format!(
                    "`{}` requires tool `{}` as a data input, but that tool declares inputs \
                     and has no construction method: the dependency can deadlock",
                    target.name(),
                    src.name()
                ),
            ));
        }
    }
}

/// HL0107: a data entity that participates in nothing — no
/// dependencies, no dependents, no subtype relations. Dead weight in
/// the schema.
pub(crate) fn orphan_entity(schema: &TaskSchema, out: &mut Diagnostics) {
    for id in schema.entity_ids() {
        let e = schema.entity(id);
        if e.kind().is_data()
            && schema.deps_of(id).is_empty()
            && schema.dependents_of(id).next().is_none()
            && schema.supertype_chain(id).is_empty()
            && schema.subtypes(id).is_empty()
        {
            out.push(Diagnostic::new(
                "HL0107",
                Severity::Info,
                Span::entity(e.name()),
                format!(
                    "entity `{}` participates in no dependency or subtype relation",
                    e.name()
                ),
            ));
        }
    }
}
