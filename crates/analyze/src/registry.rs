//! The pass registry: every lint pass `herclint` runs, with its stable
//! code, layer, and default severity.
//!
//! Code ranges are allocated per layer:
//!
//! | range           | layer     | meaning                                  |
//! |-----------------|-----------|------------------------------------------|
//! | `HL0001`–`HL0019` | gate    | schema build/validation errors           |
//! | `HL0020`–`HL0039` | gate    | flow structural-validation errors        |
//! | `HL0100`–`HL0199` | schema  | schema lint passes                       |
//! | `HL0200`–`HL0299` | flow    | flow lint passes                         |
//! | `HL0300`–`HL0399` | hazard  | parallel-hazard detection                |
//! | `HL0400`–`HL0499` | workspace | journal/manifest invariant checks      |
//! | `HL0500`–`HL0599` | history/session | design-consistency findings: staleness, retrace cones, cache soundness, cross-session conflicts |

use std::fmt;

use crate::diag::Severity;

/// Which layer of the system a pass inspects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// Task-schema passes (§3.1 structures).
    Schema,
    /// Task-graph passes (§3.2 structures).
    Flow,
    /// Parallel-hazard detection over the engine's schedule (§3.3).
    Hazard,
    /// Durable-workspace journal/manifest invariants.
    Workspace,
    /// Design-history consistency (staleness).
    History,
    /// Cross-session conflict prediction over saved sessions.
    Session,
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Layer::Schema => "schema",
            Layer::Flow => "flow",
            Layer::Hazard => "hazard",
            Layer::Workspace => "workspace",
            Layer::History => "history",
            Layer::Session => "session",
        })
    }
}

/// Registry entry describing one lint pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassInfo {
    /// Stable diagnostic code the pass emits.
    pub code: &'static str,
    /// Layer the pass inspects.
    pub layer: Layer,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Severity of the pass's findings.
    pub severity: Severity,
}

/// Every registered lint pass, in code order. Gate errors (`HL00xx`)
/// are not passes — they are the three existing validators emitting
/// through the shared diagnostics type — so they are not listed here.
pub const PASSES: &[PassInfo] = &[
    PassInfo {
        code: "HL0101",
        layer: Layer::Schema,
        name: "unsatisfiable-cycle",
        summary: "dependency cycle not broken by any optional arc: construction can never finish",
        severity: Severity::Error,
    },
    PassInfo {
        code: "HL0102",
        layer: Layer::Schema,
        name: "inconstructible-entity",
        summary: "entity declares inputs but no tool, composition, or subtype can produce it",
        severity: Severity::Warn,
    },
    PassInfo {
        code: "HL0103",
        layer: Layer::Schema,
        name: "unused-tool",
        summary: "tool entity is not referenced by any construction rule",
        severity: Severity::Warn,
    },
    PassInfo {
        code: "HL0104",
        layer: Layer::Schema,
        name: "inert-subtype",
        summary: "subtype never specializes: no construction method, dependencies, or subtypes",
        severity: Severity::Warn,
    },
    PassInfo {
        code: "HL0105",
        layer: Layer::Schema,
        name: "shadowed-construction",
        summary: "subtype hides its supertype's construction method and adds none of its own",
        severity: Severity::Warn,
    },
    PassInfo {
        code: "HL0106",
        layer: Layer::Schema,
        name: "tool-input-deadlock",
        summary: "required data input is a tool no task can produce: construction deadlocks",
        severity: Severity::Warn,
    },
    PassInfo {
        code: "HL0107",
        layer: Layer::Schema,
        name: "orphan-entity",
        summary: "entity participates in no dependency or subtype relation",
        severity: Severity::Info,
    },
    PassInfo {
        code: "HL0201",
        layer: Layer::Flow,
        name: "abstract-node",
        summary: "node's entity is abstract: warn for interior nodes, advisory for bindable leaves",
        severity: Severity::Warn,
    },
    PassInfo {
        code: "HL0202",
        layer: Layer::Flow,
        name: "incomplete-expansion",
        summary: "interior node is missing required inputs; the flow is not yet runnable",
        severity: Severity::Warn,
    },
    PassInfo {
        code: "HL0203",
        layer: Layer::Flow,
        name: "duplicate-expansion",
        summary: "two interior nodes construct the same entity from the same inputs",
        severity: Severity::Warn,
    },
    PassInfo {
        code: "HL0204",
        layer: Layer::Flow,
        name: "inert-subflow",
        summary: "connected component contains no task to execute",
        severity: Severity::Info,
    },
    PassInfo {
        code: "HL0205",
        layer: Layer::Flow,
        name: "unconsumed-tool",
        summary: "tool node feeds no task",
        severity: Severity::Warn,
    },
    PassInfo {
        code: "HL0301",
        layer: Layer::Hazard,
        name: "write-write-hazard",
        summary: "two concurrently schedulable subtasks both produce the same entity type",
        severity: Severity::Warn,
    },
    PassInfo {
        code: "HL0302",
        layer: Layer::Hazard,
        name: "read-write-hazard",
        summary: "a subtask reads an instance type a concurrent subtask produces",
        severity: Severity::Warn,
    },
    PassInfo {
        code: "HL0303",
        layer: Layer::Hazard,
        name: "family-overlap",
        summary: "concurrent subtasks touch the same subtype family (version-order sensitivity)",
        severity: Severity::Info,
    },
    PassInfo {
        code: "HL0312",
        layer: Layer::Hazard,
        name: "barrier-limited-flow",
        summary: "wave widths vary enough that barrier scheduling idles half the workers",
        severity: Severity::Warn,
    },
    PassInfo {
        code: "HL0401",
        layer: Layer::Workspace,
        name: "manifest-missing",
        summary: "workspace has no readable MANIFEST",
        severity: Severity::Error,
    },
    PassInfo {
        code: "HL0402",
        layer: Layer::Workspace,
        name: "manifest-corrupt",
        summary: "MANIFEST is not a valid manifest document",
        severity: Severity::Error,
    },
    PassInfo {
        code: "HL0403",
        layer: Layer::Workspace,
        name: "checkpoint-missing",
        summary: "the checkpoint named by MANIFEST does not exist",
        severity: Severity::Error,
    },
    PassInfo {
        code: "HL0404",
        layer: Layer::Workspace,
        name: "checkpoint-corrupt",
        summary: "checkpoint does not restore to a session",
        severity: Severity::Error,
    },
    PassInfo {
        code: "HL0405",
        layer: Layer::Workspace,
        name: "journal-missing",
        summary: "the journal named by MANIFEST does not exist",
        severity: Severity::Error,
    },
    PassInfo {
        code: "HL0406",
        layer: Layer::Workspace,
        name: "torn-journal-tail",
        summary: "journal ends in a torn or corrupt tail (recovery will truncate it)",
        severity: Severity::Warn,
    },
    PassInfo {
        code: "HL0407",
        layer: Layer::Workspace,
        name: "journal-frame-corrupt",
        summary: "a checksummed journal frame does not parse as an operation",
        severity: Severity::Error,
    },
    PassInfo {
        code: "HL0408",
        layer: Layer::Workspace,
        name: "journal-replay-failure",
        summary: "a journaled operation does not replay against the checkpoint",
        severity: Severity::Error,
    },
    PassInfo {
        code: "HL0409",
        layer: Layer::Workspace,
        name: "orphan-generation",
        summary: "generation files not named by MANIFEST are lying around",
        severity: Severity::Info,
    },
    PassInfo {
        code: "HL0410",
        layer: Layer::Workspace,
        name: "segment-chain-broken",
        summary: "MANIFEST segment chain has a gap, duplicate, misorder, or foreign generation",
        severity: Severity::Error,
    },
    PassInfo {
        code: "HL0411",
        layer: Layer::Workspace,
        name: "quarantined-data",
        summary: "quarantine files from a past recovery or scrub await review",
        severity: Severity::Info,
    },
    PassInfo {
        code: "HL0412",
        layer: Layer::Workspace,
        name: "stale-lease",
        summary: "LEASE file is unparsable, expired, or superseded by a takeover",
        severity: Severity::Warn,
    },
    PassInfo {
        code: "HL0501",
        layer: Layer::History,
        name: "stale-instance",
        summary: "derived instance is out of date with respect to a newer input version",
        severity: Severity::Warn,
    },
    PassInfo {
        code: "HL0502",
        layer: Layer::History,
        name: "transitively-stale",
        summary: "instance is current w.r.t. direct inputs but a superseded version reaches it",
        severity: Severity::Warn,
    },
    PassInfo {
        code: "HL0503",
        layer: Layer::History,
        name: "retrace-cone",
        summary: "goal instance needs retracing; reports what a retrace would cut and re-run",
        severity: Severity::Info,
    },
    PassInfo {
        code: "HL0504",
        layer: Layer::History,
        name: "under-keyed-derivation",
        summary: "derivation consumed an input its task schema never declared (cache unsound)",
        severity: Severity::Warn,
    },
    PassInfo {
        code: "HL0505",
        layer: Layer::Session,
        name: "cross-session-conflict",
        summary: "two sessions' flows touch the same entity family with at least one writer",
        severity: Severity::Warn,
    },
    PassInfo {
        code: "HL0506",
        layer: Layer::History,
        name: "cache-ineligible-tool",
        summary: "tool produced under-keyed derivations, so its results must not be content-cached",
        severity: Severity::Warn,
    },
];

/// Looks a pass up by code.
pub fn pass(code: &str) -> Option<&'static PassInfo> {
    PASSES.iter().find(|p| p.code == code)
}

/// Renders the registry as a GitHub-flavored markdown table — the
/// single source of truth behind the code listings in `DESIGN.md` and
/// `README.md` (a drift test regenerates and compares them).
pub fn render_markdown_table() -> String {
    let mut out = String::from(
        "| code | layer | severity | name | finds |\n\
         |------|-------|----------|------|-------|\n",
    );
    for p in PASSES {
        out.push_str(&format!(
            "| `{}` | {} | {} | {} | {} |\n",
            p.code,
            p.layer,
            p.severity.as_str(),
            p.name,
            p.summary
        ));
    }
    out
}

/// Renders the registry as a table (for `herclint --list-passes`).
pub fn render_passes() -> String {
    let mut out = String::new();
    for p in PASSES {
        out.push_str(&format!(
            "{}  {:9} {:5} {:24} {}\n",
            p.code,
            p.layer.to_string(),
            p.severity.as_str(),
            p.name,
            p.summary
        ));
    }
    out
}
