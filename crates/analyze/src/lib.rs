//! `hercules-analyze` — the analysis engine behind `herclint`.
//!
//! The paper's framework trusts its inputs a great deal: schemas are
//! assumed sensible once they build, flows are assumed useful once they
//! validate, §3.3's parallel execution of disjoint sub-flows is assumed
//! safe, and cached results are assumed current. This crate is the
//! skeptic. It runs a registry of lint passes ([`registry::PASSES`])
//! over a schema, a flow, or a design history, and reports *all*
//! findings as structured [`Diagnostic`]s: a stable code (`HL0103`), a
//! severity, a span naming the offending entity type / flow node /
//! instance, and a human message — renderable as text or JSON,
//! suppressible per code.
//!
//! The pass layers living in this crate:
//!
//! * **schema** (`HL01xx`, [`schema_passes`]) — legal-but-broken §3.1
//!   designs: unbreakable dependency cycles, entities unreachable from
//!   any tool output, subtypes that shadow or never specialize,
//!   tool-typed data inputs that deadlock.
//! * **flow** (`HL02xx`, [`flow_passes`]) — §3.2 task graphs that can
//!   never run or contain pointless work: abstract nodes, incomplete
//!   expansions, redundant duplicate expansions, dead sub-flows.
//! * **hazard** (`HL03xx`, [`hazard`]) — write/write and read-vs-write
//!   conflicts between concurrently schedulable subtasks (§3.3).
//! * **history** (`HL05xx`, [`history_passes`]) — design-consistency
//!   findings over the committed history: direct and transitive
//!   staleness, retrace cones, under-keyed derivations, and the
//!   tools those derivations make cache-ineligible. These are
//!   *dataflow analyses* over the [`dataflow`] fixpoint framework, and
//!   [`HistoryLinter`] runs them **incrementally**: after an edit, only
//!   the dirty cone of the reverse-dependency index is re-analyzed.
//!
//! The session-layer passes (`HL04xx` workspace invariants, `HL0505`
//! cross-session conflict prediction) need the `hercules` session types
//! and live in `hercules::audit`; the `herclint` binary ships with that
//! crate. The timed pass runner ([`runner`]) measures wall time per
//! pass through an injected clock — this crate never reads ambient time
//! or the filesystem (enforced by the `env_hygiene` test).
//!
//! The three existing gate validators (schema build, flow structure,
//! history consistency) emit through the same diagnostics type via
//! [`diagnose_schema_error`], [`diagnose_flow_error`], and
//! [`diagnose_staleness`], so gate errors and lint findings render
//! identically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataflow;
pub mod diag;
pub mod flow_passes;
pub mod hazard;
pub mod history_passes;
pub mod registry;
pub mod runner;
pub mod schema_passes;

pub use diag::{
    diagnose_flow_error, diagnose_schema_error, diagnose_staleness, Diagnostic, Diagnostics,
    JsonDiagnostic, JsonReport, LintConfig, Severity, Span, SpanKind,
};
pub use history_passes::{lint_history, HistoryLinter, HistoryLinterSpec, LintStats};
pub use registry::{pass, render_markdown_table, render_passes, Layer, PassInfo, PASSES};
pub use runner::{
    lint_flow_timed, lint_history_timed, lint_schema_timed, JsonPassTiming, PassTiming,
};

use hercules_flow::TaskGraph;
use hercules_schema::{SchemaSpec, TaskSchema};

/// Lints a built (already gate-valid) schema: runs every `HL01xx` pass.
pub fn lint_schema(schema: &TaskSchema, out: &mut Diagnostics) {
    schema_passes::lint_schema(schema, out);
}

/// Lints a raw [`SchemaSpec`]: the cycle pass runs directly on the spec
/// (so a broken spec still gets a complete cycle report), then the
/// build gate's errors are reported through the shared diagnostics
/// type, and — when the build succeeds — the schema passes run.
/// Returns the built schema when the gate admitted it.
pub fn lint_schema_spec(spec: &SchemaSpec, out: &mut Diagnostics) -> Option<TaskSchema> {
    schema_passes::spec_cycle_pass(spec, out);
    match spec.build() {
        Ok(schema) => {
            lint_schema(&schema, out);
            Some(schema)
        }
        Err(e) => {
            // The spec-level cycle pass already reported cycles with
            // full membership; don't repeat the gate's version.
            let d = diagnose_schema_error(&e);
            if d.code != "HL0006" && d.code != "HL0007" {
                out.push(d);
            }
            None
        }
    }
}

/// Lints a task graph: gate errors from [`TaskGraph::validate_all`]
/// first (rendered through the shared type), then the `HL02xx` flow
/// passes, then — when the graph is acyclic — the `HL03xx` hazard
/// passes.
pub fn lint_flow(flow: &TaskGraph, out: &mut Diagnostics) {
    for e in flow.validate_all() {
        out.push(diagnose_flow_error(&e));
    }
    flow_passes::lint_flow_passes(flow, out);
    hazard::lint_hazards(flow, out);
    hazard::lint_barrier_limited(flow, out);
}
