//! Workspace lint passes (`HL04xx`): journal/manifest invariant checks
//! over a saved durable workspace (`crates/core/src/store.rs` layout).
//!
//! The layout under audit: a `MANIFEST` JSON document naming the
//! current generation's `checkpoint-N.json` (a [`SessionSpec`]) and
//! `journal-N.log` (CRC32-framed [`JournalOp`] records). `herclint
//! --workspace <dir>` checks every invariant [`Workspace::open_session`]
//! relies on — without mutating anything: recovery *truncates* a torn
//! journal tail, the linter merely reports it.

use std::path::Path;

use hercules::exec::EncapsulationRegistry;
use hercules::store::scan_frames;
use hercules::{JournalOp, Session, SessionSpec};
use serde::Deserialize;

use crate::diag::{Diagnostic, Diagnostics, Severity, Span};
use crate::lint_session;

/// Mirror of the store's private manifest document. The store owns the
/// write path; the linter only needs the read shape, so it keeps its
/// own deserializer rather than widening the store's API.
#[derive(Debug, Deserialize)]
struct ManifestDoc {
    generation: u64,
    checkpoint: String,
    journal: String,
}

/// Lints a durable workspace directory. Each invariant violation is
/// one diagnostic; once the checkpoint restores and the journal
/// replays cleanly, the recovered session is linted like a live one
/// (schema, flow, hazard, and staleness passes).
pub fn lint_workspace(root: &Path, out: &mut Diagnostics) {
    let manifest_path = root.join("MANIFEST");
    let text = match std::fs::read_to_string(&manifest_path) {
        Ok(text) => text,
        Err(e) => {
            out.push(Diagnostic::new(
                "HL0401",
                Severity::Error,
                Span::file("MANIFEST"),
                format!("workspace has no readable MANIFEST: {e}"),
            ));
            return;
        }
    };
    let manifest: ManifestDoc = match serde_json::from_str(&text) {
        Ok(m) => m,
        Err(e) => {
            out.push(Diagnostic::new(
                "HL0402",
                Severity::Error,
                Span::file("MANIFEST"),
                format!("MANIFEST is not a valid manifest document: {e}"),
            ));
            return;
        }
    };

    orphan_generations(root, &manifest, out);

    let session = restore_checkpoint(root, &manifest, out);
    let replayed = check_journal(root, &manifest, session, out);
    if let Some(session) = replayed {
        lint_session(&session, out);
    }
}

/// HL0403/HL0404: the checkpoint named by MANIFEST must exist, parse,
/// and restore. Restoration uses an empty encapsulation registry —
/// journal replay is extensional (recorded instances and reports, no
/// tool execution), so no real tool bindings are needed.
fn restore_checkpoint(
    root: &Path,
    manifest: &ManifestDoc,
    out: &mut Diagnostics,
) -> Option<Session> {
    let text = match std::fs::read_to_string(root.join(&manifest.checkpoint)) {
        Ok(text) => text,
        Err(e) => {
            out.push(Diagnostic::new(
                "HL0403",
                Severity::Error,
                Span::file(&manifest.checkpoint),
                format!(
                    "checkpoint `{}` named by MANIFEST (generation {}) is unreadable: {e}",
                    manifest.checkpoint, manifest.generation
                ),
            ));
            return None;
        }
    };
    let spec = match SessionSpec::from_json(&text) {
        Ok(spec) => spec,
        Err(e) => {
            out.push(Diagnostic::new(
                "HL0404",
                Severity::Error,
                Span::file(&manifest.checkpoint),
                format!("checkpoint does not parse as a session: {e}"),
            ));
            return None;
        }
    };
    match spec.restore_with(|_| EncapsulationRegistry::new()) {
        Ok(session) => Some(session),
        Err(e) => {
            out.push(Diagnostic::new(
                "HL0404",
                Severity::Error,
                Span::file(&manifest.checkpoint),
                format!("checkpoint does not restore to a session: {e}"),
            ));
            None
        }
    }
}

/// HL0405–HL0408: the journal must exist; its tail may be torn (warn —
/// recovery truncates it); every checksummed frame must parse as a
/// [`JournalOp`]; every parsed op must replay against the checkpoint.
/// Returns the fully replayed session when everything is clean enough
/// to keep linting.
fn check_journal(
    root: &Path,
    manifest: &ManifestDoc,
    session: Option<Session>,
    out: &mut Diagnostics,
) -> Option<Session> {
    let buf = match std::fs::read(root.join(&manifest.journal)) {
        Ok(buf) => buf,
        Err(e) => {
            out.push(Diagnostic::new(
                "HL0405",
                Severity::Error,
                Span::file(&manifest.journal),
                format!(
                    "journal `{}` named by MANIFEST (generation {}) is unreadable: {e}",
                    manifest.journal, manifest.generation
                ),
            ));
            return session;
        }
    };
    let scan = scan_frames(&buf);
    if scan.trailing > 0 {
        out.push(Diagnostic::new(
            "HL0406",
            Severity::Warn,
            Span::file(&manifest.journal),
            format!(
                "journal ends in a torn or corrupt tail of {} byte(s) after {} valid frame(s); \
                 recovery will truncate it",
                scan.trailing,
                scan.payloads.len()
            ),
        ));
    }
    let mut session = session;
    let mut replay_ok = session.is_some();
    for (i, payload) in scan.payloads.iter().enumerate() {
        let op: JournalOp = match serde_json::from_slice(payload) {
            Ok(op) => op,
            Err(e) => {
                out.push(Diagnostic::new(
                    "HL0407",
                    Severity::Error,
                    Span::frame(i),
                    format!("checksummed journal frame does not parse as an operation: {e}"),
                ));
                replay_ok = false;
                continue;
            }
        };
        if !replay_ok {
            continue; // one failure poisons everything downstream
        }
        if let Some(s) = session.as_mut() {
            if let Err(e) = op.replay(s) {
                out.push(Diagnostic::new(
                    "HL0408",
                    Severity::Error,
                    Span::frame(i),
                    format!("journaled operation does not replay against the checkpoint: {e}"),
                ));
                replay_ok = false;
            }
        }
    }
    if replay_ok {
        session
    } else {
        None
    }
}

/// HL0409: generation files present on disk but not named by MANIFEST.
/// Harmless (checkpointing leaves the previous generation behind until
/// the next rotation) but worth knowing about when auditing disk use.
fn orphan_generations(root: &Path, manifest: &ManifestDoc, out: &mut Diagnostics) {
    let Ok(entries) = std::fs::read_dir(root) else {
        return;
    };
    let mut orphans: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|name| {
            let generation_file = (name.starts_with("checkpoint-") && name.ends_with(".json"))
                || (name.starts_with("journal-") && name.ends_with(".log"));
            generation_file && *name != manifest.checkpoint && *name != manifest.journal
        })
        .collect();
    orphans.sort();
    for name in orphans {
        out.push(Diagnostic::new(
            "HL0409",
            Severity::Info,
            Span::file(&name),
            format!(
                "`{name}` belongs to a generation MANIFEST does not reference \
                 (current generation is {})",
                manifest.generation
            ),
        ));
    }
}
