//! Workspace lint passes (`HL04xx`): journal/manifest invariant checks
//! over a saved durable workspace (`crates/core/src/store.rs` layout).
//!
//! The layout under audit: a `MANIFEST` JSON document naming the
//! current generation's `checkpoint-N.json` (a [`SessionSpec`]) and
//! its chain of `journal-N[.S].log` segments (CRC32-framed
//! [`JournalOp`] records), plus the optional `LEASE` lock file.
//! `herclint --workspace <dir>` checks every invariant
//! [`Workspace::open_session`] relies on — without mutating anything:
//! recovery *truncates* a torn journal tail and *quarantines* damaged
//! segments, the linter merely reports them.

use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

use hercules::exec::EncapsulationRegistry;
use hercules::store::scan_frames;
use hercules::{JournalOp, Session, SessionSpec};
use serde::Deserialize;

use crate::diag::{Diagnostic, Diagnostics, Severity, Span};
use crate::lint_session;

/// Mirror of the store's private manifest document. The store owns the
/// write path; the linter only needs the read shape, so it keeps its
/// own deserializer rather than widening the store's API.
#[derive(Debug, Deserialize)]
struct ManifestDoc {
    generation: u64,
    checkpoint: String,
    journal: String,
    #[serde(default)]
    segments: Vec<String>,
    #[serde(default)]
    fencing_token: u64,
}

impl ManifestDoc {
    /// The segment chain, oldest first. Pre-segment manifests name
    /// only `journal`; treat that as a one-segment chain.
    fn effective_segments(&self) -> Vec<String> {
        if self.segments.is_empty() {
            vec![self.journal.clone()]
        } else {
            self.segments.clone()
        }
    }
}

/// Mirror of the store's lease lock file.
#[derive(Debug, Deserialize)]
struct LeaseDoc {
    owner: String,
    expires_unix_ms: u64,
    token: u64,
}

/// Lints a durable workspace directory. Each invariant violation is
/// one diagnostic; once the checkpoint restores and the journal
/// replays cleanly, the recovered session is linted like a live one
/// (schema, flow, hazard, and staleness passes).
pub fn lint_workspace(root: &Path, out: &mut Diagnostics) {
    let manifest_path = root.join("MANIFEST");
    let text = match std::fs::read_to_string(&manifest_path) {
        Ok(text) => text,
        Err(e) => {
            out.push(Diagnostic::new(
                "HL0401",
                Severity::Error,
                Span::file("MANIFEST"),
                format!("workspace has no readable MANIFEST: {e}"),
            ));
            return;
        }
    };
    let manifest: ManifestDoc = match serde_json::from_str(&text) {
        Ok(m) => m,
        Err(e) => {
            out.push(Diagnostic::new(
                "HL0402",
                Severity::Error,
                Span::file("MANIFEST"),
                format!("MANIFEST is not a valid manifest document: {e}"),
            ));
            return;
        }
    };

    orphan_generations(root, &manifest, out);
    segment_chain(&manifest, out);
    quarantine_files(root, out);
    lease_state(root, &manifest, out);

    let session = restore_checkpoint(root, &manifest, out);
    let replayed = check_journal(root, &manifest, session, out);
    if let Some(session) = replayed {
        lint_session(&session, out);
    }
}

/// HL0403/HL0404: the checkpoint named by MANIFEST must exist, parse,
/// and restore. Restoration uses an empty encapsulation registry —
/// journal replay is extensional (recorded instances and reports, no
/// tool execution), so no real tool bindings are needed.
fn restore_checkpoint(
    root: &Path,
    manifest: &ManifestDoc,
    out: &mut Diagnostics,
) -> Option<Session> {
    let text = match std::fs::read_to_string(root.join(&manifest.checkpoint)) {
        Ok(text) => text,
        Err(e) => {
            out.push(Diagnostic::new(
                "HL0403",
                Severity::Error,
                Span::file(&manifest.checkpoint),
                format!(
                    "checkpoint `{}` named by MANIFEST (generation {}) is unreadable: {e}",
                    manifest.checkpoint, manifest.generation
                ),
            ));
            return None;
        }
    };
    let spec = match SessionSpec::from_json(&text) {
        Ok(spec) => spec,
        Err(e) => {
            out.push(Diagnostic::new(
                "HL0404",
                Severity::Error,
                Span::file(&manifest.checkpoint),
                format!("checkpoint does not parse as a session: {e}"),
            ));
            return None;
        }
    };
    match spec.restore_with(|_| EncapsulationRegistry::new()) {
        Ok(session) => Some(session),
        Err(e) => {
            out.push(Diagnostic::new(
                "HL0404",
                Severity::Error,
                Span::file(&manifest.checkpoint),
                format!("checkpoint does not restore to a session: {e}"),
            ));
            None
        }
    }
}

/// HL0405–HL0408: every segment of the journal chain must exist; a
/// tail may be torn (warn — recovery truncates or quarantines it);
/// every checksummed frame must parse as a [`JournalOp`]; every parsed
/// op must replay against the checkpoint. Returns the fully replayed
/// session when everything is clean enough to keep linting.
fn check_journal(
    root: &Path,
    manifest: &ManifestDoc,
    session: Option<Session>,
    out: &mut Diagnostics,
) -> Option<Session> {
    let segments = manifest.effective_segments();
    let mut session = session;
    let mut replay_ok = session.is_some();
    let mut frame_base = 0usize;
    for (si, segment) in segments.iter().enumerate() {
        let last = si + 1 == segments.len();
        let buf = match std::fs::read(root.join(segment)) {
            Ok(buf) => buf,
            Err(e) => {
                out.push(Diagnostic::new(
                    "HL0405",
                    Severity::Error,
                    Span::file(segment),
                    format!(
                        "journal segment `{segment}` named by MANIFEST (generation {}) \
                         is unreadable: {e}",
                        manifest.generation
                    ),
                ));
                return session;
            }
        };
        let scan = scan_frames(&buf);
        if scan.trailing > 0 {
            let consequence = if last {
                "recovery will truncate it"
            } else {
                "recovery will quarantine the damage and every later segment"
            };
            out.push(Diagnostic::new(
                "HL0406",
                Severity::Warn,
                Span::file(segment),
                format!(
                    "journal segment ends in a torn or corrupt tail of {} byte(s) after \
                     {} valid frame(s); {consequence}",
                    scan.trailing,
                    scan.payloads.len()
                ),
            ));
        }
        for (i, payload) in scan.payloads.iter().enumerate() {
            let frame = frame_base + i;
            let op: JournalOp = match serde_json::from_slice(payload) {
                Ok(op) => op,
                Err(e) => {
                    out.push(Diagnostic::new(
                        "HL0407",
                        Severity::Error,
                        Span::frame(frame),
                        format!("checksummed journal frame does not parse as an operation: {e}"),
                    ));
                    replay_ok = false;
                    continue;
                }
            };
            if !replay_ok {
                continue; // one failure poisons everything downstream
            }
            if let Some(s) = session.as_mut() {
                if let Err(e) = op.replay(s) {
                    out.push(Diagnostic::new(
                        "HL0408",
                        Severity::Error,
                        Span::frame(frame),
                        format!("journaled operation does not replay against the checkpoint: {e}"),
                    ));
                    replay_ok = false;
                }
            }
        }
        frame_base += scan.payloads.len();
    }
    if replay_ok {
        session
    } else {
        None
    }
}

/// Parses `journal-<gen>.log` / `journal-<gen>.<seq>.log` into
/// `(generation, sequence)`.
fn parse_segment_name(name: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix("journal-")?.strip_suffix(".log")?;
    match rest.split_once('.') {
        None => rest.parse().ok().map(|generation| (generation, 0)),
        Some((generation, seq)) => Some((generation.parse().ok()?, seq.parse().ok()?)),
    }
}

/// HL0410: the MANIFEST segment chain must be well-formed — every name
/// parseable, every segment in the manifest's generation, sequence
/// numbers exactly 0..n in order, and the `journal` field naming the
/// last (active) segment. A gap or disorder means recovery would
/// replay operations out of order or skip committed work.
fn segment_chain(manifest: &ManifestDoc, out: &mut Diagnostics) {
    let segments = manifest.effective_segments();
    for (i, name) in segments.iter().enumerate() {
        let Some((generation, seq)) = parse_segment_name(name) else {
            out.push(Diagnostic::new(
                "HL0410",
                Severity::Error,
                Span::file(name),
                format!(
                    "segment `{name}` does not match `journal-<gen>[.<seq>].log`; \
                     the chain cannot be ordered"
                ),
            ));
            continue;
        };
        if generation != manifest.generation {
            out.push(Diagnostic::new(
                "HL0410",
                Severity::Error,
                Span::file(name),
                format!(
                    "segment `{name}` belongs to generation {generation} but MANIFEST \
                     is at generation {}",
                    manifest.generation
                ),
            ));
        }
        if seq != i as u64 {
            out.push(Diagnostic::new(
                "HL0410",
                Severity::Error,
                Span::file(name),
                format!(
                    "segment chain position {i} holds sequence {seq}: the chain has a \
                     gap, duplicate, or misordered segment"
                ),
            ));
        }
    }
    if let Some(active) = segments.last() {
        if *active != manifest.journal {
            out.push(Diagnostic::new(
                "HL0410",
                Severity::Error,
                Span::file("MANIFEST"),
                format!(
                    "MANIFEST names `{}` as the active journal but the segment chain \
                     ends at `{active}`",
                    manifest.journal
                ),
            ));
        }
    }
}

/// HL0411: quarantine files (`*.quarantined-<k>`) left behind by scrub
/// or recovery. Each one holds data the store could not replay —
/// worth a human look before archiving or deleting.
fn quarantine_files(root: &Path, out: &mut Diagnostics) {
    let Ok(entries) = std::fs::read_dir(root) else {
        return;
    };
    let mut quarantined: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|name| name.contains(".quarantined-"))
        .collect();
    quarantined.sort();
    for name in quarantined {
        out.push(Diagnostic::new(
            "HL0411",
            Severity::Info,
            Span::file(&name),
            format!(
                "`{name}` is quarantined journal data a past recovery or scrub set \
                 aside; review it before archiving or deleting"
            ),
        ));
    }
}

/// HL0412: the LEASE lock file, when present, should be live and
/// should match the fencing token MANIFEST records. An expired lease
/// means the writer died (or forgot to close); a token behind the
/// manifest's means the lease was superseded by a takeover.
fn lease_state(root: &Path, manifest: &ManifestDoc, out: &mut Diagnostics) {
    let text = match std::fs::read_to_string(root.join("LEASE")) {
        Ok(text) => text,
        Err(_) => return, // no lease: the workspace is simply closed
    };
    let lease: LeaseDoc = match serde_json::from_str(&text) {
        Ok(lease) => lease,
        Err(e) => {
            out.push(Diagnostic::new(
                "HL0412",
                Severity::Warn,
                Span::file("LEASE"),
                format!("LEASE does not parse as a lease document: {e}"),
            ));
            return;
        }
    };
    let now_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    if lease.token < manifest.fencing_token {
        out.push(Diagnostic::new(
            "HL0412",
            Severity::Warn,
            Span::file("LEASE"),
            format!(
                "lease held by `{}` carries fencing token {} but MANIFEST is at {}: \
                 the writer was deposed by a takeover",
                lease.owner, lease.token, manifest.fencing_token
            ),
        ));
    } else if lease.expires_unix_ms < now_ms {
        out.push(Diagnostic::new(
            "HL0412",
            Severity::Warn,
            Span::file("LEASE"),
            format!(
                "lease held by `{}` expired at unix-ms {} (now {now_ms}): the writer \
                 died or forgot to close; the next open will take over",
                lease.owner, lease.expires_unix_ms
            ),
        ));
    }
}

/// HL0409: generation files present on disk but not named by MANIFEST.
/// Harmless (checkpointing leaves the previous generation behind until
/// the next rotation) but worth knowing about when auditing disk use.
fn orphan_generations(root: &Path, manifest: &ManifestDoc, out: &mut Diagnostics) {
    let Ok(entries) = std::fs::read_dir(root) else {
        return;
    };
    let segments = manifest.effective_segments();
    let mut orphans: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|name| {
            let generation_file = (name.starts_with("checkpoint-") && name.ends_with(".json"))
                || (name.starts_with("journal-") && name.ends_with(".log"));
            generation_file
                && *name != manifest.checkpoint
                && *name != manifest.journal
                && !segments.contains(name)
        })
        .collect();
    orphans.sort();
    for name in orphans {
        out.push(Diagnostic::new(
            "HL0409",
            Severity::Info,
            Span::file(&name),
            format!(
                "`{name}` belongs to a generation MANIFEST does not reference \
                 (current generation is {})",
                manifest.generation
            ),
        ));
    }
}
