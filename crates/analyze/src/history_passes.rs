//! The `HL05xx` consistency pass family: incremental dataflow analysis
//! over a committed design history.
//!
//! §3.3: "Queries into the design history can quickly determine whether
//! such retracing need occur." The [`HistoryLinter`] answers that query
//! *incrementally*: it keeps a [`RevDepIndex`] plus the fixpoint states
//! of a stale-reachability dataflow problem, and after an edit
//! re-analyzes only the dirty cone — the instances whose verdicts the
//! edit can have changed — while producing diagnostics byte-identical
//! to a full reanalysis.
//!
//! Four verdicts per instance:
//!
//! * **HL0501 stale-instance** — a direct input has a newer version
//!   (the registry's original staleness check, now answered from the
//!   index's `O(1)` newest-version cache);
//! * **HL0502 transitively-stale** — direct inputs are current, but a
//!   superseded version reaches the instance through intermediate
//!   derivations (the fixpoint reach-set is non-empty);
//! * **HL0503 retrace-cone** — for *goal* instances (nothing depends on
//!   them): a structured report of what retracing would cut and re-run,
//!   computed by [`RetraceCone`] — the same prediction
//!   `hercules_exec::retrace` consumes;
//! * **HL0504 under-keyed-derivation** — the derivation consumed an
//!   input its task schema never declared; content-addressed caching
//!   keyed on declared inputs would be unsound for such a tool.
//!
//! Plus one aggregated verdict per *tool*:
//!
//! * **HL0506 cache-ineligible-tool** — the tool produced at least one
//!   under-keyed derivation (HL0504), so none of its results may be
//!   served from the content-addressed execution cache: a cache keyed
//!   on the declared inputs would reuse an entry while one of the
//!   undeclared inputs changed.

use hercules_flow::declared_reads;
use hercules_history::{HistoryDb, HistoryError, InstanceId, RevDepIndex, RevDepIndexSpec};
use hercules_schema::EntityTypeId;
use serde::{Deserialize, Serialize};

use crate::dataflow::{solve_seeded, BitSet, DataflowProblem, Interval, JoinSemiLattice};
use crate::diag::{diagnose_staleness, Diagnostic, Diagnostics, Severity, Span, SpanKind};
use crate::registry;

/// Abstract state of one instance: which superseded versions reach it
/// (through non-version-predecessor data edges), plus the interval hull
/// of their ids — a product lattice, joined component-wise.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StaleState {
    /// Superseded instances (by raw id) reaching this instance.
    pub reach: BitSet,
    /// Interval hull of `reach`, for `O(1)` range reporting.
    pub versions: Interval,
}

impl JoinSemiLattice for StaleState {
    fn join_from(&mut self, other: &Self) -> bool {
        let a = self.reach.join_from(&other.reach);
        let b = self.versions.join_from(&other.versions);
        a || b
    }
}

/// The stale-reachability dataflow problem over a design history.
///
/// Transfer of an instance joins, over every derivation input except
/// the version predecessor (an edit is never stale w.r.t. the version
/// it edits), the input's state plus the input itself when superseded.
/// Tool references deliberately do not propagate — mirroring
/// [`HistoryDb::staleness_of`], which only inspects data inputs.
pub struct StaleReach<'a> {
    db: &'a HistoryDb,
    index: &'a RevDepIndex,
}

impl<'a> StaleReach<'a> {
    /// Creates the problem over `db` with `index` (which must cover the
    /// whole database).
    pub fn new(db: &'a HistoryDb, index: &'a RevDepIndex) -> StaleReach<'a> {
        StaleReach { db, index }
    }

    fn superseded(&self, id: InstanceId) -> bool {
        self.index
            .newest_version(id)
            .map(|n| n != id)
            .unwrap_or(false)
    }
}

impl DataflowProblem for StaleReach<'_> {
    type State = StaleState;

    fn num_nodes(&self) -> usize {
        self.db.len()
    }

    fn successors(&self, n: usize, out: &mut Vec<usize>) {
        let id = InstanceId::from_raw(n as u64);
        out.extend(self.index.dependents(id).iter().map(|d| d.raw() as usize));
    }

    fn transfer(&self, n: usize, states: &[StaleState]) -> StaleState {
        let id = InstanceId::from_raw(n as u64);
        let mut state = StaleState::default();
        let Ok(inst) = self.db.instance(id) else {
            return state;
        };
        let Some(d) = inst.derivation() else {
            return state;
        };
        let version_parent = self.index.version_parent(id);
        for &input in &d.inputs {
            if Some(input) == version_parent {
                continue;
            }
            state.join_from(&states[input.raw() as usize]);
            if self.superseded(input) {
                state.reach.insert(input.raw() as usize);
                state.versions.insert(input.raw());
            }
        }
        state
    }
}

/// Work metrics of the last lint run — what the incremental tests and
/// the REPL's `lint --incremental` report assert on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LintStats {
    /// Instances in the database when the run finished.
    pub instances_total: usize,
    /// Instances whose verdicts were recomputed (the cone, for an
    /// incremental run; everything, for a full run).
    pub instances_analyzed: usize,
    /// Transfer executions the fixpoint solver performed.
    pub solver_visits: usize,
    /// `true` when the run reused previous state.
    pub incremental: bool,
}

/// Cached verdicts of one instance, one slot per HL05xx code.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Verdicts {
    stale: Option<Diagnostic>,
    transitive: Option<Diagnostic>,
    cone: Option<Diagnostic>,
    keys: Option<Diagnostic>,
}

/// The incremental consistency engine: reverse-dependency index +
/// fixpoint states + per-instance verdict cache.
///
/// `lint_full` rebuilds everything from scratch; `lint_incremental`
/// folds in only what changed since the previous call on the same
/// linter. Both emit identical diagnostics for identical databases.
#[derive(Debug, Clone, Default)]
pub struct HistoryLinter {
    index: RevDepIndex,
    states: Vec<StaleState>,
    verdicts: Vec<Verdicts>,
    last_stats: LintStats,
}

impl HistoryLinter {
    /// Creates an empty linter; the first lint indexes the database.
    pub fn new() -> HistoryLinter {
        HistoryLinter::default()
    }

    /// Returns the work metrics of the most recent lint run.
    pub fn stats(&self) -> &LintStats {
        &self.last_stats
    }

    /// Returns the underlying reverse-dependency index.
    pub fn index(&self) -> &RevDepIndex {
        &self.index
    }

    /// Lints the history from scratch, discarding any previous state.
    ///
    /// # Errors
    ///
    /// Propagates lookup errors (none occur on a well-formed database).
    pub fn lint_full(&mut self, db: &HistoryDb, out: &mut Diagnostics) -> Result<(), HistoryError> {
        *self = HistoryLinter::new();
        self.run(db, out, false)
    }

    /// Lints the history incrementally: indexes the instances recorded
    /// since the previous call, re-solves the fixpoint seeded from the
    /// dirty cone, and recomputes only the cone's verdicts. On a fresh
    /// linter this degenerates to a full lint.
    ///
    /// # Errors
    ///
    /// Propagates lookup errors (none occur on a well-formed database).
    pub fn lint_incremental(
        &mut self,
        db: &HistoryDb,
        out: &mut Diagnostics,
    ) -> Result<(), HistoryError> {
        self.run(db, out, true)
    }

    fn run(
        &mut self,
        db: &HistoryDb,
        out: &mut Diagnostics,
        incremental: bool,
    ) -> Result<(), HistoryError> {
        let fresh = self.index.update(db)?;
        let cone = self.index.dirty_cone(db, &fresh)?;
        let seeds: Vec<usize> = cone.members.iter().map(|i| i.raw() as usize).collect();
        let problem = StaleReach::new(db, &self.index);
        let result = solve_seeded(&problem, &seeds, std::mem::take(&mut self.states));
        self.states = result.states;
        self.verdicts.resize_with(db.len(), Verdicts::default);
        for &id in &cone.members {
            self.verdicts[id.raw() as usize] = self.verdicts_of(db, id)?;
        }
        self.last_stats = LintStats {
            instances_total: db.len(),
            instances_analyzed: cone.members.len(),
            solver_visits: result.total_visits,
            incremental,
        };
        for v in &self.verdicts {
            for d in [&v.stale, &v.transitive, &v.cone, &v.keys]
                .into_iter()
                .flatten()
            {
                out.push(d.clone());
            }
        }

        // HL0506: aggregate the per-instance under-keyed verdicts by
        // the producing tool. One under-keyed derivation is enough to
        // make the whole tool cache-ineligible — a content cache keyed
        // on declared inputs would reuse its entries while one of the
        // undeclared inputs changed. Recomputed from the verdict cache,
        // so full and incremental runs agree by construction.
        let mut ineligible: std::collections::BTreeMap<String, usize> =
            std::collections::BTreeMap::new();
        for (raw, v) in self.verdicts.iter().enumerate() {
            if v.keys.is_none() {
                continue;
            }
            let inst = db.instance(InstanceId::from_raw(raw as u64))?;
            // Tool-less (composite) derivations have no tool to flag.
            let Some(tool) = inst.derivation().and_then(|d| d.tool) else {
                continue;
            };
            let tool_entity = db.instance(tool)?.entity();
            *ineligible
                .entry(db.schema().entity(tool_entity).name().to_owned())
                .or_insert(0) += 1;
        }
        for (tool, count) in &ineligible {
            out.push(Diagnostic::new(
                "HL0506",
                Severity::Warn,
                Span::entity(tool),
                format!(
                    "tool `{tool}` produced {count} under-keyed derivation(s) (HL0504); \
                     its results are cache-ineligible — a content cache keyed on the \
                     declared inputs would reuse them while undeclared inputs change"
                ),
            ));
        }
        Ok(())
    }

    /// Recomputes the four verdicts of one instance from the current
    /// index and fixpoint states.
    fn verdicts_of(&self, db: &HistoryDb, id: InstanceId) -> Result<Verdicts, HistoryError> {
        let mut v = Verdicts::default();
        let inst = db.instance(id)?;
        let Some(derivation) = inst.derivation() else {
            return Ok(v);
        };

        // HL0501: first direct input with a newer version, exactly as
        // `HistoryDb::staleness_of` — answered from the O(1) cache.
        let version_parent = self.index.version_parent(id);
        let mut direct = None;
        for &input in &derivation.inputs {
            if Some(input) == version_parent {
                continue;
            }
            let newest = self.index.newest_version(input)?;
            if newest != input {
                direct = Some(hercules_history::Staleness {
                    instance: id,
                    outdated_input: input,
                    newer_version: newest,
                });
                break;
            }
        }
        if let Some(s) = &direct {
            v.stale = Some(diagnose_staleness(s));
        }

        // HL0502: nothing direct, but the reach set is non-empty.
        let state = &self.states[id.raw() as usize];
        if direct.is_none() && !state.reach.is_empty() {
            let first = InstanceId::from_raw(state.reach.min().expect("non-empty") as u64);
            let newest = self.index.newest_version(first)?;
            let (lo, hi) = (
                state.versions.min().expect("non-empty"),
                state.versions.max().expect("non-empty"),
            );
            v.transitive = Some(Diagnostic::new(
                "HL0502",
                Severity::Warn,
                Span::instance(id),
                format!(
                    "instance {} is transitively out of date: {} superseded version(s) \
                     in i{}..i{} reach it through its derivation; e.g. {} has been \
                     superseded by {}",
                    id,
                    state.reach.len(),
                    lo,
                    hi,
                    first,
                    newest
                ),
            ));
        }

        // HL0503: a goal instance (nothing depends on it) that needs
        // retracing — report what the retrace would do.
        if self.index.dependents(id).is_empty() && (direct.is_some() || !state.reach.is_empty()) {
            let cone = self.index.retrace_cone(db, id)?;
            let cuts: Vec<String> = cone
                .cuts
                .iter()
                .map(|c| format!("{}->{}", c.superseded, c.newest))
                .collect();
            v.cone = Some(Diagnostic::new(
                "HL0503",
                Severity::Info,
                Span::instance(id),
                format!(
                    "retracing goal {} would cut {} superseded input(s) [{}] and \
                     re-run {} of {} recalled task(s)",
                    id,
                    cone.cuts.len(),
                    cuts.join(", "),
                    cone.rerun.len(),
                    cone.recall.len()
                ),
            ));
        }

        // HL0504: an input the task schema never declared.
        let schema = db.schema();
        let declared = declared_reads(schema, inst.entity());
        let is_declared = |e: EntityTypeId| {
            declared
                .iter()
                .any(|&s| s == e || schema.supertype_chain(e).contains(&s))
        };
        for &input in &derivation.inputs {
            let input_entity = db.instance(input)?.entity();
            if !is_declared(input_entity) {
                v.keys = Some(Diagnostic::new(
                    "HL0504",
                    Severity::Warn,
                    Span::instance(id),
                    format!(
                        "derivation of {} ({}) consumed {} ({}), which no data dependency \
                         of `{}` or its supertypes declares; content-addressed caching \
                         keyed on declared inputs would be unsound here",
                        id,
                        schema.entity(inst.entity()).name(),
                        input,
                        schema.entity(input_entity).name(),
                        schema.entity(inst.entity()).name()
                    ),
                ));
                break;
            }
        }
        Ok(v)
    }

    /// Captures the linter for persistence.
    pub fn to_spec(&self) -> HistoryLinterSpec {
        HistoryLinterSpec {
            index: hercules_history::RevDepIndexSpec::capture(&self.index),
            reach: self
                .states
                .iter()
                .map(|s| s.reach.iter().map(|i| i as u64).collect())
                .collect(),
            verdicts: self
                .verdicts
                .iter()
                .map(|v| VerdictsSpec {
                    stale: v.stale.as_ref().map(DiagSpec::capture),
                    transitive: v.transitive.as_ref().map(DiagSpec::capture),
                    cone: v.cone.as_ref().map(DiagSpec::capture),
                    keys: v.keys.as_ref().map(DiagSpec::capture),
                })
                .collect(),
        }
    }

    /// Restores a linter against `db`, validating the captured index
    /// fingerprint. Returns `None` when the spec does not describe this
    /// database (caller starts fresh). A restored linter may trail the
    /// database; the next incremental lint catches up.
    pub fn from_spec(spec: &HistoryLinterSpec, db: &HistoryDb) -> Option<HistoryLinter> {
        let index = spec.index.restore(db).ok()??;
        let n = index.watermark();
        if spec.reach.len() != n || spec.verdicts.len() != n {
            return None;
        }
        let states: Vec<StaleState> = spec
            .reach
            .iter()
            .map(|members| {
                let mut s = StaleState::default();
                for &m in members {
                    s.reach.insert(m as usize);
                    s.versions.insert(m);
                }
                s
            })
            .collect();
        fn slot(s: &Option<DiagSpec>) -> Option<Option<Diagnostic>> {
            match s {
                Some(d) => d.restore().map(Some),
                None => Some(None),
            }
        }
        let mut verdicts = Vec::with_capacity(n);
        for v in &spec.verdicts {
            verdicts.push(Verdicts {
                stale: slot(&v.stale)?,
                transitive: slot(&v.transitive)?,
                cone: slot(&v.cone)?,
                keys: slot(&v.keys)?,
            });
        }
        Some(HistoryLinter {
            index,
            states,
            verdicts,
            last_stats: LintStats::default(),
        })
    }
}

/// Serialized form of a [`HistoryLinter`]: the index spec plus the
/// fixpoint reach-sets and cached verdicts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistoryLinterSpec {
    /// The reverse-dependency index (with validation fingerprint).
    pub index: RevDepIndexSpec,
    /// Per-instance reach-set members (sorted raw ids).
    pub reach: Vec<Vec<u64>>,
    /// Per-instance cached verdicts.
    pub verdicts: Vec<VerdictsSpec>,
}

/// Serialized verdicts of one instance.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerdictsSpec {
    /// HL0501, if the instance is directly stale.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub stale: Option<DiagSpec>,
    /// HL0502, if superseded versions reach it indirectly.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub transitive: Option<DiagSpec>,
    /// HL0503, if it is a goal needing retracing.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub cone: Option<DiagSpec>,
    /// HL0504, if its derivation is under-keyed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub keys: Option<DiagSpec>,
}

/// A serialized [`Diagnostic`]. Codes are resolved back to their
/// `'static` registry entries on restore.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiagSpec {
    /// Stable code, e.g. `HL0502`.
    pub code: String,
    /// Severity name.
    pub severity: String,
    /// Span kind name.
    pub span_kind: String,
    /// Span location.
    pub span: String,
    /// Human-readable message.
    pub message: String,
}

impl DiagSpec {
    fn capture(d: &Diagnostic) -> DiagSpec {
        DiagSpec {
            code: d.code.to_owned(),
            severity: d.severity.as_str().to_owned(),
            span_kind: d.span.kind.as_str().to_owned(),
            span: d.span.name.clone(),
            message: d.message.clone(),
        }
    }

    fn restore(&self) -> Option<Diagnostic> {
        let info = registry::pass(&self.code)?;
        Some(Diagnostic::new(
            info.code,
            Severity::parse(&self.severity)?,
            Span {
                kind: SpanKind::parse(&self.span_kind)?,
                name: self.span.clone(),
            },
            self.message.clone(),
        ))
    }
}

/// One-shot full lint of a history database — the non-incremental entry
/// point used by `lint_session`.
///
/// # Errors
///
/// Propagates lookup errors (none occur on a well-formed database).
pub fn lint_history(db: &HistoryDb, out: &mut Diagnostics) -> Result<(), HistoryError> {
    HistoryLinter::new().lint_full(db, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hercules_history::{Derivation, Metadata};
    use hercules_schema::fixtures;
    use std::sync::Arc;

    fn extraction_db() -> (HistoryDb, Vec<InstanceId>) {
        let schema = Arc::new(fixtures::fig1());
        let mut db = HistoryDb::new(schema.clone());
        let t = |n: &str| schema.require(n).expect("known");
        let placer = db
            .record_primary(t("Placer"), Metadata::by("u"), b"placer")
            .expect("ok");
        let extractor = db
            .record_primary(t("Extractor"), Metadata::by("u"), b"ext")
            .expect("ok");
        let editor = db
            .record_primary(t("CircuitEditor"), Metadata::by("u"), b"ed")
            .expect("ok");
        let net = db
            .record_derived(
                t("EditedNetlist"),
                Metadata::by("u"),
                b"net",
                Derivation::by_tool(editor, []),
            )
            .expect("ok");
        let rules = db
            .record_primary(t("PlacementRules"), Metadata::by("u"), b"rules")
            .expect("ok");
        let l1 = db
            .record_derived(
                t("Layout"),
                Metadata::by("u"),
                b"l1",
                Derivation::by_tool(placer, [net, rules]),
            )
            .expect("ok");
        let x1 = db
            .record_derived(
                t("ExtractedNetlist"),
                Metadata::by("u"),
                b"x1",
                Derivation::by_tool(extractor, [l1]),
            )
            .expect("ok");
        (db, vec![placer, extractor, editor, net, rules, l1, x1])
    }

    fn edit_netlist(db: &mut HistoryDb, editor: InstanceId, from: InstanceId) -> InstanceId {
        db.record_derived(
            db.schema().require("EditedNetlist").expect("known"),
            Metadata::by("u"),
            b"net'",
            Derivation::by_tool(editor, [from]),
        )
        .expect("ok")
    }

    fn render(db: &HistoryDb, f: impl FnOnce(&HistoryDb, &mut Diagnostics)) -> String {
        let mut out = Diagnostics::new();
        f(db, &mut out);
        out.sort();
        out.render_text()
    }

    #[test]
    fn fresh_history_is_clean() {
        let (db, _) = extraction_db();
        let text = render(&db, |db, out| lint_history(db, out).expect("ok"));
        assert_eq!(text, "", "clean history should produce no findings");
    }

    #[test]
    fn editing_an_input_raises_the_whole_family() {
        let (mut db, ids) = extraction_db();
        let (editor, net, l1, x1) = (ids[2], ids[3], ids[5], ids[6]);
        edit_netlist(&mut db, editor, net);
        let mut out = Diagnostics::new();
        lint_history(&db, &mut out).expect("ok");
        let codes = out.codes();
        assert!(codes.contains("HL0501"), "l1 is directly stale: {codes:?}");
        assert!(codes.contains("HL0502"), "x1 is transitively stale");
        assert!(codes.contains("HL0503"), "x1 is a stale goal");
        let text = out.render_text();
        assert!(text.contains(&l1.to_string()));
        assert!(text.contains(&x1.to_string()));
        // The retrace-cone report predicts the cut and the reruns.
        assert!(text.contains("would cut 1 superseded input(s)"));
        assert!(text.contains("re-run 2 of"));
    }

    #[test]
    fn incremental_equals_full_and_analyzes_only_the_cone() {
        let (mut db, ids) = extraction_db();
        let (editor, net) = (ids[2], ids[3]);

        let mut linter = HistoryLinter::new();
        let mut first = Diagnostics::new();
        linter.lint_incremental(&db, &mut first).expect("ok");
        assert_eq!(linter.stats().instances_analyzed, db.len());

        // Grow the history far away from the edit so the cone is a
        // strict subset: unrelated primary instances.
        let schema = db.schema().clone();
        for _ in 0..20 {
            db.record_primary(
                schema.require("DeviceModelEditor").expect("known"),
                Metadata::by("u"),
                b"s",
            )
            .expect("ok");
        }
        edit_netlist(&mut db, editor, net);

        let mut inc = Diagnostics::new();
        linter.lint_incremental(&db, &mut inc).expect("ok");
        let inc_stats = *linter.stats();

        let mut full = Diagnostics::new();
        let mut fresh = HistoryLinter::new();
        fresh.lint_full(&db, &mut full).expect("ok");
        let full_stats = *fresh.stats();

        inc.sort();
        full.sort();
        assert_eq!(
            inc.render_text(),
            full.render_text(),
            "incremental and full must agree byte-for-byte"
        );
        assert!(
            inc_stats.instances_analyzed < full_stats.instances_analyzed,
            "cone {} should be smaller than full {}",
            inc_stats.instances_analyzed,
            full_stats.instances_analyzed
        );
        assert!(
            inc_stats.solver_visits < full_stats.solver_visits,
            "solver should visit fewer nodes incrementally"
        );
    }

    #[test]
    fn under_keyed_derivation_is_flagged() {
        let (mut db, ids) = extraction_db();
        let extractor = ids[1];
        let rules = ids[4];
        // An extraction that also consumed the placement rules — which
        // ExtractedNetlist's schema never declares.
        let sneaky = db
            .record_derived(
                db.schema().require("ExtractedNetlist").expect("known"),
                Metadata::by("u"),
                b"x2",
                Derivation::by_tool(extractor, [ids[5], rules]),
            )
            .expect("ok");
        let mut out = Diagnostics::new();
        lint_history(&db, &mut out).expect("ok");
        let text = out.render_text();
        assert!(
            text.contains("HL0504") && text.contains(&sneaky.to_string()),
            "undeclared input must be flagged: {text}"
        );
        assert!(text.contains("PlacementRules"));
    }

    #[test]
    fn under_keyed_tool_is_marked_cache_ineligible() {
        let (mut db, ids) = extraction_db();
        let extractor = ids[1];
        let rules = ids[4];
        // Two sneaky extractions: the tool verdict aggregates both into
        // one cache-ineligibility finding against the Extractor.
        for payload in [b"x2" as &[u8], b"x3"] {
            db.record_derived(
                db.schema().require("ExtractedNetlist").expect("known"),
                Metadata::by("u"),
                payload,
                Derivation::by_tool(extractor, [ids[5], rules]),
            )
            .expect("ok");
        }
        let mut out = Diagnostics::new();
        lint_history(&db, &mut out).expect("ok");
        let hl0506: Vec<_> = out.iter().filter(|d| d.code == "HL0506").collect();
        assert_eq!(hl0506.len(), 1, "one finding per offending tool");
        let text = hl0506[0].to_string();
        assert!(
            text.contains("Extractor") && text.contains("2 under-keyed derivation(s)"),
            "aggregated tool verdict expected: {text}"
        );
        assert!(text.contains("cache-ineligible"));
    }

    #[test]
    fn spec_round_trips_through_json() {
        let (mut db, ids) = extraction_db();
        edit_netlist(&mut db, ids[2], ids[3]);
        let mut linter = HistoryLinter::new();
        let mut out = Diagnostics::new();
        linter.lint_full(&db, &mut out).expect("ok");

        let spec = linter.to_spec();
        let json = serde_json::to_string(&spec).expect("encode");
        let back: HistoryLinterSpec = serde_json::from_str(&json).expect("decode");
        let restored = HistoryLinter::from_spec(&back, &db).expect("valid");

        // The restored linter produces the same diagnostics without
        // recomputing anything.
        let mut again = Diagnostics::new();
        let mut restored = restored;
        restored.lint_incremental(&db, &mut again).expect("ok");
        assert_eq!(restored.stats().instances_analyzed, 0, "nothing dirty");
        let mut a = Diagnostics::new();
        linter.lint_incremental(&db, &mut a).expect("ok");
        a.sort();
        again.sort();
        assert_eq!(a.render_text(), again.render_text());

        // Restoring against a different database fails validation.
        let other = HistoryDb::new(db.schema().clone());
        assert!(HistoryLinter::from_spec(&back, &other).is_none());
    }
}
