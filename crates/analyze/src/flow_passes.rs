//! Flow lint passes (`HL02xx`).
//!
//! These run over §3.2 structures: dynamically defined task graphs. The
//! structural gate (now [`TaskGraph::validate_all`]) catches illegal
//! graphs; these passes find legal flows that can never become
//! executable or contain pointless work — abstract nodes awaiting
//! specialization, half-expanded tasks, redundant duplicate expansions,
//! and sub-flows with nothing to run.

use std::collections::BTreeMap;

use hercules_flow::{NodeId, TaskGraph};
use hercules_schema::EntityTypeId;

use crate::diag::{Diagnostic, Diagnostics, Severity, Span};

/// Runs every flow pass. The caller is expected to have reported gate
/// errors from [`TaskGraph::validate_all`] already; these passes are
/// robust to (and skip) nodes the gate rejected.
pub fn lint_flow_passes(flow: &TaskGraph, out: &mut Diagnostics) {
    abstract_node(flow, out);
    incomplete_expansion(flow, out);
    duplicate_expansion(flow, out);
    inert_subflow(flow, out);
    unconsumed_tool(flow, out);
}

/// HL0201: a node whose entity is abstract. An abstract *interior*
/// node is a real defect — the expand gate refuses to expand abstract
/// nodes (§3.2: "the circuit in Fig. 4b was specialized to an
/// ExtractedNetlist before expansion"), so one can only arise through
/// raw construction, and executing it would instantiate an abstract
/// entity. An abstract *leaf* is merely advisory: binding resolves it
/// to the family's latest instance (Fig. 3 binds its optional prior
/// netlist exactly this way), but which subtype it gets depends on
/// history contents rather than the flow's author.
pub(crate) fn abstract_node(flow: &TaskGraph, out: &mut Diagnostics) {
    let schema = flow.schema();
    for (id, node) in flow.nodes() {
        let entity = schema.entity(node.entity());
        if !schema.is_abstract(node.entity()) {
            continue;
        }
        if flow.is_expanded(id) {
            out.push(Diagnostic::new(
                "HL0201",
                Severity::Warn,
                Span::node(id, entity.name()),
                format!(
                    "interior node {id} is the abstract entity `{}`; executing it would \
                     instantiate an abstract entity — specialize before expansion",
                    entity.name()
                ),
            ));
        } else {
            out.push(Diagnostic::new(
                "HL0201",
                Severity::Info,
                Span::node(id, entity.name()),
                format!(
                    "leaf node {id} is the abstract entity `{}`; it will bind to whatever \
                     subtype the history holds — specialize it to pin the type",
                    entity.name()
                ),
            ));
        }
    }
}

/// HL0202: an interior (expanded) node missing required inputs. Legal
/// mid-construction, but the flow is not runnable until they are
/// supplied; this reports *all* of them at once.
pub(crate) fn incomplete_expansion(flow: &TaskGraph, out: &mut Diagnostics) {
    let schema = flow.schema();
    for id in flow.interior() {
        let Ok(missing) = flow.missing_deps(id) else {
            continue; // unmatchable edges were reported by the gate
        };
        if missing.is_empty() {
            continue;
        }
        let Ok(entity) = flow.entity_of(id) else {
            continue;
        };
        let names: Vec<&str> = missing
            .iter()
            .map(|d| schema.entity(d.source()).name())
            .collect();
        out.push(Diagnostic::new(
            "HL0202",
            Severity::Warn,
            Span::node(id, schema.entity(entity).name()),
            format!(
                "expansion of node {id} is missing required input(s): {}",
                names.join(", ")
            ),
        ));
    }
}

/// HL0203: redundant duplicate expansions — two interior nodes of the
/// same entity fed by exactly the same producers. The engine would
/// schedule the construction twice for one result.
pub(crate) fn duplicate_expansion(flow: &TaskGraph, out: &mut Diagnostics) {
    /// Construction signature: the entity plus its exact producer set.
    type Construction = (EntityTypeId, Vec<(NodeId, bool)>);
    let schema = flow.schema();
    let mut groups: BTreeMap<Construction, Vec<NodeId>> = BTreeMap::new();
    for id in flow.interior() {
        let Ok(entity) = flow.entity_of(id) else {
            continue;
        };
        let mut producers: Vec<(NodeId, bool)> = flow
            .producers_of(id)
            .map(|e| (e.source(), e.is_functional()))
            .collect();
        producers.sort_unstable();
        groups.entry((entity, producers)).or_default().push(id);
    }
    for ((entity, _), ids) in groups {
        if ids.len() < 2 {
            continue;
        }
        let name = schema.entity(entity).name();
        out.push(Diagnostic::new(
            "HL0203",
            Severity::Warn,
            Span::subflow(ids.iter()),
            format!(
                "nodes {} all construct `{name}` from the same producers; \
                 the duplicate expansions are redundant",
                ids.iter()
                    .map(|i| i.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        ));
    }
}

/// HL0204: a weakly connected component with no interior node — a
/// sub-flow with no task to execute.
pub(crate) fn inert_subflow(flow: &TaskGraph, out: &mut Diagnostics) {
    for component in flow.components() {
        if component.iter().any(|&id| flow.is_expanded(id)) {
            continue;
        }
        out.push(Diagnostic::new(
            "HL0204",
            Severity::Info,
            Span::subflow(component.iter()),
            format!(
                "sub-flow of {} node(s) contains no task to execute",
                component.len()
            ),
        ));
    }
}

/// HL0205: a tool node that feeds nothing. A tool placed in a flow
/// exists to run a task; one with no consumers is dead weight (its
/// sub-flow's outputs feed nothing).
pub(crate) fn unconsumed_tool(flow: &TaskGraph, out: &mut Diagnostics) {
    let schema = flow.schema();
    for (id, node) in flow.nodes() {
        let entity = schema.entity(node.entity());
        if entity.kind().is_tool() && flow.consumers_of(id).next().is_none() {
            out.push(Diagnostic::new(
                "HL0205",
                Severity::Warn,
                Span::node(id, entity.name()),
                format!("tool node {id} (`{}`) feeds no task", entity.name()),
            ));
        }
    }
}
