//! The parallel-hazard detector (`HL03xx`).
//!
//! §3.3 claims disjoint sub-flows "could be executed in parallel"; the
//! execution engine (`crates/exec/src/engine.rs`) and the cluster
//! scheduler (`cluster.rs`) do exactly that — any two subtasks with no
//! dependency path between them may run concurrently. This pass
//! computes the engine's subtask grouping (interior nodes sharing one
//! tool node and one data-input set form a single multi-output
//! subtask), derives the may-run-concurrently relation from graph
//! reachability, and flags the conflicts the parallel-execution claim
//! otherwise takes on faith:
//!
//! * **write/write** (`HL0301`) — two concurrent subtasks both record
//!   instances of the same entity type; which becomes the "latest"
//!   version in the design history depends on scheduling.
//! * **read/write** (`HL0302`) — one subtask reads a *bound* instance
//!   (a leaf) of an entity type a concurrent subtask is producing a new
//!   instance of; the read result is stale the moment it is used.
//! * **family overlap** (`HL0303`, advisory) — concurrent subtasks
//!   touch distinct entity types of one subtype family, so version
//!   queries over the family (`browse`, `bind-latest`) become
//!   schedule-sensitive.
//! * **barrier-limited flow** (`HL0312`) — the flow's level-set widths
//!   vary so much that a wave-barrier schedule would idle at least half
//!   the workers a maximally wide wave needs; such flows only reach
//!   their parallelism under the dataflow scheduler.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use hercules_flow::{NodeId, TaskGraph};
use hercules_schema::EntityTypeId;

use crate::diag::{Diagnostic, Diagnostics, Severity, Span};

/// One scheduled unit, as the engine groups it: the interior nodes a
/// single tool invocation produces, plus what it consumes.
#[derive(Debug, Clone)]
struct Subtask {
    /// Interior nodes this invocation constructs.
    outputs: Vec<NodeId>,
    /// Data-input nodes (leaves or other subtasks' outputs).
    inputs: Vec<NodeId>,
}

/// Groups interior nodes exactly as the engine does: same tool node +
/// same sorted data-input set = one multi-output subtask.
fn group_subtasks(flow: &TaskGraph) -> Vec<Subtask> {
    let mut groups: BTreeMap<(Option<NodeId>, Vec<NodeId>), Vec<NodeId>> = BTreeMap::new();
    for id in flow.interior() {
        let tool = flow.tool_of(id);
        let mut inputs = flow.data_inputs_of(id);
        inputs.sort_unstable();
        groups.entry((tool, inputs)).or_default().push(id);
    }
    groups
        .into_iter()
        .map(|((tool, mut inputs), outputs)| {
            if let Some(t) = tool {
                inputs.push(t);
            }
            Subtask { outputs, inputs }
        })
        .collect()
}

/// The shared precomputation behind the pairwise hazard passes: the
/// engine's subtask grouping plus the may-run-concurrently relation.
/// `None` on cyclic graphs (the gate reports those; reachability is
/// undefined) or when fewer than two subtasks exist.
struct HazardCtx<'a> {
    flow: &'a TaskGraph,
    subtasks: Vec<Subtask>,
    desc: HashMap<NodeId, HashSet<NodeId>>,
}

impl<'a> HazardCtx<'a> {
    fn new(flow: &'a TaskGraph) -> Option<HazardCtx<'a>> {
        let order = flow.topo_order().ok()?;
        let subtasks = group_subtasks(flow);
        if subtasks.len() < 2 {
            return None;
        }
        // Descendant sets per node, accumulated in reverse topological
        // order: desc[n] = {n} ∪ desc[every consumer of n].
        let mut desc: HashMap<NodeId, HashSet<NodeId>> = HashMap::new();
        for &n in order.iter().rev() {
            let mut set: HashSet<NodeId> = HashSet::new();
            set.insert(n);
            for e in flow.consumers_of(n) {
                if let Some(d) = desc.get(&e.target()) {
                    set.extend(d.iter().copied());
                }
            }
            desc.insert(n, set);
        }
        Some(HazardCtx {
            flow,
            subtasks,
            desc,
        })
    }

    fn reaches(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.desc.get(&a).is_some_and(|d| d.contains(&b))
    }

    /// Subtask A precedes B when any output of A reaches any output of B.
    fn precedes(&self, a: &Subtask, b: &Subtask) -> bool {
        a.outputs
            .iter()
            .any(|&x| b.outputs.iter().any(|&y| self.reaches(x, y)))
    }

    /// Unordered concurrently-schedulable subtask pairs, by index.
    fn concurrent_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        for i in 0..self.subtasks.len() {
            for j in (i + 1)..self.subtasks.len() {
                let (a, b) = (&self.subtasks[i], &self.subtasks[j]);
                if !self.precedes(a, b) && !self.precedes(b, a) {
                    pairs.push((i, j));
                }
            }
        }
        pairs
    }

    fn span(&self, a: &Subtask, b: &Subtask) -> Span {
        Span::subflow(
            a.outputs
                .iter()
                .chain(b.outputs.iter())
                .map(|n| n.to_string()),
        )
    }

    fn produced(&self, s: &Subtask) -> BTreeSet<EntityTypeId> {
        s.outputs
            .iter()
            .filter_map(|&n| self.flow.entity_of(n).ok())
            .collect()
    }

    /// Leaf reads: bound instances consumed straight from the history.
    fn leaf_reads(&self, s: &Subtask) -> BTreeSet<EntityTypeId> {
        s.inputs
            .iter()
            .filter(|&&n| !self.flow.is_expanded(n))
            .filter_map(|&n| self.flow.entity_of(n).ok())
            .collect()
    }
}

/// Runs the pairwise hazard passes (`HL0301`–`HL0303`).
pub fn lint_hazards(flow: &TaskGraph, out: &mut Diagnostics) {
    lint_write_write(flow, out);
    lint_read_write(flow, out);
    lint_family_overlap(flow, out);
}

/// HL0301: two concurrently schedulable subtasks both produce the same
/// entity type; which instance becomes the latest version is
/// schedule-dependent.
pub(crate) fn lint_write_write(flow: &TaskGraph, out: &mut Diagnostics) {
    let Some(ctx) = HazardCtx::new(flow) else {
        return;
    };
    let schema = flow.schema();
    for (i, j) in ctx.concurrent_pairs() {
        let (a, b) = (&ctx.subtasks[i], &ctx.subtasks[j]);
        let (pa, pb) = (ctx.produced(a), ctx.produced(b));
        for &t in pa.intersection(&pb) {
            out.push(Diagnostic::new(
                "HL0301",
                Severity::Warn,
                ctx.span(a, b),
                format!(
                    "subtasks [{}] and [{}] can run in parallel and both produce `{}`; \
                     which instance becomes the latest version is schedule-dependent",
                    names(a),
                    names(b),
                    schema.entity(t).name()
                ),
            ));
        }
    }
}

/// HL0302: one subtask reads a *bound* instance (a leaf) of an entity
/// type a concurrent subtask is producing a new instance of; the read
/// result is stale the moment it is used.
pub(crate) fn lint_read_write(flow: &TaskGraph, out: &mut Diagnostics) {
    let Some(ctx) = HazardCtx::new(flow) else {
        return;
    };
    let schema = flow.schema();
    for (i, j) in ctx.concurrent_pairs() {
        let (a, b) = (&ctx.subtasks[i], &ctx.subtasks[j]);
        let (pa, pb) = (ctx.produced(a), ctx.produced(b));
        for (reader, writer, pw) in [(a, b, &pb), (b, a, &pa)] {
            for &t in ctx.leaf_reads(reader).intersection(pw) {
                out.push(Diagnostic::new(
                    "HL0302",
                    Severity::Warn,
                    ctx.span(a, b),
                    format!(
                        "subtask [{}] reads a bound `{}` instance while concurrent \
                         subtask [{}] produces a new one; the read is stale the \
                         moment it is used",
                        names(reader),
                        schema.entity(t).name(),
                        names(writer)
                    ),
                ));
            }
        }
    }
}

/// HL0303 (advisory): concurrent subtasks touch *distinct* entity types
/// of one subtype family, so family-wide version queries (`browse`,
/// `bind-latest`) become schedule-sensitive. Types already flagged by
/// HL0301/HL0302 for the pair are skipped — those findings subsume this
/// one.
pub(crate) fn lint_family_overlap(flow: &TaskGraph, out: &mut Diagnostics) {
    let Some(ctx) = HazardCtx::new(flow) else {
        return;
    };
    let schema = flow.schema();
    let family = |t: EntityTypeId| {
        let mut f: BTreeSet<EntityTypeId> = BTreeSet::new();
        f.insert(t);
        f.extend(schema.supertype_chain(t));
        f
    };
    for (i, j) in ctx.concurrent_pairs() {
        let (a, b) = (&ctx.subtasks[i], &ctx.subtasks[j]);
        let (pa, pb) = (ctx.produced(a), ctx.produced(b));
        let (ra, rb) = (ctx.leaf_reads(a), ctx.leaf_reads(b));
        // Types HL0301/HL0302 already flag for this pair.
        let mut family_hits: BTreeSet<EntityTypeId> = pa.intersection(&pb).copied().collect();
        family_hits.extend(ra.intersection(&pb).copied());
        family_hits.extend(rb.intersection(&pa).copied());

        let mut reported: BTreeSet<(EntityTypeId, EntityTypeId)> = BTreeSet::new();
        let touched_b: BTreeSet<EntityTypeId> = pb.union(&rb).copied().collect();
        for &ta in pa.union(&ra) {
            for &tb in &touched_b {
                if ta == tb || family_hits.contains(&ta) || family_hits.contains(&tb) {
                    continue;
                }
                let shared: Vec<EntityTypeId> =
                    family(ta).intersection(&family(tb)).copied().collect();
                let Some(&root) = shared.first() else {
                    continue;
                };
                let key = if ta < tb { (ta, tb) } else { (tb, ta) };
                if !reported.insert(key) {
                    continue;
                }
                // Only producer-involved overlaps matter; two reads
                // of one family are harmless.
                if !pa.contains(&ta) && !pb.contains(&tb) {
                    continue;
                }
                out.push(Diagnostic::new(
                    "HL0303",
                    Severity::Info,
                    ctx.span(a, b),
                    format!(
                        "concurrent subtasks touch `{}` and `{}` of the same subtype \
                         family (`{}`); family-wide version queries are \
                         schedule-sensitive",
                        schema.entity(ta).name(),
                        schema.entity(tb).name(),
                        schema.entity(root).name()
                    ),
                ));
            }
        }
    }
}

/// `HL0312`: flags flows whose wave (level-set) widths are so uneven
/// that a barrier schedule wastes most of the worker pool.
///
/// With `W = max_parallelism` workers — the count a wave executor needs
/// to exploit the widest level — a barrier schedule occupies
/// `Σ widths` of the `waves · W` worker-slots it holds; the rest is
/// idle time imposed purely by the barriers. The pass fires when that
/// idle share reaches 50% on a flow that is actually parallel
/// (`W ≥ 2`) and actually staged (`≥ 2` waves). Narrow pipelines and
/// flat fan-outs never trip it.
pub fn lint_barrier_limited(flow: &TaskGraph, out: &mut Diagnostics) {
    let Ok(waves) = flow.parallel_waves() else {
        return;
    };
    let widths: Vec<usize> = waves.iter().map(Vec::len).collect();
    let max_width = widths.iter().copied().max().unwrap_or(0);
    if max_width < 2 || widths.len() < 2 {
        return;
    }
    let occupied: usize = widths.iter().sum();
    let slots = widths.len() * max_width;
    let idle = 1.0 - occupied as f64 / slots as f64;
    if idle < 0.5 {
        return;
    }
    let span = Span::subflow(waves.iter().flat_map(|w| w.iter().map(|n| n.to_string())));
    out.push(Diagnostic::new(
        "HL0312",
        Severity::Warn,
        span,
        format!(
            "wave widths {widths:?} idle {:.0}% of {max_width} workers under \
             barrier scheduling; this flow needs the dataflow scheduler to \
             reach its parallelism",
            idle * 100.0
        ),
    ));
}

fn names(s: &Subtask) -> String {
    s.outputs
        .iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join("+")
}
