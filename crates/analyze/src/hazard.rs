//! The parallel-hazard detector (`HL03xx`).
//!
//! §3.3 claims disjoint sub-flows "could be executed in parallel"; the
//! execution engine (`crates/exec/src/engine.rs`) and the cluster
//! scheduler (`cluster.rs`) do exactly that — any two subtasks with no
//! dependency path between them may run concurrently. This pass
//! computes the engine's subtask grouping (interior nodes sharing one
//! tool node and one data-input set form a single multi-output
//! subtask), derives the may-run-concurrently relation from graph
//! reachability, and flags the conflicts the parallel-execution claim
//! otherwise takes on faith:
//!
//! * **write/write** (`HL0301`) — two concurrent subtasks both record
//!   instances of the same entity type; which becomes the "latest"
//!   version in the design history depends on scheduling.
//! * **read/write** (`HL0302`) — one subtask reads a *bound* instance
//!   (a leaf) of an entity type a concurrent subtask is producing a new
//!   instance of; the read result is stale the moment it is used.
//! * **family overlap** (`HL0303`, advisory) — concurrent subtasks
//!   touch distinct entity types of one subtype family, so version
//!   queries over the family (`browse`, `bind-latest`) become
//!   schedule-sensitive.
//! * **barrier-limited flow** (`HL0312`) — the flow's level-set widths
//!   vary so much that a wave-barrier schedule would idle at least half
//!   the workers a maximally wide wave needs; such flows only reach
//!   their parallelism under the dataflow scheduler.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use hercules_flow::{NodeId, TaskGraph};
use hercules_schema::EntityTypeId;

use crate::diag::{Diagnostic, Diagnostics, Severity, Span};

/// One scheduled unit, as the engine groups it: the interior nodes a
/// single tool invocation produces, plus what it consumes.
#[derive(Debug, Clone)]
struct Subtask {
    /// Interior nodes this invocation constructs.
    outputs: Vec<NodeId>,
    /// Data-input nodes (leaves or other subtasks' outputs).
    inputs: Vec<NodeId>,
}

/// Groups interior nodes exactly as the engine does: same tool node +
/// same sorted data-input set = one multi-output subtask.
fn group_subtasks(flow: &TaskGraph) -> Vec<Subtask> {
    let mut groups: BTreeMap<(Option<NodeId>, Vec<NodeId>), Vec<NodeId>> = BTreeMap::new();
    for id in flow.interior() {
        let tool = flow.tool_of(id);
        let mut inputs = flow.data_inputs_of(id);
        inputs.sort_unstable();
        groups.entry((tool, inputs)).or_default().push(id);
    }
    groups
        .into_iter()
        .map(|((tool, mut inputs), outputs)| {
            if let Some(t) = tool {
                inputs.push(t);
            }
            Subtask { outputs, inputs }
        })
        .collect()
}

/// Runs the hazard passes. Skipped entirely on cyclic graphs (the gate
/// reports those; reachability is undefined).
pub fn lint_hazards(flow: &TaskGraph, out: &mut Diagnostics) {
    let Ok(order) = flow.topo_order() else {
        return;
    };
    let subtasks = group_subtasks(flow);
    if subtasks.len() < 2 {
        return;
    }

    // Descendant sets per node, accumulated in reverse topological
    // order: desc[n] = {n} ∪ desc[every consumer of n].
    let mut desc: HashMap<NodeId, HashSet<NodeId>> = HashMap::new();
    for &n in order.iter().rev() {
        let mut set: HashSet<NodeId> = HashSet::new();
        set.insert(n);
        for e in flow.consumers_of(n) {
            if let Some(d) = desc.get(&e.target()) {
                set.extend(d.iter().copied());
            }
        }
        desc.insert(n, set);
    }
    let reaches = |a: NodeId, b: NodeId| a != b && desc.get(&a).is_some_and(|d| d.contains(&b));
    // Subtask A precedes B when any output of A reaches any output of B.
    let precedes = |a: &Subtask, b: &Subtask| {
        a.outputs
            .iter()
            .any(|&x| b.outputs.iter().any(|&y| reaches(x, y)))
    };

    let schema = flow.schema();
    let family = |t: EntityTypeId| {
        let mut f: BTreeSet<EntityTypeId> = BTreeSet::new();
        f.insert(t);
        f.extend(schema.supertype_chain(t));
        f
    };
    let produced = |s: &Subtask| -> BTreeSet<EntityTypeId> {
        s.outputs
            .iter()
            .filter_map(|&n| flow.entity_of(n).ok())
            .collect()
    };
    // Leaf reads: bound instances consumed straight from the history.
    let leaf_reads = |s: &Subtask| -> BTreeSet<EntityTypeId> {
        s.inputs
            .iter()
            .filter(|&&n| !flow.is_expanded(n))
            .filter_map(|&n| flow.entity_of(n).ok())
            .collect()
    };

    for i in 0..subtasks.len() {
        for j in (i + 1)..subtasks.len() {
            let (a, b) = (&subtasks[i], &subtasks[j]);
            if precedes(a, b) || precedes(b, a) {
                continue;
            }
            let span = || {
                Span::subflow(
                    a.outputs
                        .iter()
                        .chain(b.outputs.iter())
                        .map(|n| n.to_string()),
                )
            };
            let (pa, pb) = (produced(a), produced(b));
            let mut family_hits: BTreeSet<EntityTypeId> = BTreeSet::new();

            // Write/write: both concurrently produce the same type.
            for &t in pa.intersection(&pb) {
                out.push(Diagnostic::new(
                    "HL0301",
                    Severity::Warn,
                    span(),
                    format!(
                        "subtasks [{}] and [{}] can run in parallel and both produce `{}`; \
                         which instance becomes the latest version is schedule-dependent",
                        names(a),
                        names(b),
                        schema.entity(t).name()
                    ),
                ));
                family_hits.insert(t);
            }

            // Read/write: one side reads a bound instance of a type the
            // other side is producing.
            for (reader, writer, pw) in [(a, b, &pb), (b, a, &pa)] {
                for &t in leaf_reads(reader).intersection(pw) {
                    out.push(Diagnostic::new(
                        "HL0302",
                        Severity::Warn,
                        span(),
                        format!(
                            "subtask [{}] reads a bound `{}` instance while concurrent \
                             subtask [{}] produces a new one; the read is stale the \
                             moment it is used",
                            names(reader),
                            schema.entity(t).name(),
                            names(writer)
                        ),
                    ));
                    family_hits.insert(t);
                }
            }

            // Family overlap (advisory): distinct types, shared family.
            let mut reported: BTreeSet<(EntityTypeId, EntityTypeId)> = BTreeSet::new();
            let touched_b: BTreeSet<EntityTypeId> = pb.union(&leaf_reads(b)).copied().collect();
            for &ta in pa.union(&leaf_reads(a)) {
                for &tb in &touched_b {
                    if ta == tb || family_hits.contains(&ta) || family_hits.contains(&tb) {
                        continue;
                    }
                    let shared: Vec<EntityTypeId> =
                        family(ta).intersection(&family(tb)).copied().collect();
                    let Some(&root) = shared.first() else {
                        continue;
                    };
                    let key = if ta < tb { (ta, tb) } else { (tb, ta) };
                    if !reported.insert(key) {
                        continue;
                    }
                    // Only producer-involved overlaps matter; two reads
                    // of one family are harmless.
                    if !pa.contains(&ta) && !pb.contains(&tb) {
                        continue;
                    }
                    out.push(Diagnostic::new(
                        "HL0303",
                        Severity::Info,
                        span(),
                        format!(
                            "concurrent subtasks touch `{}` and `{}` of the same subtype \
                             family (`{}`); family-wide version queries are \
                             schedule-sensitive",
                            schema.entity(ta).name(),
                            schema.entity(tb).name(),
                            schema.entity(root).name()
                        ),
                    ));
                }
            }
        }
    }
}

/// `HL0312`: flags flows whose wave (level-set) widths are so uneven
/// that a barrier schedule wastes most of the worker pool.
///
/// With `W = max_parallelism` workers — the count a wave executor needs
/// to exploit the widest level — a barrier schedule occupies
/// `Σ widths` of the `waves · W` worker-slots it holds; the rest is
/// idle time imposed purely by the barriers. The pass fires when that
/// idle share reaches 50% on a flow that is actually parallel
/// (`W ≥ 2`) and actually staged (`≥ 2` waves). Narrow pipelines and
/// flat fan-outs never trip it.
pub fn lint_barrier_limited(flow: &TaskGraph, out: &mut Diagnostics) {
    let Ok(waves) = flow.parallel_waves() else {
        return;
    };
    let widths: Vec<usize> = waves.iter().map(Vec::len).collect();
    let max_width = widths.iter().copied().max().unwrap_or(0);
    if max_width < 2 || widths.len() < 2 {
        return;
    }
    let occupied: usize = widths.iter().sum();
    let slots = widths.len() * max_width;
    let idle = 1.0 - occupied as f64 / slots as f64;
    if idle < 0.5 {
        return;
    }
    let span = Span::subflow(waves.iter().flat_map(|w| w.iter().map(|n| n.to_string())));
    out.push(Diagnostic::new(
        "HL0312",
        Severity::Warn,
        span,
        format!(
            "wave widths {widths:?} idle {:.0}% of {max_width} workers under \
             barrier scheduling; this flow needs the dataflow scheduler to \
             reach its parallelism",
            idle * 100.0
        ),
    ));
}

fn names(s: &Subtask) -> String {
    s.outputs
        .iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join("+")
}
