//! Golden-file tests: the exact diagnostic codes herclint reports for
//! the paper fixtures and for seeded-defect schemas and flows.

use std::sync::Arc;

use hercules_analyze::{
    lint_flow, lint_schema, lint_schema_spec, Diagnostics, JsonReport, LintConfig, Severity,
};
use hercules_flow::{fixtures as flow_fixtures, TaskGraph};
use hercules_schema::{fixtures, DepKind, DepSpec, EntityKind, EntitySpec, SchemaSpec};

fn entity(name: &str, kind: EntityKind) -> EntitySpec {
    EntitySpec {
        name: name.to_owned(),
        kind: Some(kind),
        supertype: None,
        description: String::new(),
        composite: false,
    }
}

fn subtype(name: &str, sup: &str) -> EntitySpec {
    EntitySpec {
        name: name.to_owned(),
        kind: None,
        supertype: Some(sup.to_owned()),
        description: String::new(),
        composite: false,
    }
}

fn dep(target: &str, source: &str, kind: DepKind, optional: bool) -> DepSpec {
    DepSpec {
        target: target.to_owned(),
        source: source.to_owned(),
        kind,
        optional,
    }
}

/// The paper's own schemas are clean under every schema pass.
#[test]
fn paper_schemas_are_clean() {
    for (name, schema) in [
        ("fig1", fixtures::fig1()),
        ("fig2", fixtures::fig2()),
        ("odyssey", fixtures::odyssey()),
    ] {
        let mut out = Diagnostics::new();
        lint_schema(&schema, &mut out);
        assert!(
            out.is_empty(),
            "{name} should lint clean, got:\n{}",
            out.render_text()
        );
    }
}

/// The paper's flow fixtures produce no error-severity findings; the
/// only expected codes are the advisory abstract-leaf note and the
/// advisory family-overlap note.
#[test]
fn paper_flows_have_no_errors() {
    type Fixture =
        fn(Arc<hercules_schema::TaskSchema>) -> Result<TaskGraph, hercules_flow::FlowError>;
    let schema = Arc::new(fixtures::fig1());
    let flows: [(&str, Fixture); 7] = [
        ("fig3", flow_fixtures::fig3),
        ("fig4_edited", flow_fixtures::fig4_edited),
        ("fig4_extracted", flow_fixtures::fig4_extracted),
        ("fig5", flow_fixtures::fig5),
        ("fig6", flow_fixtures::fig6),
        ("fig8_synthesis", flow_fixtures::fig8_synthesis),
        ("fig8_verification", flow_fixtures::fig8_verification),
    ];
    for (name, make) in flows {
        let flow = make(schema.clone()).expect("fixture builds");
        let mut out = Diagnostics::new();
        lint_flow(&flow, &mut out);
        assert_eq!(
            out.count(Severity::Error),
            0,
            "{name} should have no errors, got:\n{}",
            out.render_text()
        );
        for d in out.iter() {
            assert!(
                d.code == "HL0201" || d.code == "HL0303",
                "{name}: unexpected code {}: {d}",
                d.code
            );
        }
    }
}

/// The barrier-limited fixture trips `HL0312` — its wave widths are
/// `[width + 1, 1, 1, …]`, so a barrier schedule idles over half the
/// workers — while flat fan-outs and the paper fixtures stay clean
/// (their idle shares are below the 50% threshold, asserted above).
#[test]
fn barrier_limited_flow_reports_hl0312() {
    let schema = Arc::new(fixtures::fig1());
    let flow = flow_fixtures::barrier_limited(schema.clone(), 6, 6).expect("fixture builds");
    let mut out = Diagnostics::new();
    lint_flow(&flow, &mut out);
    let d = out
        .iter()
        .find(|d| d.code == "HL0312")
        .expect("barrier-limited fixture fires HL0312");
    assert_eq!(d.severity, Severity::Warn);
    assert!(
        d.message.contains("dataflow scheduler"),
        "message names the remedy: {d}"
    );

    // A flat fan-out of the same width has no barrier problem.
    let wide = flow_fixtures::wide_parallel(schema, 6).expect("fixture builds");
    let mut out = Diagnostics::new();
    lint_flow(&wide, &mut out);
    assert!(
        out.iter().all(|d| d.code != "HL0312"),
        "wide_parallel is barrier-friendly:\n{}",
        out.render_text()
    );
}

/// A spec whose required arcs cycle gets the full-membership `HL0101`
/// report even though the build gate rejects it; the gate's own cycle
/// error is not duplicated.
#[test]
fn cyclic_spec_reports_hl0101_with_members() {
    let spec = SchemaSpec {
        entities: vec![
            entity("A", EntityKind::Data),
            entity("B", EntityKind::Data),
            entity("C", EntityKind::Data),
        ],
        deps: vec![
            dep("A", "B", DepKind::Data, false),
            dep("B", "A", DepKind::Data, false),
            dep("C", "A", DepKind::Data, false), // downstream, not in the cycle
        ],
    };
    let mut out = Diagnostics::new();
    let built = lint_schema_spec(&spec, &mut out);
    assert!(built.is_none(), "cyclic spec must not build");
    let hl0101: Vec<_> = out.iter().filter(|d| d.code == "HL0101").collect();
    assert_eq!(hl0101.len(), 1, "got:\n{}", out.render_text());
    assert!(hl0101[0].message.contains('A') && hl0101[0].message.contains('B'));
    assert!(
        !out.iter().any(|d| d.code == "HL0006"),
        "the gate's cycle error must not be repeated:\n{}",
        out.render_text()
    );
}

/// An optional arc breaks the loop: same shape, no finding.
#[test]
fn optional_arc_breaks_the_cycle() {
    let spec = SchemaSpec {
        entities: vec![entity("A", EntityKind::Data), entity("B", EntityKind::Data)],
        deps: vec![
            dep("A", "B", DepKind::Data, false),
            dep("B", "A", DepKind::Data, true),
        ],
    };
    let mut out = Diagnostics::new();
    let built = lint_schema_spec(&spec, &mut out);
    assert!(built.is_some(), "optional arcs break cycles");
    assert!(
        !out.iter().any(|d| d.code == "HL0101"),
        "got:\n{}",
        out.render_text()
    );
}

/// One seeded schema exercising every `HL01xx` pass at once; the exact
/// code set is the golden value.
fn seeded_bad_schema() -> SchemaSpec {
    SchemaSpec {
        entities: vec![
            // HL0102: wants inputs, nothing produces it.
            entity("Ghost", EntityKind::Data),
            entity("Src", EntityKind::Data),
            // HL0103: tool nothing references.
            entity("IdleTool", EntityKind::Tool),
            // HL0105: Sub shadows Base's construction method.
            entity("Base", EntityKind::Data),
            entity("Maker", EntityKind::Tool),
            subtype("Sub", "Base"),
            // HL0104: Inert never specializes anything.
            entity("Root", EntityKind::Data),
            subtype("Inert", "Root"),
            // HL0106: User requires a tool that wants inputs but has no
            // construction method.
            entity("SelfMade", EntityKind::Tool),
            entity("User", EntityKind::Data),
            entity("UserMaker", EntityKind::Tool),
            // HL0107: participates in nothing.
            entity("Lonely", EntityKind::Data),
        ],
        deps: vec![
            dep("Ghost", "Src", DepKind::Data, false),
            dep("Base", "Maker", DepKind::Functional, false),
            dep("SelfMade", "Src", DepKind::Data, false),
            dep("User", "SelfMade", DepKind::Data, false),
            dep("User", "UserMaker", DepKind::Functional, false),
        ],
    }
}

#[test]
fn seeded_schema_reports_every_schema_pass() {
    let mut out = Diagnostics::new();
    let built = lint_schema_spec(&seeded_bad_schema(), &mut out);
    assert!(built.is_some(), "the seeded schema is gate-valid");
    let codes: Vec<&str> = out.codes().into_iter().collect();
    assert_eq!(
        codes,
        ["HL0102", "HL0103", "HL0104", "HL0105", "HL0106", "HL0107"],
        "got:\n{}",
        out.render_text()
    );
}

/// One seeded flow exercising the `HL02xx` passes.
#[test]
fn seeded_flow_reports_flow_passes() {
    let schema = Arc::new(fixtures::fig1());
    let mut flow = TaskGraph::new(schema.clone());
    let editor = schema.require("CircuitEditor").expect("known");
    let edited = schema.require("EditedNetlist").expect("known");

    // HL0203: two interior nodes of one entity fed by the same producer.
    let ce = flow.add_node_raw(editor).expect("node");
    let e1 = flow.add_node_raw(edited).expect("node");
    let e2 = flow.add_node_raw(edited).expect("node");
    flow.add_edge_raw(ce, e1, DepKind::Functional)
        .expect("edge");
    flow.add_edge_raw(ce, e2, DepKind::Functional)
        .expect("edge");

    // HL0204: a component with no task to execute.
    let stimuli = schema.require("Stimuli").expect("known");
    flow.add_node_raw(stimuli).expect("node");

    // HL0205: a tool node feeding nothing.
    let simulator = schema.require("Simulator").expect("known");
    flow.add_node_raw(simulator).expect("node");

    let mut out = Diagnostics::new();
    lint_flow(&flow, &mut out);
    for code in ["HL0203", "HL0204", "HL0205"] {
        assert!(
            out.iter().any(|d| d.code == code),
            "expected {code}, got:\n{}",
            out.render_text()
        );
    }
}

/// Abstract nodes: interior is a warning, leaf only an advisory note.
#[test]
fn abstract_interior_warns_but_leaf_is_advisory() {
    let schema = Arc::new(fixtures::fig1());
    let netlist = schema.require("Netlist").expect("known");
    let edited = schema.require("EditedNetlist").expect("known");

    let mut flow = TaskGraph::new(schema.clone());
    let leaf = flow.add_node_raw(netlist).expect("node");
    let mut out = Diagnostics::new();
    lint_flow(&flow, &mut out);
    let d = out.iter().find(|d| d.code == "HL0201").expect("leaf note");
    assert_eq!(d.severity, Severity::Info);

    // Raw construction can smuggle in an abstract interior node, which
    // the expand gate would never allow.
    let mut flow = TaskGraph::new(schema.clone());
    let inner = flow.add_node_raw(netlist).expect("node");
    let prior = flow.add_node_raw(edited).expect("node");
    flow.add_edge_raw(prior, inner, DepKind::Data)
        .expect("edge");
    let _ = leaf;
    let mut out = Diagnostics::new();
    lint_flow(&flow, &mut out);
    let d = out
        .iter()
        .find(|d| d.code == "HL0201")
        .expect("interior warning");
    assert_eq!(d.severity, Severity::Warn);
}

/// Gate errors surface through the same diagnostics stream as lints.
#[test]
fn gate_errors_render_as_diagnostics() {
    let schema = Arc::new(fixtures::fig1());
    let mut flow = TaskGraph::new(schema.clone());
    let perf = schema.require("Performance").expect("known");
    let stim = schema.require("Stimuli").expect("known");
    let a = flow.add_node_raw(perf).expect("node");
    let b = flow.add_node_raw(stim).expect("node");
    // Duplicate data edge: one gate error per extra copy (HL0030).
    flow.add_edge_raw(b, a, DepKind::Data).expect("edge");
    flow.add_edge_raw(b, a, DepKind::Data).expect("edge");
    let mut out = Diagnostics::new();
    lint_flow(&flow, &mut out);
    assert!(
        out.iter()
            .any(|d| d.code == "HL0030" && d.severity == Severity::Error),
        "got:\n{}",
        out.render_text()
    );
}

/// Per-code suppression drops findings at collection time.
#[test]
fn suppression_silences_a_code() {
    let mut out = Diagnostics::with_config(LintConfig::new().suppressing("HL0107"));
    let built = lint_schema_spec(&seeded_bad_schema(), &mut out);
    assert!(built.is_some());
    assert!(!out.codes().contains("HL0107"));
    assert!(out.codes().contains("HL0102"), "other codes still reported");
}

/// The JSON wire format is valid JSON and round-trips.
#[test]
fn json_report_round_trips() {
    let mut out = Diagnostics::new();
    lint_schema_spec(&seeded_bad_schema(), &mut out);
    out.sort();
    let report = JsonReport::from_targets([("seeded", &out)]);
    let json = report.to_json().expect("serializes");
    let back: JsonReport = serde_json::from_str(&json).expect("valid JSON");
    assert_eq!(back, report);
    assert_eq!(back.diagnostics.len(), out.len());
    assert_eq!(back.errors, out.count(Severity::Error));
    assert_eq!(back.warnings, out.count(Severity::Warn));
    assert_eq!(back.infos, out.count(Severity::Info));
    assert!(back.diagnostics.iter().all(|d| d.target == "seeded"));
}

/// Every emitted code appears in the pass registry or the gate ranges.
#[test]
fn emitted_codes_are_registered() {
    let mut out = Diagnostics::new();
    lint_schema_spec(&seeded_bad_schema(), &mut out);
    for d in out.iter() {
        assert!(
            hercules_analyze::pass(d.code).is_some(),
            "{} missing from registry",
            d.code
        );
        assert_eq!(
            hercules_analyze::pass(d.code).unwrap().severity,
            d.severity,
            "{} severity drifted from its registry entry",
            d.code
        );
    }
}
