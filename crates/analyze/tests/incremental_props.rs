//! Property tests for the incremental consistency engine: over randomly
//! grown histories, a persistent incremental linter must agree
//! byte-for-byte with a fresh full lint, never do more solver work, and
//! predict retrace cones identical to the from-scratch computation.

use std::sync::Arc;

use hercules_analyze::{Diagnostics, HistoryLinter};
use hercules_history::{Derivation, HistoryDb, InstanceId, Metadata, RetraceCone};
use hercules_schema::fixtures;
use proptest::prelude::*;

/// One generated history operation, interpreted against the ids that
/// exist when it is applied (indices are taken modulo the live count,
/// so every generated program is valid).
#[derive(Debug, Clone)]
enum Op {
    /// Record an independent primary device model.
    Primary,
    /// Derive a layout from the placer over an existing netlist.
    Place { netlist_seed: usize },
    /// Extract a netlist from an existing layout.
    Extract { layout_seed: usize },
    /// Supersede an existing edited netlist with a new version.
    Edit { netlist_seed: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Primary),
        (0usize..64).prop_map(|netlist_seed| Op::Place { netlist_seed }),
        (0usize..64).prop_map(|layout_seed| Op::Extract { layout_seed }),
        (0usize..64).prop_map(|netlist_seed| Op::Edit { netlist_seed }),
    ]
}

/// The growing fixture: tool instances plus the ids recorded so far,
/// grouped by role so generated ops always have something to target.
struct Fixture {
    db: HistoryDb,
    placer: InstanceId,
    extractor: InstanceId,
    editor: InstanceId,
    rules: InstanceId,
    netlists: Vec<InstanceId>,
    layouts: Vec<InstanceId>,
}

impl Fixture {
    fn new() -> Fixture {
        let schema = Arc::new(fixtures::fig1());
        let mut db = HistoryDb::new(schema.clone());
        let t = |n: &str| schema.require(n).expect("known");
        let placer = db
            .record_primary(t("Placer"), Metadata::by("p"), b"placer")
            .expect("ok");
        let extractor = db
            .record_primary(t("Extractor"), Metadata::by("p"), b"ext")
            .expect("ok");
        let editor = db
            .record_primary(t("CircuitEditor"), Metadata::by("p"), b"ed")
            .expect("ok");
        let rules = db
            .record_primary(t("PlacementRules"), Metadata::by("p"), b"rules")
            .expect("ok");
        let net = db
            .record_derived(
                t("EditedNetlist"),
                Metadata::by("p"),
                b"net0",
                Derivation::by_tool(editor, []),
            )
            .expect("ok");
        Fixture {
            db,
            placer,
            extractor,
            editor,
            rules,
            netlists: vec![net],
            layouts: Vec::new(),
        }
    }

    fn require(&self, name: &str) -> hercules_schema::EntityTypeId {
        self.db.schema().require(name).expect("known")
    }

    fn apply(&mut self, op: &Op) {
        match op {
            Op::Primary => {
                let e = self.require("DeviceModelEditor");
                self.db
                    .record_primary(e, Metadata::by("p"), b"dm")
                    .expect("ok");
            }
            Op::Place { netlist_seed } => {
                let net = self.netlists[netlist_seed % self.netlists.len()];
                let e = self.require("Layout");
                let id = self
                    .db
                    .record_derived(
                        e,
                        Metadata::by("p"),
                        b"layout",
                        Derivation::by_tool(self.placer, [net, self.rules]),
                    )
                    .expect("ok");
                self.layouts.push(id);
            }
            Op::Extract { layout_seed } => {
                if self.layouts.is_empty() {
                    return;
                }
                let layout = self.layouts[layout_seed % self.layouts.len()];
                let e = self.require("ExtractedNetlist");
                self.db
                    .record_derived(
                        e,
                        Metadata::by("p"),
                        b"x",
                        Derivation::by_tool(self.extractor, [layout]),
                    )
                    .expect("ok");
            }
            Op::Edit { netlist_seed } => {
                let old = self.netlists[netlist_seed % self.netlists.len()];
                let e = self.require("EditedNetlist");
                let id = self
                    .db
                    .record_derived(
                        e,
                        Metadata::by("p"),
                        b"net'",
                        Derivation::by_tool(self.editor, [old]),
                    )
                    .expect("ok");
                self.netlists.push(id);
            }
        }
    }
}

fn full_lint(db: &HistoryDb) -> (String, usize) {
    let mut out = Diagnostics::new();
    let mut linter = HistoryLinter::new();
    linter.lint_full(db, &mut out).expect("lints");
    out.sort();
    (out.render_text(), linter.stats().solver_visits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After every batch of random history growth, re-linting
    /// incrementally yields byte-identical diagnostics to a fresh full
    /// lint without ever doing more solver work.
    #[test]
    fn incremental_lint_equals_full_lint(
        batches in prop::collection::vec(
            prop::collection::vec(op_strategy(), 1..12),
            1..6,
        ),
    ) {
        let mut fixture = Fixture::new();
        let mut linter = HistoryLinter::new();
        for batch in &batches {
            for op in batch {
                fixture.apply(op);
            }
            let mut inc = Diagnostics::new();
            linter.lint_incremental(&fixture.db, &mut inc).expect("lints");
            let inc_visits = linter.stats().solver_visits;
            inc.sort();

            let (full_text, full_visits) = full_lint(&fixture.db);
            prop_assert_eq!(inc.render_text(), full_text);
            prop_assert!(
                inc_visits <= full_visits,
                "incremental did more work ({} visits) than full ({})",
                inc_visits,
                full_visits
            );
        }
    }

    /// The persistent index predicts the same retrace cone for every
    /// instance as a from-scratch computation.
    #[test]
    fn persistent_index_predicts_identical_retrace_cones(
        ops in prop::collection::vec(op_strategy(), 1..24),
    ) {
        let mut fixture = Fixture::new();
        let mut linter = HistoryLinter::new();
        for op in &ops {
            fixture.apply(op);
        }
        let mut out = Diagnostics::new();
        linter.lint_incremental(&fixture.db, &mut out).expect("lints");
        for raw in 0..fixture.db.len() {
            let id = InstanceId::from_raw(raw as u64);
            let fresh = RetraceCone::compute(&fixture.db, id).expect("computes");
            let cached = linter.index().retrace_cone(&fixture.db, id).expect("computes");
            prop_assert_eq!(&fresh, &cached, "cone diverged for {}", id);
        }
    }
}
