//! Parallel-hazard detector tests: seeded conflicts are flagged, the
//! paper's Fig. 5 flow is hazard-clean.

use std::sync::Arc;

use hercules_analyze::{lint_flow, Diagnostics, Severity};
use hercules_flow::{fixtures as flow_fixtures, TaskGraph};
use hercules_schema::fixtures;

fn codes_of(flow: &TaskGraph) -> Diagnostics {
    let mut out = Diagnostics::new();
    lint_flow(flow, &mut out);
    out
}

/// Two independent expansions of `EditedNetlist` (each with its own
/// `CircuitEditor`) are concurrently schedulable and both write the
/// same entity type: a seeded write/write conflict.
#[test]
fn seeded_write_write_conflict_is_flagged() {
    let schema = Arc::new(fixtures::fig1());
    let mut flow = TaskGraph::new(schema.clone());
    let edited = schema.require("EditedNetlist").expect("known");
    let a = flow.seed(edited).expect("seeds");
    flow.expand(a).expect("expands");
    let b = flow.seed(edited).expect("seeds");
    flow.expand(b).expect("expands");

    let out = codes_of(&flow);
    let hit = out
        .iter()
        .find(|d| d.code == "HL0301")
        .expect("write/write hazard flagged");
    assert_eq!(hit.severity, Severity::Warn);
    assert!(hit.message.contains("EditedNetlist"));
}

/// A subtask reading a *bound* `EditedNetlist` leaf while another
/// subtask concurrently produces a new `EditedNetlist`: read/write.
#[test]
fn seeded_read_write_conflict_is_flagged() {
    let schema = Arc::new(fixtures::fig1());
    let mut flow = TaskGraph::new(schema.clone());
    let edited = schema.require("EditedNetlist").expect("known");

    // Writer: a standalone EditedNetlist construction.
    let writer = flow.seed(edited).expect("seeds");
    flow.expand(writer).expect("expands");

    // Reader: a Circuit whose netlist input stays a bound leaf,
    // specialized to the exact type the writer produces.
    let circuit = schema.require("Circuit").expect("known");
    let c = flow.seed(circuit).expect("seeds");
    let kids = flow.expand(c).expect("expands");
    let netlist_leaf = kids
        .iter()
        .copied()
        .find(|&k| {
            let e = flow.entity_of(k).expect("live");
            schema.entity(e).name() == "Netlist"
        })
        .expect("circuit has a netlist input");
    flow.specialize(netlist_leaf, edited).expect("specializes");

    let out = codes_of(&flow);
    let hit = out
        .iter()
        .find(|d| d.code == "HL0302")
        .expect("read/write hazard flagged");
    assert_eq!(hit.severity, Severity::Warn);
    assert!(hit.message.contains("EditedNetlist"));
}

/// Fig. 5 runs two branches concurrently, but they write *different*
/// members of the netlist family — no write/write or read/write
/// conflict, only the advisory family-overlap note.
#[test]
fn fig5_is_hazard_clean() {
    let schema = Arc::new(fixtures::fig1());
    let flow = flow_fixtures::fig5(schema).expect("fixture");
    let out = codes_of(&flow);
    assert!(
        !out.iter().any(|d| d.code == "HL0301" || d.code == "HL0302"),
        "fig5 must be hazard-clean, got:\n{}",
        out.render_text()
    );
    assert_eq!(out.count(Severity::Error), 0);
}

/// Dependent subtasks are NOT concurrent: a chain A -> B writing the
/// same type is ordered, so no hazard fires.
#[test]
fn ordered_subtasks_do_not_conflict() {
    let schema = Arc::new(fixtures::fig1());
    let mut flow = TaskGraph::new(schema.clone());
    let edited = schema.require("EditedNetlist").expect("known");
    let top = flow.seed(edited).expect("seeds");
    // Expand with the optional prior-netlist arc included, then
    // specialize and expand the prior: an EditedNetlist feeding an
    // EditedNetlist — same type, strictly ordered.
    let netlist = schema.require("Netlist").expect("known");
    let opt = hercules_flow::Expansion::new().with_optional(netlist);
    let kids = flow.expand_with(top, &opt).expect("expands");
    let prior = kids
        .iter()
        .copied()
        .find(|&k| {
            let e = flow.entity_of(k).expect("live");
            schema.entity(e).name() == "Netlist"
        })
        .expect("optional prior netlist");
    flow.specialize(prior, edited).expect("specializes");
    flow.expand(prior).expect("expands");

    let out = codes_of(&flow);
    assert!(
        !out.iter().any(|d| d.code == "HL0301" || d.code == "HL0302"),
        "ordered writes are not hazards, got:\n{}",
        out.render_text()
    );
}

/// The family-overlap advisory fires for concurrent writes to distinct
/// members of one subtype family (Fig. 6's edit and extract branches).
#[test]
fn family_overlap_is_advisory_only() {
    let schema = Arc::new(fixtures::fig1());
    let flow = flow_fixtures::fig6(schema).expect("fixture");
    let out = codes_of(&flow);
    let hit = out
        .iter()
        .find(|d| d.code == "HL0303")
        .expect("family overlap noted");
    assert_eq!(hit.severity, Severity::Info);
    assert!(hit.message.contains("Netlist"));
}
