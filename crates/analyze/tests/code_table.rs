//! Drift test for the generated HL pass table: the registry is the
//! single source of truth, and the tables embedded in `DESIGN.md` and
//! `README.md` between the `hl-pass-table` markers must match it
//! byte for byte. Regenerate by replacing the marked region with
//! [`render_markdown_table`]'s output.

use hercules_analyze::{render_markdown_table, Layer, PASSES};

const BEGIN: &str = "<!-- BEGIN GENERATED: hl-pass-table -->";
const END: &str = "<!-- END GENERATED: hl-pass-table -->";

/// Extracts the text between the generated-table markers.
fn between_markers<'a>(doc: &'a str, path: &str) -> &'a str {
    let start = doc
        .find(BEGIN)
        .unwrap_or_else(|| panic!("{path} is missing the `{BEGIN}` marker"))
        + BEGIN.len();
    let end = doc[start..]
        .find(END)
        .unwrap_or_else(|| panic!("{path} is missing the `{END}` marker"))
        + start;
    doc[start..end].trim_matches('\n')
}

#[test]
fn design_md_table_matches_the_registry() {
    let doc = include_str!("../../../DESIGN.md");
    assert_eq!(
        between_markers(doc, "DESIGN.md"),
        render_markdown_table().trim_end_matches('\n'),
        "DESIGN.md pass table drifted from the registry; regenerate it \
         from hercules_analyze::render_markdown_table()"
    );
}

#[test]
fn readme_table_matches_the_registry() {
    let doc = include_str!("../../../README.md");
    assert_eq!(
        between_markers(doc, "README.md"),
        render_markdown_table().trim_end_matches('\n'),
        "README.md pass table drifted from the registry; regenerate it \
         from hercules_analyze::render_markdown_table()"
    );
}

#[test]
fn registry_codes_are_sorted_and_unique() {
    let codes: Vec<&str> = PASSES.iter().map(|p| p.code).collect();
    let mut sorted = codes.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(codes, sorted, "registry codes must be sorted and unique");
}

#[test]
fn registry_codes_live_in_their_layers_range() {
    for p in PASSES {
        let number: u32 = p
            .code
            .strip_prefix("HL")
            .expect("HL-prefixed")
            .parse()
            .expect("numeric");
        let range = match p.layer {
            Layer::Schema => 100..200,
            Layer::Flow => 200..300,
            Layer::Hazard => 300..400,
            Layer::Workspace => 400..500,
            Layer::History | Layer::Session => 500..600,
        };
        assert!(
            range.contains(&number),
            "{} is outside the {} layer's code range {:?}",
            p.code,
            p.layer,
            range
        );
    }
}
