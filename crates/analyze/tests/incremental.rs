//! End-to-end tests of the incremental consistency engine (`HL05xx`)
//! against real executed sessions: a clean complex flow produces no
//! findings, an edit raises the whole staleness family, and the
//! incremental path analyzes only the affected cone while producing
//! byte-identical diagnostics.

use hercules::{eda, flow::fixtures as flow_fixtures, history::Metadata, Session};
use hercules_analyze::{lint_history, Diagnostics, HistoryLinter};
use hercules_history::{Derivation, InstanceId, RetraceCone};

/// Seeds a full-adder edited netlist for flows with a `Netlist` input.
fn seed_adder(session: &mut Session) -> InstanceId {
    let schema = session.schema().clone();
    let editor = schema.require("CircuitEditor").expect("known");
    let edited = schema.require("EditedNetlist").expect("known");
    let tool = session.db().instances_of(editor)[0];
    session
        .db_mut()
        .record_derived(
            edited,
            Metadata::by("tester").named("fa"),
            &eda::cells::full_adder().to_bytes(),
            Derivation::by_tool(tool, []),
        )
        .expect("records")
}

/// Builds and executes the Fig. 5 complex flow (entity reuse, multiple
/// outputs), returning the session and the seeded netlist.
fn executed_fig5() -> (Session, InstanceId) {
    let mut session = Session::odyssey("tester");
    let netlist_instance = seed_adder(&mut session);
    let schema = session.schema().clone();

    // Seed a prior Layout for the Fig. 5 extraction input.
    let placer = schema.require("Placer").expect("known");
    let layout_entity = schema.require("Layout").expect("known");
    let placer_inst = session.db().instances_of(placer)[0];
    let layout =
        eda::place(&eda::cells::full_adder(), &eda::PlacementRules::default()).expect("places");
    session
        .db_mut()
        .record_derived(
            layout_entity,
            Metadata::by("tester").named("adder layout"),
            &layout.to_bytes(),
            Derivation::by_tool(placer_inst, [netlist_instance]),
        )
        .expect("records");

    let flow = flow_fixtures::fig5(schema.clone()).expect("fixture");
    let netlist_node = flow
        .nodes()
        .find(|(_, n)| schema.entity(n.entity()).name() == "Netlist")
        .map(|(id, _)| id)
        .expect("shared netlist node");
    session.install_flow(flow);
    session.select(netlist_node, netlist_instance);
    let unbound = session.bind_latest().expect("flow installed");
    assert!(unbound.is_empty(), "library covers all leaves: {unbound:?}");
    session.run().expect("executes");
    (session, netlist_instance)
}

#[test]
fn executed_fig5_session_is_clean() {
    let (session, _) = executed_fig5();
    let mut out = Diagnostics::new();
    lint_history(session.db(), &mut out).expect("lints");
    assert!(
        !out.codes().iter().any(|c| c.starts_with("HL05")),
        "fresh execution must be consistent:\n{}",
        out.render_text()
    );
}

#[test]
fn editing_a_fig5_input_raises_the_staleness_family() {
    let (mut session, netlist) = executed_fig5();
    let schema = session.schema().clone();
    let editor = schema.require("CircuitEditor").expect("known");
    let edited = schema.require("EditedNetlist").expect("known");
    let editor_inst = session.db().instances_of(editor)[0];
    session
        .db_mut()
        .record_derived(
            edited,
            Metadata::by("tester").named("fa v2"),
            &eda::cells::ripple_adder(2).to_bytes(),
            Derivation::by_tool(editor_inst, [netlist]),
        )
        .expect("records");

    let mut out = Diagnostics::new();
    lint_history(session.db(), &mut out).expect("lints");
    let codes = out.codes();
    assert!(codes.contains("HL0501"), "direct staleness: {codes:?}");
    assert!(codes.contains("HL0502"), "transitive staleness: {codes:?}");
    assert!(codes.contains("HL0503"), "retrace-cone report: {codes:?}");
}

#[test]
fn incremental_relint_analyzes_only_the_cone_of_an_edit() {
    let (mut session, netlist) = executed_fig5();

    let mut linter = HistoryLinter::new();
    let mut first = Diagnostics::new();
    linter
        .lint_incremental(session.db(), &mut first)
        .expect("lints");
    let bootstrap = *linter.stats();
    assert_eq!(
        bootstrap.instances_analyzed, bootstrap.instances_total,
        "a fresh linter degenerates to a full analysis"
    );

    // Grow the history far from the edit (independent device models)
    // and absorb the growth with one lint, so the next cone measures
    // the edit alone.
    let schema = session.schema().clone();
    let dme = schema.require("DeviceModelEditor").expect("known");
    for n in 0..30 {
        session
            .db_mut()
            .record_primary(dme, Metadata::by("tester").named(&format!("dm{n}")), b"m")
            .expect("records");
    }
    let mut absorbed = Diagnostics::new();
    linter
        .lint_incremental(session.db(), &mut absorbed)
        .expect("lints");

    let editor = schema.require("CircuitEditor").expect("known");
    let edited = schema.require("EditedNetlist").expect("known");
    let editor_inst = session.db().instances_of(editor)[0];
    session
        .db_mut()
        .record_derived(
            edited,
            Metadata::by("tester").named("fa v2"),
            &eda::cells::ripple_adder(2).to_bytes(),
            Derivation::by_tool(editor_inst, [netlist]),
        )
        .expect("records");

    let mut inc = Diagnostics::new();
    linter
        .lint_incremental(session.db(), &mut inc)
        .expect("lints");
    let inc_stats = *linter.stats();

    let mut full = Diagnostics::new();
    let mut fresh = HistoryLinter::new();
    fresh.lint_full(session.db(), &mut full).expect("lints");
    let full_stats = *fresh.stats();

    inc.sort();
    full.sort();
    assert_eq!(
        inc.render_text(),
        full.render_text(),
        "incremental and full diagnostics must be byte-identical"
    );
    assert!(
        inc_stats.incremental && !full_stats.incremental,
        "stats label their mode"
    );
    assert!(
        inc_stats.instances_analyzed < full_stats.instances_analyzed / 2,
        "the cone ({}) must be well under the full scan ({})",
        inc_stats.instances_analyzed,
        full_stats.instances_analyzed
    );
    assert!(
        inc_stats.solver_visits < full_stats.solver_visits,
        "the seeded solve ({}) must visit fewer nodes than the full one ({})",
        inc_stats.solver_visits,
        full_stats.solver_visits
    );
}

#[test]
fn analysis_cone_matches_the_executors_retrace() {
    // An executor-built extraction chain: every derivation the recall
    // walks was recorded with its complete inputs.
    let mut session = Session::odyssey("tester");
    let netlist = seed_adder(&mut session);
    let ext = session.start_from_goal("ExtractedNetlist").expect("starts");
    let created = session.expand(ext).expect("expands");
    let layout_node = created[1];
    let created = session.expand(layout_node).expect("expands");
    session.select(created[1], netlist);
    session.bind_latest().expect("binds");
    session.run().expect("runs");
    let extracted = session.last_report().expect("ran").single(ext);

    let schema = session.schema().clone();
    let editor = schema.require("CircuitEditor").expect("known");
    let edited = schema.require("EditedNetlist").expect("known");
    let editor_inst = session.db().instances_of(editor)[0];
    session
        .db_mut()
        .record_derived(
            edited,
            Metadata::by("tester").named("fa v2"),
            &eda::cells::ripple_adder(2).to_bytes(),
            Derivation::by_tool(editor_inst, [netlist]),
        )
        .expect("records");

    // Compare the predicted cone with what the retrace actually does.
    let predicted = RetraceCone::compute(session.db(), extracted).expect("computes");
    assert!(!predicted.already_current, "the goal needs retracing");
    assert!(!predicted.cuts.is_empty(), "the edit forces a version cut");

    let report = session.retrace(extracted).expect("retraces");
    assert_eq!(
        report.cone, predicted,
        "the retrace consumed exactly the predicted cone"
    );
    assert!(
        report.report.runs() <= predicted.rerun.len(),
        "predicted reruns ({}) bound the actual invocations ({}) — the \
         cache may absorb some",
        predicted.rerun.len(),
        report.report.runs()
    );
}
