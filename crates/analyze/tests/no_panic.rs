//! Robustness properties: herclint never panics and always terminates,
//! whatever schema spec or task graph it is pointed at.

use std::sync::Arc;

use hercules_analyze::{lint_flow, lint_schema_spec, Diagnostics};
use hercules_flow::TaskGraph;
use hercules_schema::{synth::SynthConfig, DepKind, DepSpec, EntityKind, EntitySpec, SchemaSpec};
use proptest::prelude::*;

/// Arbitrary entity declarations over a small, colliding name pool —
/// duplicates, dangling supertypes, and composites included.
fn entity_soup() -> impl Strategy<Value = Vec<EntitySpec>> {
    prop::collection::vec(
        (
            0usize..6,
            prop::option::of(Just(EntityKind::Tool)),
            prop::option::of(0usize..6),
            prop::bool::ANY,
        ),
        0..8,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|(n, tool, sup, composite)| EntitySpec {
                name: format!("E{n}"),
                kind: Some(if tool.is_some() {
                    EntityKind::Tool
                } else {
                    EntityKind::Data
                }),
                supertype: sup.map(|s| format!("E{s}")),
                description: String::new(),
                composite,
            })
            .collect()
    })
}

/// Arbitrary dependency declarations — unknown names, self-loops,
/// duplicates, optional functional arcs, everything.
fn dep_soup() -> impl Strategy<Value = Vec<DepSpec>> {
    prop::collection::vec(
        (0usize..8, 0usize..8, prop::bool::ANY, prop::bool::ANY),
        0..12,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|(t, s, functional, optional)| DepSpec {
                target: format!("E{t}"),
                source: format!("E{s}"),
                kind: if functional {
                    DepKind::Functional
                } else {
                    DepKind::Data
                },
                optional,
            })
            .collect()
    })
}

fn synth_config() -> impl Strategy<Value = SynthConfig> {
    (1usize..5, 1usize..5, 1usize..4, 0usize..3).prop_map(|(layers, width, fanin, subtypes)| {
        SynthConfig {
            layers,
            width,
            fanin,
            subtypes,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `lint_schema_spec` terminates without panicking on arbitrary —
    /// mostly malformed — specs, and never reports anything when it
    /// builds a clean synthetic schema's spec.
    #[test]
    fn schema_linting_never_panics(entities in entity_soup(), deps in dep_soup()) {
        let spec = SchemaSpec { entities, deps };
        let mut out = Diagnostics::new();
        let _ = lint_schema_spec(&spec, &mut out);
        // Codes are well-formed whatever happened.
        for d in out.iter() {
            prop_assert!(d.code.starts_with("HL"), "bad code {}", d.code);
        }
    }

    /// Raw graph soup over a valid synthetic schema: `lint_flow` (gates,
    /// flow passes, hazard detector) never panics, including on cyclic
    /// graphs and schema-illegal edges.
    #[test]
    fn flow_linting_never_panics(
        cfg in synth_config(),
        nodes in prop::collection::vec(0usize..64, 1..10),
        edges in prop::collection::vec((0usize..10, 0usize..10, prop::bool::ANY), 0..16),
    ) {
        let schema = Arc::new(cfg.generate());
        let mut flow = TaskGraph::new(schema.clone());
        let ids: Vec<_> = nodes
            .iter()
            .map(|&n| {
                let ents: Vec<_> = schema.entity_ids().collect();
                flow.add_node_raw(ents[n % ents.len()]).expect("in range")
            })
            .collect();
        for (s, t, functional) in edges {
            let kind = if functional { DepKind::Functional } else { DepKind::Data };
            let _ = flow.add_edge_raw(ids[s % ids.len()], ids[t % ids.len()], kind);
        }
        let mut out = Diagnostics::new();
        lint_flow(&flow, &mut out);
        for d in out.iter() {
            prop_assert!(d.code.starts_with("HL"), "bad code {}", d.code);
        }
    }

    /// Linting a clean synthetic schema is idempotent and stable: two
    /// runs produce identical findings.
    #[test]
    fn schema_linting_is_deterministic(cfg in synth_config()) {
        let spec = cfg.generate().to_spec();
        let mut a = Diagnostics::new();
        let mut b = Diagnostics::new();
        let _ = lint_schema_spec(&spec, &mut a);
        let _ = lint_schema_spec(&spec, &mut b);
        let left: Vec<_> = a.iter().cloned().collect();
        let right: Vec<_> = b.iter().cloned().collect();
        prop_assert_eq!(left, right);
    }
}
