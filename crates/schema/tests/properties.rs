//! Property-based tests for task schemas.

use hercules_schema::{synth::SynthConfig, DepKind, SchemaBuilder, TaskSchema};
use proptest::prelude::*;

fn synth_config() -> impl Strategy<Value = SynthConfig> {
    (1usize..6, 1usize..6, 1usize..4, 0usize..3).prop_map(|(layers, width, fanin, subtypes)| {
        SynthConfig {
            layers,
            width,
            fanin,
            subtypes,
        }
    })
}

proptest! {
    /// Every generated synthetic schema is valid and topologically
    /// orderable over its required dependencies.
    #[test]
    fn synthetic_schemas_are_valid(cfg in synth_config()) {
        let schema = cfg.generate();
        let order = schema.topo_order();
        prop_assert_eq!(order.len(), schema.len());
        // Sources come before targets along required arcs.
        let pos = |id| order.iter().position(|&x| x == id).expect("present");
        for dep in schema.deps() {
            if dep.is_required() {
                prop_assert!(pos(dep.source()) < pos(dep.target()));
            }
        }
    }

    /// Spec round trips are the identity on valid schemas.
    #[test]
    fn spec_round_trip_identity(cfg in synth_config()) {
        let schema = cfg.generate();
        let spec = schema.to_spec();
        let rebuilt = spec.build().expect("valid spec rebuilds");
        prop_assert_eq!(rebuilt, schema);
    }

    /// JSON round trips through the try_from-validated serde path.
    #[test]
    fn json_round_trip(cfg in synth_config()) {
        let schema = cfg.generate();
        let json = serde_json::to_string(&schema).expect("serializes");
        let back: TaskSchema = serde_json::from_str(&json).expect("deserializes");
        prop_assert_eq!(back, schema);
    }

    /// The subtype relation is consistent: every entity's transitive
    /// subtypes report it as a supertype, with matching kinds.
    #[test]
    fn subtype_relation_is_consistent(cfg in synth_config()) {
        let schema = cfg.generate();
        for id in schema.entity_ids() {
            for sub in schema.all_subtypes(id) {
                prop_assert!(schema.is_subtype_of(sub, id));
                prop_assert_eq!(
                    schema.entity(sub).kind(),
                    schema.entity(id).kind()
                );
            }
            prop_assert!(schema.is_subtype_of(id, id), "reflexive");
        }
    }

    /// Random dependency soups never break the validator's guarantees:
    /// if `build` succeeds, the schema upholds its invariants; if it
    /// fails, the error is one of the documented rule violations.
    #[test]
    fn validator_accepts_only_invariant_holding_schemas(
        n_entities in 2usize..8,
        edges in prop::collection::vec((0usize..8, 0usize..8, prop::bool::ANY, prop::bool::ANY), 0..12),
    ) {
        let mut b = SchemaBuilder::new();
        let ids: Vec<_> = (0..n_entities)
            .map(|i| if i % 3 == 0 {
                b.tool(&format!("T{i}"))
            } else {
                b.data(&format!("D{i}"))
            })
            .collect();
        for (s, t, functional, optional) in edges {
            let (s, t) = (ids[s % n_entities], ids[t % n_entities]);
            match (functional, optional) {
                (true, _) => { b.functional(t, s); }
                (false, false) => { b.data_dep(t, s); }
                (false, true) => { b.optional_data_dep(t, s); }
            }
        }
        if let Ok(schema) = b.build() {
            // Invariant: at most one functional dep each, and it points
            // at a tool.
            for id in schema.entity_ids() {
                if let Some(f) = schema.functional_dep(id) {
                    prop_assert!(schema.entity(f.source()).kind().is_tool());
                    prop_assert_eq!(f.kind(), DepKind::Functional);
                }
            }
            // Invariant: required arcs are acyclic.
            prop_assert_eq!(schema.topo_order().len(), schema.len());
        }
    }

    /// Richer soup with subtype links and composite flags on top of
    /// the arc soup: the validator still only admits schemas that
    /// uphold every invariant, including the subtype rules.
    #[test]
    fn validator_holds_under_subtype_and_composite_soup(
        n_entities in 2usize..8,
        subtype_links in prop::collection::vec((0usize..8, 0usize..8), 0..6),
        composites in prop::collection::vec(0usize..8, 0..3),
        edges in prop::collection::vec((0usize..8, 0usize..8, prop::bool::ANY, prop::bool::ANY), 0..12),
    ) {
        let mut b = SchemaBuilder::new();
        let mut ids: Vec<_> = (0..n_entities)
            .map(|i| if i % 3 == 0 {
                b.tool(&format!("T{i}"))
            } else {
                b.data(&format!("D{i}"))
            })
            .collect();
        // Layer subtypes on top of anything built so far — including
        // other subtypes, giving multi-level chains.
        for (i, (base, _)) in subtype_links.iter().enumerate() {
            let sup = ids[base % ids.len()];
            ids.push(b.subtype(&format!("S{i}"), sup));
        }
        // Composites over arbitrary member sets, empty ones included
        // (the gate must reject those).
        for (i, seed) in composites.iter().enumerate() {
            let members: Vec<_> = ids.iter().copied().take(seed % 3).collect();
            ids.push(b.composite(&format!("C{i}"), &members));
        }
        let n_total = ids.len();
        for (s, t, functional, optional) in edges {
            let (s, t) = (ids[s % n_total], ids[t % n_total]);
            match (functional, optional) {
                (true, _) => { b.functional(t, s); }
                (false, false) => { b.data_dep(t, s); }
                (false, true) => { b.optional_data_dep(t, s); }
            }
        }
        if let Ok(schema) = b.build() {
            for id in schema.entity_ids() {
                // Subtype chains terminate (no cycles) and preserve kind.
                let chain = schema.supertype_chain(id);
                prop_assert!(chain.len() <= schema.len());
                for &sup in &chain {
                    prop_assert_eq!(schema.entity(sup).kind(), schema.entity(id).kind());
                }
                // Abstract entities never carry a construction method.
                if schema.is_abstract(id) {
                    prop_assert!(schema.functional_dep(id).is_none());
                }
                // Composites must have members to compose.
                if schema.entity(id).is_composite() {
                    prop_assert!(schema.data_deps(id).next().is_some());
                }
            }
            prop_assert_eq!(schema.topo_order().len(), schema.len());
        }
    }
}
