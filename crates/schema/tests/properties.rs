//! Property-based tests for task schemas.

use hercules_schema::{synth::SynthConfig, DepKind, SchemaBuilder, TaskSchema};
use proptest::prelude::*;

fn synth_config() -> impl Strategy<Value = SynthConfig> {
    (1usize..6, 1usize..6, 1usize..4, 0usize..3).prop_map(|(layers, width, fanin, subtypes)| {
        SynthConfig {
            layers,
            width,
            fanin,
            subtypes,
        }
    })
}

proptest! {
    /// Every generated synthetic schema is valid and topologically
    /// orderable over its required dependencies.
    #[test]
    fn synthetic_schemas_are_valid(cfg in synth_config()) {
        let schema = cfg.generate();
        let order = schema.topo_order();
        prop_assert_eq!(order.len(), schema.len());
        // Sources come before targets along required arcs.
        let pos = |id| order.iter().position(|&x| x == id).expect("present");
        for dep in schema.deps() {
            if dep.is_required() {
                prop_assert!(pos(dep.source()) < pos(dep.target()));
            }
        }
    }

    /// Spec round trips are the identity on valid schemas.
    #[test]
    fn spec_round_trip_identity(cfg in synth_config()) {
        let schema = cfg.generate();
        let spec = schema.to_spec();
        let rebuilt = spec.build().expect("valid spec rebuilds");
        prop_assert_eq!(rebuilt, schema);
    }

    /// JSON round trips through the try_from-validated serde path.
    #[test]
    fn json_round_trip(cfg in synth_config()) {
        let schema = cfg.generate();
        let json = serde_json::to_string(&schema).expect("serializes");
        let back: TaskSchema = serde_json::from_str(&json).expect("deserializes");
        prop_assert_eq!(back, schema);
    }

    /// The subtype relation is consistent: every entity's transitive
    /// subtypes report it as a supertype, with matching kinds.
    #[test]
    fn subtype_relation_is_consistent(cfg in synth_config()) {
        let schema = cfg.generate();
        for id in schema.entity_ids() {
            for sub in schema.all_subtypes(id) {
                prop_assert!(schema.is_subtype_of(sub, id));
                prop_assert_eq!(
                    schema.entity(sub).kind(),
                    schema.entity(id).kind()
                );
            }
            prop_assert!(schema.is_subtype_of(id, id), "reflexive");
        }
    }

    /// Random dependency soups never break the validator's guarantees:
    /// if `build` succeeds, the schema upholds its invariants; if it
    /// fails, the error is one of the documented rule violations.
    #[test]
    fn validator_accepts_only_invariant_holding_schemas(
        n_entities in 2usize..8,
        edges in prop::collection::vec((0usize..8, 0usize..8, prop::bool::ANY, prop::bool::ANY), 0..12),
    ) {
        let mut b = SchemaBuilder::new();
        let ids: Vec<_> = (0..n_entities)
            .map(|i| if i % 3 == 0 {
                b.tool(&format!("T{i}"))
            } else {
                b.data(&format!("D{i}"))
            })
            .collect();
        for (s, t, functional, optional) in edges {
            let (s, t) = (ids[s % n_entities], ids[t % n_entities]);
            match (functional, optional) {
                (true, _) => { b.functional(t, s); }
                (false, false) => { b.data_dep(t, s); }
                (false, true) => { b.optional_data_dep(t, s); }
            }
        }
        if let Ok(schema) = b.build() {
            // Invariant: at most one functional dep each, and it points
            // at a tool.
            for id in schema.entity_ids() {
                if let Some(f) = schema.functional_dep(id) {
                    prop_assert!(schema.entity(f.source()).kind().is_tool());
                    prop_assert_eq!(f.kind(), DepKind::Functional);
                }
            }
            // Invariant: required arcs are acyclic.
            prop_assert_eq!(schema.topo_order().len(), schema.len());
        }
    }
}
