//! Design-entity types: the nodes of a task schema.
//!
//! The paper treats *tools and data uniformly* as "design entities"
//! (§3.1): a `Simulator` is an entity just like a `Netlist`. This is what
//! lets tools be created during the design (Fig. 2) and passed as data to
//! other tools (§3.3).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of an entity *type* within one [`TaskSchema`].
///
/// Ids are dense indices assigned in declaration order by the
/// [`SchemaBuilder`]; they are only meaningful relative to the schema that
/// produced them.
///
/// # Examples
///
/// ```
/// use hercules_schema::fixtures;
///
/// let schema = fixtures::fig1();
/// let netlist = schema.entity_id("Netlist").expect("declared in fig. 1");
/// assert_eq!(schema.entity(netlist).name(), "Netlist");
/// ```
///
/// [`TaskSchema`]: crate::TaskSchema
/// [`SchemaBuilder`]: crate::SchemaBuilder
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EntityTypeId(pub(crate) u32);

impl EntityTypeId {
    /// Returns the raw dense index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates an id from a raw index.
    ///
    /// Intended for deserialization and testing; an id fabricated for the
    /// wrong schema is detected by the accessors, which return
    /// [`SchemaError::UnknownEntityId`](crate::SchemaError::UnknownEntityId).
    pub fn from_index(index: usize) -> EntityTypeId {
        EntityTypeId(index as u32)
    }
}

impl fmt::Display for EntityTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Whether an entity type denotes a tool or a piece of design data.
///
/// Functional dependencies must point at [`EntityKind::Tool`] entities;
/// data dependencies may point at either kind, which is how "tools
/// themselves may serve as data input to other tools" (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EntityKind {
    /// An executable design function (editor, simulator, extractor, …).
    Tool,
    /// A design datum (netlist, layout, performance, …).
    Data,
}

impl EntityKind {
    /// Returns `true` for [`EntityKind::Tool`].
    pub fn is_tool(self) -> bool {
        matches!(self, EntityKind::Tool)
    }

    /// Returns `true` for [`EntityKind::Data`].
    pub fn is_data(self) -> bool {
        matches!(self, EntityKind::Data)
    }
}

impl fmt::Display for EntityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntityKind::Tool => f.write_str("tool"),
            EntityKind::Data => f.write_str("data"),
        }
    }
}

/// One declared entity type of a task schema.
///
/// Construction-related facts (functional dependency, data dependencies,
/// subtypes) live on the schema itself and are reached through
/// [`TaskSchema`](crate::TaskSchema) accessors; `EntityType` carries the
/// intrinsic declaration: name, kind, optional supertype and an optional
/// free-form description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntityType {
    pub(crate) id: EntityTypeId,
    pub(crate) name: String,
    pub(crate) kind: EntityKind,
    pub(crate) supertype: Option<EntityTypeId>,
    pub(crate) description: String,
    /// Explicit composite annotation (§3.1: "composed entities"): the
    /// entity groups other entities and has implicit composition /
    /// decomposition functions instead of a tool.
    pub(crate) composite: bool,
}

impl EntityType {
    /// Returns the id of this entity type.
    pub fn id(&self) -> EntityTypeId {
        self.id
    }

    /// Returns the unique name of this entity type.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns whether this entity is a tool or data.
    pub fn kind(&self) -> EntityKind {
        self.kind
    }

    /// Returns the direct supertype, if this entity was declared as a
    /// subtype (e.g. `ExtractedNetlist` under `Netlist` in Fig. 1).
    pub fn supertype(&self) -> Option<EntityTypeId> {
        self.supertype
    }

    /// Returns the free-form description given at declaration time.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Returns `true` if this entity was annotated as a composite
    /// (grouping) entity, such as `Circuit` = `DeviceModels` + `Netlist`.
    pub fn is_composite(&self) -> bool {
        self.composite
    }
}

impl fmt::Display for EntityType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_round_trips_through_index() {
        let id = EntityTypeId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "#7");
    }

    #[test]
    fn kind_predicates() {
        assert!(EntityKind::Tool.is_tool());
        assert!(!EntityKind::Tool.is_data());
        assert!(EntityKind::Data.is_data());
        assert!(!EntityKind::Data.is_tool());
        assert_eq!(EntityKind::Tool.to_string(), "tool");
        assert_eq!(EntityKind::Data.to_string(), "data");
    }

    #[test]
    fn ids_order_by_declaration_index() {
        assert!(EntityTypeId::from_index(0) < EntityTypeId::from_index(1));
    }
}
