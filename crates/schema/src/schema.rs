//! The task schema proper: a validated graph of entity types and
//! dependencies, with the lookup queries the rest of the framework needs.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::dependency::{DepKind, Dependency};
use crate::entity::{EntityKind, EntityType, EntityTypeId};
use crate::error::SchemaError;
use crate::spec::SchemaSpec;

/// A validated task schema (§3.1).
///
/// The schema "specifies the dependencies between design entities (both
/// tools and data)" and serves two purposes: it states the construction
/// rules by which tasks can be built, and it is the data schema for the
/// design-history database.
///
/// A `TaskSchema` is immutable once built; construct one with
/// [`SchemaBuilder`](crate::SchemaBuilder).
///
/// # Examples
///
/// ```
/// use hercules_schema::{EntityKind, SchemaBuilder};
///
/// # fn main() -> Result<(), hercules_schema::SchemaError> {
/// let mut b = SchemaBuilder::new();
/// let editor = b.tool("NetlistEditor");
/// let netlist = b.data("Netlist");
/// b.functional(netlist, editor);
/// let schema = b.build()?;
/// assert_eq!(schema.len(), 2);
/// assert!(schema.functional_dep(netlist).is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "SchemaSpec", into = "SchemaSpec")]
pub struct TaskSchema {
    pub(crate) entities: Vec<EntityType>,
    pub(crate) deps: Vec<Dependency>,
    // Derived indexes, rebuilt on deserialization.
    pub(crate) by_name: HashMap<String, EntityTypeId>,
    /// For each entity: index into `deps` of its functional dependency.
    pub(crate) functional: Vec<Option<usize>>,
    /// For each entity: indexes into `deps` of its data dependencies, in
    /// declaration order.
    pub(crate) data: Vec<Vec<usize>>,
    /// For each entity: indexes into `deps` where it is the *source*.
    pub(crate) dependents: Vec<Vec<usize>>,
    /// For each entity: ids of its direct subtypes.
    pub(crate) subtypes: Vec<Vec<EntityTypeId>>,
}

impl TaskSchema {
    /// Returns the number of declared entity types.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// Returns `true` if the schema declares no entities.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Returns the number of dependency arcs.
    pub fn dep_count(&self) -> usize {
        self.deps.len()
    }

    /// Returns the entity type with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this schema; ids are only valid
    /// for the schema that created them. Use [`TaskSchema::get`] for a
    /// fallible lookup.
    pub fn entity(&self, id: EntityTypeId) -> &EntityType {
        &self.entities[id.index()]
    }

    /// Returns the entity type with the given id, or `None` if the id is
    /// out of range.
    pub fn get(&self, id: EntityTypeId) -> Option<&EntityType> {
        self.entities.get(id.index())
    }

    /// Looks up an entity type by its unique name.
    pub fn entity_id(&self, name: &str) -> Option<EntityTypeId> {
        self.by_name.get(name).copied()
    }

    /// Looks up an entity type by name, producing a schema error for
    /// unknown names (convenient inside `?` chains).
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::UnknownEntity`] if no entity has this name.
    pub fn require(&self, name: &str) -> Result<EntityTypeId, SchemaError> {
        self.entity_id(name)
            .ok_or_else(|| SchemaError::UnknownEntity(name.to_owned()))
    }

    /// Iterates over all entity types in declaration order.
    pub fn entities(&self) -> impl Iterator<Item = &EntityType> + '_ {
        self.entities.iter()
    }

    /// Iterates over all entity type ids in declaration order.
    pub fn entity_ids(&self) -> impl Iterator<Item = EntityTypeId> + '_ {
        (0..self.entities.len() as u32).map(EntityTypeId)
    }

    /// Iterates over all dependency arcs.
    pub fn deps(&self) -> impl Iterator<Item = &Dependency> + '_ {
        self.deps.iter()
    }

    /// Returns the functional dependency of `id`, i.e. the arc naming the
    /// tool that constructs it, if it has one.
    pub fn functional_dep(&self, id: EntityTypeId) -> Option<&Dependency> {
        self.functional[id.index()].map(|i| &self.deps[i])
    }

    /// Returns the tool entity that constructs `id`, if any.
    pub fn constructing_tool(&self, id: EntityTypeId) -> Option<EntityTypeId> {
        self.functional_dep(id).map(Dependency::source)
    }

    /// Returns the data dependencies of `id` in declaration order.
    pub fn data_deps(&self, id: EntityTypeId) -> impl Iterator<Item = &Dependency> + '_ {
        self.data[id.index()].iter().map(move |&i| &self.deps[i])
    }

    /// Returns all dependencies (functional first, then data) of `id`.
    pub fn deps_of(&self, id: EntityTypeId) -> Vec<&Dependency> {
        let mut out = Vec::new();
        if let Some(f) = self.functional_dep(id) {
            out.push(f);
        }
        out.extend(self.data_deps(id));
        out
    }

    /// Returns the arcs in which `id` is the *source*: the entities that
    /// depend on `id`. This drives downward expansion of a flow ("what can
    /// I make from this?") and forward chaining over the schema.
    pub fn dependents_of(&self, id: EntityTypeId) -> impl Iterator<Item = &Dependency> + '_ {
        self.dependents[id.index()]
            .iter()
            .map(move |&i| &self.deps[i])
    }

    /// Returns the direct subtypes of `id` (e.g. `ExtractedNetlist` and
    /// `EditedNetlist` under `Netlist` in Fig. 1).
    pub fn subtypes(&self, id: EntityTypeId) -> &[EntityTypeId] {
        &self.subtypes[id.index()]
    }

    /// Returns every transitive subtype of `id`, in breadth-first order,
    /// excluding `id` itself.
    pub fn all_subtypes(&self, id: EntityTypeId) -> Vec<EntityTypeId> {
        let mut out = Vec::new();
        let mut queue: Vec<EntityTypeId> = self.subtypes(id).to_vec();
        while let Some(next) = queue.first().copied() {
            queue.remove(0);
            out.push(next);
            queue.extend_from_slice(self.subtypes(next));
        }
        out
    }

    /// Returns `true` if `sub` equals `sup` or is a transitive subtype of
    /// `sup`. Instance selection and flow validation use this to accept a
    /// subtype instance wherever the supertype is expected.
    pub fn is_subtype_of(&self, sub: EntityTypeId, sup: EntityTypeId) -> bool {
        let mut cur = Some(sub);
        while let Some(id) = cur {
            if id == sup {
                return true;
            }
            cur = self.entity(id).supertype();
        }
        false
    }

    /// Returns the chain of supertypes of `id`, nearest first, excluding
    /// `id` itself.
    pub fn supertype_chain(&self, id: EntityTypeId) -> Vec<EntityTypeId> {
        let mut out = Vec::new();
        let mut cur = self.entity(id).supertype();
        while let Some(s) = cur {
            out.push(s);
            cur = self.entity(s).supertype();
        }
        out
    }

    /// Returns `true` if `id` is *abstract*: it has subtypes that carry
    /// the construction methods, so a flow node of this type must be
    /// specialized before it can be expanded (§3.2, Fig. 4b).
    pub fn is_abstract(&self, id: EntityTypeId) -> bool {
        !self.subtypes(id).is_empty() && self.functional_dep(id).is_none()
    }

    /// Returns `true` if `id` is a *primary* entity: no functional and no
    /// data dependencies. Primary entities are the leaves of every flow;
    /// their instances enter the system from outside (imported libraries,
    /// hand-written stimuli, tool binaries).
    pub fn is_primary(&self, id: EntityTypeId) -> bool {
        self.functional_dep(id).is_none()
            && self.data[id.index()].is_empty()
            && self.subtypes(id).is_empty()
    }

    /// Returns `true` if `id` is a composite (grouping) entity: data
    /// dependencies only, no functional dependency (§3.1).
    pub fn is_composite(&self, id: EntityTypeId) -> bool {
        self.entity(id).is_composite()
    }

    /// Returns the entities a composite groups together, or an empty
    /// vector if `id` is not composite.
    pub fn components_of(&self, id: EntityTypeId) -> Vec<EntityTypeId> {
        if !self.is_composite(id) {
            return Vec::new();
        }
        self.data_deps(id).map(Dependency::source).collect()
    }

    /// Returns `true` if `id` can be *constructed* by a task: it has a
    /// functional dependency, or it is composite (implicit composition
    /// function), or it is abstract with at least one constructible
    /// subtype.
    pub fn is_constructible(&self, id: EntityTypeId) -> bool {
        if self.functional_dep(id).is_some() || self.is_composite(id) {
            return true;
        }
        self.subtypes(id).iter().any(|&s| self.is_constructible(s))
    }

    /// Returns all tool entity ids (the tool catalog of §4.1).
    pub fn tools(&self) -> Vec<EntityTypeId> {
        self.entity_ids()
            .filter(|&id| self.entity(id).kind() == EntityKind::Tool)
            .collect()
    }

    /// Returns all data entity ids (the entity catalog of §4.1 minus
    /// tools).
    pub fn data_entities(&self) -> Vec<EntityTypeId> {
        self.entity_ids()
            .filter(|&id| self.entity(id).kind() == EntityKind::Data)
            .collect()
    }

    /// Returns a topological order of the entity types over *required*
    /// dependencies (sources before targets). Optional arcs are ignored,
    /// exactly because they are what makes the full graph cyclic.
    ///
    /// The order exists for every validated schema; validation rejects
    /// required-dependency cycles.
    pub fn topo_order(&self) -> Vec<EntityTypeId> {
        let n = self.entities.len();
        let mut indegree = vec![0usize; n];
        for dep in &self.deps {
            if dep.is_required() {
                indegree[dep.target().index()] += 1;
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            let id = EntityTypeId(i as u32);
            order.push(id);
            for dep in self.dependents_of(id) {
                if dep.is_required() {
                    let t = dep.target().index();
                    indegree[t] -= 1;
                    if indegree[t] == 0 {
                        ready.push(t);
                    }
                }
            }
        }
        debug_assert_eq!(order.len(), n, "validated schema must be acyclic");
        order
    }

    /// Converts this schema into its declarative, serializable form.
    pub fn to_spec(&self) -> SchemaSpec {
        SchemaSpec::from(self.clone())
    }

    /// Looks up the dependency arc from `source` to `target` of the given
    /// kind, if declared.
    pub fn find_dep(
        &self,
        target: EntityTypeId,
        source: EntityTypeId,
        kind: DepKind,
    ) -> Option<&Dependency> {
        self.deps_of(target)
            .into_iter()
            .find(|d| d.source() == source && d.kind() == kind)
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::SchemaBuilder;
    use crate::entity::EntityKind;

    #[test]
    fn lookups_round_trip_names_and_ids() {
        let mut b = SchemaBuilder::new();
        let sim = b.tool("Simulator");
        let net = b.data("Netlist");
        let perf = b.data("Performance");
        b.functional(perf, sim);
        b.data_dep(perf, net);
        let s = b.build().expect("valid schema");

        assert_eq!(s.len(), 3);
        assert_eq!(s.dep_count(), 2);
        assert_eq!(s.entity_id("Simulator"), Some(sim));
        assert_eq!(s.entity(net).name(), "Netlist");
        assert!(s.get(crate::EntityTypeId::from_index(99)).is_none());
        assert!(s.require("Nope").is_err());
        assert_eq!(s.tools(), vec![sim]);
        assert_eq!(s.data_entities(), vec![net, perf]);
    }

    #[test]
    fn functional_and_data_deps_are_separated() {
        let mut b = SchemaBuilder::new();
        let sim = b.tool("Simulator");
        let net = b.data("Netlist");
        let stim = b.data("Stimuli");
        let perf = b.data("Performance");
        b.functional(perf, sim);
        b.data_dep(perf, net);
        b.data_dep(perf, stim);
        let s = b.build().expect("valid schema");

        assert_eq!(s.constructing_tool(perf), Some(sim));
        let data: Vec<_> = s.data_deps(perf).map(|d| d.source()).collect();
        assert_eq!(data, vec![net, stim]);
        assert_eq!(s.deps_of(perf).len(), 3);
        assert!(s.functional_dep(net).is_none());
        assert!(s.is_primary(net));
        assert!(!s.is_primary(perf));
    }

    #[test]
    fn dependents_drive_downward_expansion() {
        let mut b = SchemaBuilder::new();
        let sim = b.tool("Simulator");
        let net = b.data("Netlist");
        let perf = b.data("Performance");
        let verif = b.tool("Verifier");
        let rep = b.data("Verification");
        b.functional(perf, sim);
        b.data_dep(perf, net);
        b.functional(rep, verif);
        b.data_dep(rep, net);
        let s = b.build().expect("valid schema");

        let mut users: Vec<_> = s.dependents_of(net).map(|d| d.target()).collect();
        users.sort();
        assert_eq!(users, vec![perf, rep]);
    }

    #[test]
    fn subtype_queries() {
        let mut b = SchemaBuilder::new();
        let net = b.data("Netlist");
        let ext = b.subtype("ExtractedNetlist", net);
        let edi = b.subtype("EditedNetlist", net);
        let deep = b.subtype("FlatExtractedNetlist", ext);
        let tool = b.tool("Extractor");
        b.functional(ext, tool);
        let s = b.build().expect("valid schema");

        assert_eq!(s.subtypes(net), &[ext, edi]);
        assert_eq!(s.all_subtypes(net), vec![ext, edi, deep]);
        assert!(s.is_subtype_of(deep, net));
        assert!(s.is_subtype_of(net, net));
        assert!(!s.is_subtype_of(net, ext));
        assert_eq!(s.supertype_chain(deep), vec![ext, net]);
        assert!(s.is_abstract(net));
        assert!(!s.is_abstract(ext));
        assert_eq!(s.entity(ext).kind(), EntityKind::Data);
        assert!(s.is_constructible(net), "via ExtractedNetlist");
    }

    #[test]
    fn topo_order_respects_required_deps() {
        let mut b = SchemaBuilder::new();
        let ed = b.tool("Editor");
        let net = b.data("Netlist");
        let sim = b.tool("Simulator");
        let perf = b.data("Performance");
        b.functional(net, ed);
        b.functional(perf, sim);
        b.data_dep(perf, net);
        let s = b.build().expect("valid schema");
        let order = s.topo_order();
        let pos = |id| order.iter().position(|&x| x == id).expect("present");
        assert!(pos(ed) < pos(net));
        assert!(pos(net) < pos(perf));
        assert!(pos(sim) < pos(perf));
    }

    #[test]
    fn composite_components() {
        let mut b = SchemaBuilder::new();
        let dm = b.data("DeviceModels");
        let net = b.data("Netlist");
        let cct = b.composite("Circuit", &[dm, net]);
        let s = b.build().expect("valid schema");
        assert!(s.is_composite(cct));
        assert_eq!(s.components_of(cct), vec![dm, net]);
        assert!(s.components_of(net).is_empty());
        assert!(s.is_constructible(cct), "implicit composition function");
    }
}
