//! Reference schemas reconstructed from the paper's figures.
//!
//! The DAC'93 paper shows two task schemas: the running example of Fig. 1
//! (editors, simulator, extractor, verifier, plotter, with subtyping, an
//! optional loop-breaking arc, and the composite `Circuit` entity) and the
//! Fig. 2 subgraph in which a tool — a COSMOS-style compiled simulator —
//! is itself created during the design.
//!
//! The figures in the available text are partially OCR-damaged; the
//! reconstruction below keeps every feature the prose attributes to them:
//!
//! * `Netlist` is abstract with subtypes `ExtractedNetlist` and
//!   `EditedNetlist` (§3.1, "two subtypes of entity type Netlist that have
//!   different construction methods");
//! * `EditedNetlist` optionally depends on a `Netlist` (the dashed,
//!   loop-breaking arc of Fig. 1);
//! * `Circuit` is a composite of `DeviceModels` and `Netlist` (§3.1);
//! * `SimulatorOptions` is the "options or arguments themselves as an
//!   entity type" example (§3.3);
//! * Fig. 3's flow `placement = placer(circuit_editor(circuit),
//!   placement_rules)` is expressible;
//! * Fig. 8's synthesis (`Netlist → Placer → Layout`) and verification
//!   (`Layout → Extractor → ExtractedNetlist → Verifier ← Netlist`) flows
//!   are expressible.

use crate::builder::SchemaBuilder;
use crate::schema::TaskSchema;

/// Builds the Fig. 1 example task schema.
///
/// # Examples
///
/// ```
/// let schema = hercules_schema::fixtures::fig1();
/// let netlist = schema.entity_id("Netlist").expect("declared");
/// assert!(schema.is_abstract(netlist));
/// assert_eq!(schema.subtypes(netlist).len(), 2);
/// ```
pub fn fig1() -> TaskSchema {
    let mut b = SchemaBuilder::new();

    // Tools.
    let device_model_editor = b.tool("DeviceModelEditor");
    let circuit_editor = b.tool("CircuitEditor");
    let placer = b.tool("Placer");
    let extractor = b.tool("Extractor");
    let simulator = b.tool("Simulator");
    let verifier = b.tool("Verifier");
    let plotter = b.tool("Plotter");
    b.describe(circuit_editor, "interactive schematic/netlist editor");
    b.describe(simulator, "circuit simulator (HSpice-class)");

    // Data.
    let device_models = b.data("DeviceModels");
    let netlist = b.data("Netlist");
    let edited_netlist = b.subtype("EditedNetlist", netlist);
    let extracted_netlist = b.subtype("ExtractedNetlist", netlist);
    let circuit = b.composite("Circuit", &[device_models, netlist]);
    let placement_rules = b.data("PlacementRules");
    let layout = b.data("Layout");
    let extraction_statistics = b.data("ExtractionStatistics");
    let stimuli = b.data("Stimuli");
    let simulator_options = b.data("SimulatorOptions");
    let performance = b.data("Performance");
    let verification = b.data("Verification");
    let performance_plot = b.data("PerformancePlot");
    b.describe(netlist, "abstract netlist; specialize before expansion");
    b.describe(circuit, "composite entity: device models + netlist");
    b.describe(
        simulator_options,
        "tool arguments modelled as an entity type (section 3.3)",
    );

    // Construction rules.
    b.functional(device_models, device_model_editor);
    b.functional(edited_netlist, circuit_editor);
    b.optional_data_dep(edited_netlist, netlist); // dashed loop-breaking arc
    b.functional(extracted_netlist, extractor);
    b.data_dep(extracted_netlist, layout);
    b.functional(extraction_statistics, extractor);
    b.data_dep(extraction_statistics, layout);
    b.functional(layout, placer);
    b.data_dep(layout, netlist);
    b.data_dep(layout, placement_rules);
    b.functional(performance, simulator);
    b.data_dep(performance, circuit);
    b.data_dep(performance, stimuli);
    b.optional_data_dep(performance, simulator_options);
    b.functional(verification, verifier);
    b.data_dep(verification, netlist);
    b.data_dep(verification, extracted_netlist);
    b.functional(performance_plot, plotter);
    b.data_dep(performance_plot, performance);

    b.build().expect("fig. 1 schema is valid by construction")
}

/// Builds the Fig. 2 subgraph: a tool created during the design.
///
/// A `SimulatorCompiler` (COSMOS \[10\] style) compiles a `Netlist` into a
/// `CompiledSimulator` — a *tool* entity with a functional dependency —
/// which then produces `SwitchSimulation` results from `Stimuli`.
///
/// # Examples
///
/// ```
/// use hercules_schema::EntityKind;
///
/// let schema = hercules_schema::fixtures::fig2();
/// let sim = schema.entity_id("CompiledSimulator").expect("declared");
/// assert_eq!(schema.entity(sim).kind(), EntityKind::Tool);
/// assert!(schema.functional_dep(sim).is_some(), "a tool with a derivation");
/// ```
pub fn fig2() -> TaskSchema {
    let mut b = SchemaBuilder::new();
    fig2_into(&mut b);
    b.build().expect("fig. 2 schema is valid by construction")
}

/// Adds the Fig. 2 entities to an existing builder, declaring `Netlist`
/// and `Stimuli` only if absent (so it can be merged into Fig. 1).
fn fig2_into(b: &mut SchemaBuilder) {
    let netlist = match b.names.iter().position(|n| n == "Netlist") {
        Some(i) => crate::EntityTypeId::from_index(i),
        None => b.data("Netlist"),
    };
    let stimuli = match b.names.iter().position(|n| n == "Stimuli") {
        Some(i) => crate::EntityTypeId::from_index(i),
        None => b.data("Stimuli"),
    };
    let compiler = b.tool("SimulatorCompiler");
    b.describe(compiler, "compiles a netlist into a switch-level simulator");
    let compiled = b.tool("CompiledSimulator");
    b.describe(
        compiled,
        "tool created during the design (COSMOS-style compiled simulator)",
    );
    let stats = b.data("SwitchSimulation");
    b.functional(compiled, compiler);
    b.data_dep(compiled, netlist);
    b.functional(stats, compiled);
    b.data_dep(stats, stimuli);
}

/// Builds the combined Odyssey schema: Fig. 1 merged with Fig. 2, plus
/// the §3.3 extras — an `Optimizer` tool whose product takes a
/// `Simulator` *as data input* ("an optimization procedure may have a
/// circuit simulator passed to it as an argument").
///
/// This is the schema the `hercules` task manager, the examples and the
/// benchmarks use.
///
/// # Examples
///
/// ```
/// let schema = hercules_schema::fixtures::odyssey();
/// let opt = schema.entity_id("OptimizedNetlist").expect("declared");
/// let sim = schema.entity_id("Simulator").expect("declared");
/// // A tool appearing as a *data* input of another task:
/// assert!(schema
///     .data_deps(opt)
///     .any(|d| d.source() == sim));
/// ```
pub fn odyssey() -> TaskSchema {
    let mut b = odyssey_builder();
    b_finish(&mut b);
    b.build().expect("odyssey schema is valid by construction")
}

fn odyssey_builder() -> SchemaBuilder {
    // Rebuild fig. 1 declarations inside a builder we can extend.
    let mut b = SchemaBuilder::new();
    let spec = fig1().to_spec();
    for e in &spec.entities {
        b.names.push(e.name.clone());
        b.kinds.push(e.kind);
        b.supertypes.push(None);
        b.descriptions.push(e.description.clone());
        b.composites.push(e.composite);
    }
    let lookup = |b: &SchemaBuilder, name: &str| {
        crate::EntityTypeId::from_index(
            b.names.iter().position(|n| n == name).expect("fig. 1 name"),
        )
    };
    for (i, e) in spec.entities.iter().enumerate() {
        if let Some(sup) = &e.supertype {
            b.supertypes[i] = Some(lookup(&b, sup));
        }
    }
    for d in &spec.deps {
        let target = lookup(&b, &d.target);
        let source = lookup(&b, &d.source);
        match (d.kind, d.optional) {
            (crate::DepKind::Functional, _) => {
                b.functional(target, source);
            }
            (crate::DepKind::Data, false) => {
                b.data_dep(target, source);
            }
            (crate::DepKind::Data, true) => {
                b.optional_data_dep(target, source);
            }
        }
    }
    b
}

fn b_finish(b: &mut SchemaBuilder) {
    fig2_into(b);
    let lookup = |b: &SchemaBuilder, name: &str| {
        crate::EntityTypeId::from_index(b.names.iter().position(|n| n == name).expect("name"))
    };
    let netlist = lookup(b, "Netlist");
    let simulator = lookup(b, "Simulator");
    let device_models = lookup(b, "DeviceModels");
    let optimizer = b.tool("Optimizer");
    b.describe(
        optimizer,
        "statistical circuit optimizer; three tool instances share one encapsulation",
    );
    let optimized = b.subtype("OptimizedNetlist", netlist);
    b.functional(optimized, optimizer);
    b.data_dep(optimized, netlist);
    b.data_dep(optimized, device_models);
    // A tool as a data input to another task (section 3.3).
    b.data_dep(optimized, simulator);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::EntityKind;

    #[test]
    fn fig1_has_the_paper_features() {
        let s = fig1();
        let netlist = s.require("Netlist").expect("present");
        let edited = s.require("EditedNetlist").expect("present");
        let extracted = s.require("ExtractedNetlist").expect("present");
        let circuit = s.require("Circuit").expect("present");
        let performance = s.require("Performance").expect("present");

        // Subtyping separates construction methods.
        assert!(s.is_abstract(netlist));
        assert_eq!(s.subtypes(netlist), &[edited, extracted]);

        // Dashed loop-breaking arc.
        let loop_arc = s
            .data_deps(edited)
            .find(|d| d.source() == netlist)
            .expect("edited netlist optionally uses a netlist");
        assert!(loop_arc.is_optional());

        // Composite Circuit = DeviceModels + Netlist.
        assert!(s.is_composite(circuit));
        assert_eq!(s.components_of(circuit).len(), 2);

        // Performance is functionally dependent on a Simulator.
        let sim = s.require("Simulator").expect("present");
        assert_eq!(s.constructing_tool(performance), Some(sim));

        // Options-as-entity arc is optional.
        let opts = s.require("SimulatorOptions").expect("present");
        assert!(s
            .data_deps(performance)
            .find(|d| d.source() == opts)
            .expect("options arc")
            .is_optional());
    }

    #[test]
    fn fig1_counts_are_stable() {
        let s = fig1();
        assert_eq!(s.len(), 20);
        assert_eq!(s.tools().len(), 7);
        assert_eq!(s.data_entities().len(), 13);
    }

    #[test]
    fn fig2_compiled_simulator_is_a_constructed_tool() {
        let s = fig2();
        let compiled = s.require("CompiledSimulator").expect("present");
        assert_eq!(s.entity(compiled).kind(), EntityKind::Tool);
        let f = s.functional_dep(compiled).expect("constructed");
        assert_eq!(
            s.entity(f.source()).name(),
            "SimulatorCompiler",
            "built by the compiler"
        );
        let stats = s.require("SwitchSimulation").expect("present");
        assert_eq!(s.constructing_tool(stats), Some(compiled));
    }

    #[test]
    fn odyssey_merges_both_figures_plus_optimizer() {
        let s = odyssey();
        for name in [
            "CircuitEditor",
            "Netlist",
            "CompiledSimulator",
            "SwitchSimulation",
            "Optimizer",
            "OptimizedNetlist",
        ] {
            assert!(s.entity_id(name).is_some(), "missing {name}");
        }
        // OptimizedNetlist is a third Netlist subtype.
        let netlist = s.require("Netlist").expect("present");
        assert_eq!(s.subtypes(netlist).len(), 3);
        // Netlist and Stimuli are shared, not duplicated.
        assert_eq!(s.entities().filter(|e| e.name() == "Stimuli").count(), 1);
    }

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(fig1(), fig1());
        assert_eq!(fig2(), fig2());
        assert_eq!(odyssey(), odyssey());
    }
}
