//! Schema validation rules.
//!
//! The rules implement §3.1 of the paper: at most one functional
//! dependency per entity, functional dependencies name tools, loops must
//! be broken by optional arcs, subtyping forms a forest of consistent
//! kind, composite entities have data dependencies only.

use crate::entity::{EntityKind, EntityTypeId};
use crate::error::SchemaError;
use crate::schema::TaskSchema;

/// Resolves the kind of every declared entity, inheriting down the
/// subtype forest, and rejects kind mismatches and subtype cycles.
pub(crate) fn resolve_kinds(
    names: &[String],
    declared: &[Option<EntityKind>],
    supertypes: &[Option<EntityTypeId>],
) -> Result<Vec<EntityKind>, SchemaError> {
    let n = names.len();

    // Explicit cycle check of the supertype relation: declared kinds may
    // otherwise short-circuit the chain walk below before a cycle closes.
    for start in 0..n {
        let mut steps = 0usize;
        let mut cur = supertypes[start];
        while let Some(s) = cur {
            steps += 1;
            if steps > n {
                return Err(SchemaError::SubtypeCycle {
                    entity: names[start].clone(),
                });
            }
            cur = supertypes[s.index()];
        }
    }

    let mut resolved: Vec<Option<EntityKind>> = vec![None; n];
    for start in 0..n {
        if resolved[start].is_some() {
            continue;
        }
        // Walk up the supertype chain; detect cycles with a step bound.
        let mut chain = Vec::new();
        let mut cur = start;
        let kind = loop {
            if chain.len() > n {
                return Err(SchemaError::SubtypeCycle {
                    entity: names[start].clone(),
                });
            }
            chain.push(cur);
            if let Some(k) = resolved[cur].or(declared[cur]) {
                break k;
            }
            match supertypes[cur] {
                Some(s) => cur = s.index(),
                // A root with no declared kind defaults to data.
                None => break EntityKind::Data,
            }
        };
        for &i in &chain {
            if let Some(k) = declared[i] {
                if k != kind {
                    return Err(SchemaError::SubtypeKindMismatch {
                        subtype: names[start].clone(),
                        supertype: names[cur].clone(),
                    });
                }
            }
            resolved[i] = Some(kind);
        }
    }
    let kinds: Vec<EntityKind> = resolved.into_iter().map(|k| k.expect("resolved")).collect();

    // Every entity's kind must match its supertype's kind.
    for i in 0..n {
        if let Some(s) = supertypes[i] {
            if kinds[i] != kinds[s.index()] {
                return Err(SchemaError::SubtypeKindMismatch {
                    subtype: names[i].clone(),
                    supertype: names[s.index()].clone(),
                });
            }
        }
    }
    Ok(kinds)
}

/// Validates a fully indexed schema. Called by
/// [`SchemaBuilder::build`](crate::SchemaBuilder::build) after the
/// structural indexes exist.
pub(crate) fn validate(schema: &TaskSchema) -> Result<(), SchemaError> {
    match audit(schema).into_iter().next() {
        Some(err) => Err(err),
        None => Ok(()),
    }
}

/// Runs every post-index validation rule to completion and collects all
/// violations, in the order [`validate`] would encounter them. The gate
/// reports the first; exhaustive reporters (`herclint`) consume the
/// whole list.
pub(crate) fn audit(schema: &TaskSchema) -> Vec<SchemaError> {
    let mut out = Vec::new();
    check_functional_sources(schema, &mut out);
    check_abstract_entities(schema, &mut out);
    check_composites(schema, &mut out);
    check_required_acyclic(schema, &mut out);
    out
}

fn check_functional_sources(schema: &TaskSchema, out: &mut Vec<SchemaError>) {
    for id in schema.entity_ids() {
        if let Some(dep) = schema.functional_dep(id) {
            let src = schema.entity(dep.source());
            if src.kind() != EntityKind::Tool {
                out.push(SchemaError::FunctionalDepOnNonTool {
                    entity: schema.entity(id).name().to_owned(),
                    source: src.name().to_owned(),
                });
            }
        }
    }
}

fn check_abstract_entities(schema: &TaskSchema, out: &mut Vec<SchemaError>) {
    for id in schema.entity_ids() {
        let has_constructing_subtype = schema
            .subtypes(id)
            .iter()
            .any(|&s| schema.functional_dep(s).is_some());
        if has_constructing_subtype && schema.functional_dep(id).is_some() {
            out.push(SchemaError::AbstractEntityWithFunctionalDep {
                entity: schema.entity(id).name().to_owned(),
            });
        }
    }
}

fn check_composites(schema: &TaskSchema, out: &mut Vec<SchemaError>) {
    for id in schema.entity_ids() {
        let e = schema.entity(id);
        if e.is_composite()
            && (schema.functional_dep(id).is_some() || schema.data_deps(id).next().is_none())
        {
            out.push(SchemaError::InvalidComposite {
                entity: e.name().to_owned(),
            });
        }
    }
}

/// Kahn's algorithm over required arcs; any leftover entities form the
/// cycle we report.
fn check_required_acyclic(schema: &TaskSchema, out: &mut Vec<SchemaError>) {
    let n = schema.len();
    // A required self-loop gets its own, more actionable error.
    let mut self_loop = false;
    for dep in schema.deps() {
        if dep.is_required() && dep.source() == dep.target() {
            self_loop = true;
            out.push(SchemaError::RequiredSelfDependency {
                entity: schema.entity(dep.source()).name().to_owned(),
            });
        }
    }
    if self_loop {
        return;
    }

    let mut indegree = vec![0usize; n];
    for dep in schema.deps() {
        if dep.is_required() {
            indegree[dep.target().index()] += 1;
        }
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut seen = 0usize;
    while let Some(i) = ready.pop() {
        seen += 1;
        for dep in schema.dependents_of(EntityTypeId::from_index(i)) {
            if dep.is_required() {
                let t = dep.target().index();
                indegree[t] -= 1;
                if indegree[t] == 0 {
                    ready.push(t);
                }
            }
        }
    }
    if seen == n {
        return;
    }
    let members: Vec<String> = (0..n)
        .filter(|&i| indegree[i] > 0)
        .map(|i| schema.entity(EntityTypeId::from_index(i)).name().to_owned())
        .collect();
    out.push(SchemaError::RequiredDependencyCycle { entities: members });
}

#[cfg(test)]
mod tests {
    use crate::builder::SchemaBuilder;
    use crate::error::SchemaError;

    #[test]
    fn three_node_cycle_reports_all_members() {
        let mut b = SchemaBuilder::new();
        let a = b.data("A");
        let c = b.data("B");
        let d = b.data("C");
        b.data_dep(a, c);
        b.data_dep(c, d);
        b.data_dep(d, a);
        match b.build().unwrap_err() {
            SchemaError::RequiredDependencyCycle { entities } => {
                assert_eq!(entities.len(), 3);
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn cycle_through_optional_arc_is_accepted() {
        // A requires B, B optionally uses A: legal (Fig. 1 loop breaking).
        let mut b = SchemaBuilder::new();
        let a = b.data("A");
        let c = b.data("B");
        b.data_dep(a, c);
        b.optional_data_dep(c, a);
        assert!(b.build().is_ok());
    }

    #[test]
    fn kind_mismatch_between_subtype_and_supertype() {
        let mut b = SchemaBuilder::new();
        let sim = b.tool("Simulator");
        // Force a declared kind that conflicts with the supertype's.
        let bad = b.data("BadSubtype");
        b.supertypes[bad.index()] = Some(sim);
        assert!(matches!(
            b.build().unwrap_err(),
            SchemaError::SubtypeKindMismatch { .. }
        ));
    }

    #[test]
    fn undeclared_kind_defaults_to_data() {
        let mut b = SchemaBuilder::new();
        let root = b.data("Root");
        let sub = b.subtype("Sub", root);
        let s = b.build().expect("valid");
        assert!(s.entity(sub).kind().is_data());
    }
}
