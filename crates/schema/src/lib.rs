//! Task schemas for dynamically defined design flows.
//!
//! This crate implements the *task schema* of Sutton, Brockman &
//! Director, ["Design Management Using Dynamically Defined
//! Flows"](https://doi.org/10.1145/157485.164600) (DAC 1993), §3.1: a
//! graph of design-entity types — tools **and** data, treated uniformly —
//! connected by *functional* (`f`) and *data* (`d`) dependency arcs.
//!
//! The schema serves two purposes in the Hercules/Odyssey framework this
//! workspace reproduces:
//!
//! 1. it states the **construction rules** by which tasks (tool-
//!    independent design functions) can be built into flows, and
//! 2. it is the **data schema** for the design-history database — every
//!    design object is an instance of one of these entity types.
//!
//! # Features from the paper
//!
//! * at most one functional dependency per entity, unlimited data
//!   dependencies;
//! * *optional* (dashed) data dependencies that break schema loops such
//!   as `EditedNetlist → Netlist`;
//! * *subtyping* to separate alternative construction methods
//!   (`ExtractedNetlist` vs `EditedNetlist`);
//! * *composite* entities with data dependencies only (`Circuit` =
//!   `DeviceModels` + `Netlist`) and implicit composition functions;
//! * tools created during the design (the Fig. 2 compiled simulator) and
//!   tools appearing as *data* inputs to other tools.
//!
//! # Examples
//!
//! ```
//! use hercules_schema::{SchemaBuilder, EntityKind};
//!
//! # fn main() -> Result<(), hercules_schema::SchemaError> {
//! let mut b = SchemaBuilder::new();
//! let extractor = b.tool("Extractor");
//! let layout = b.data("Layout");
//! let netlist = b.data("Netlist");
//! let extracted = b.subtype("ExtractedNetlist", netlist);
//! b.functional(extracted, extractor);
//! b.data_dep(extracted, layout);
//! let schema = b.build()?;
//!
//! assert!(schema.is_abstract(netlist));
//! assert!(schema.is_subtype_of(extracted, netlist));
//! assert_eq!(schema.constructing_tool(extracted), Some(extractor));
//! # Ok(())
//! # }
//! ```
//!
//! The reference schemas of the paper's figures live in [`fixtures`];
//! synthetic schemas for benchmarks in [`synth`]; renderers in
//! [`render`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod dependency;
mod entity;
mod error;
mod schema;
mod spec;
mod validate;

pub mod fixtures;
pub mod render;
pub mod synth;

pub use builder::SchemaBuilder;
pub use dependency::{DepKind, Dependency};
pub use entity::{EntityKind, EntityType, EntityTypeId};
pub use error::SchemaError;
pub use schema::TaskSchema;
pub use spec::{DepSpec, EntitySpec, SchemaSpec};
