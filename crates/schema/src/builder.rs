//! Fluent construction of task schemas.

use std::collections::HashMap;

use crate::dependency::{DepKind, Dependency};
use crate::entity::{EntityKind, EntityType, EntityTypeId};
use crate::error::SchemaError;
use crate::schema::TaskSchema;
use crate::validate;

/// Incremental builder for a [`TaskSchema`].
///
/// Declaration methods are infallible and hand back [`EntityTypeId`]s
/// immediately so that dependencies can be declared in any order; all
/// rule checking happens in [`SchemaBuilder::build`].
///
/// # Examples
///
/// Building a three-entity simulate task:
///
/// ```
/// use hercules_schema::SchemaBuilder;
///
/// # fn main() -> Result<(), hercules_schema::SchemaError> {
/// let mut b = SchemaBuilder::new();
/// let simulator = b.tool("Simulator");
/// let netlist = b.data("Netlist");
/// let performance = b.data("Performance");
/// b.functional(performance, simulator);
/// b.data_dep(performance, netlist);
/// let schema = b.build()?;
/// assert_eq!(schema.constructing_tool(performance), Some(simulator));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SchemaBuilder {
    pub(crate) names: Vec<String>,
    pub(crate) kinds: Vec<Option<EntityKind>>,
    pub(crate) supertypes: Vec<Option<EntityTypeId>>,
    pub(crate) descriptions: Vec<String>,
    pub(crate) composites: Vec<bool>,
    pub(crate) deps: Vec<Dependency>,
}

impl SchemaBuilder {
    /// Creates an empty builder.
    pub fn new() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    fn declare(
        &mut self,
        name: &str,
        kind: Option<EntityKind>,
        supertype: Option<EntityTypeId>,
        composite: bool,
    ) -> EntityTypeId {
        let id = EntityTypeId::from_index(self.names.len());
        self.names.push(name.to_owned());
        self.kinds.push(kind);
        self.supertypes.push(supertype);
        self.descriptions.push(String::new());
        self.composites.push(composite);
        id
    }

    /// Declares a tool entity (editor, simulator, extractor, …).
    pub fn tool(&mut self, name: &str) -> EntityTypeId {
        self.declare(name, Some(EntityKind::Tool), None, false)
    }

    /// Declares a data entity (netlist, layout, performance, …).
    pub fn data(&mut self, name: &str) -> EntityTypeId {
        self.declare(name, Some(EntityKind::Data), None, false)
    }

    /// Declares a subtype of an existing entity; the kind is inherited
    /// from the supertype. Subtypes separate alternative construction
    /// methods (§3.1): `ExtractedNetlist` and `EditedNetlist` under
    /// `Netlist`.
    pub fn subtype(&mut self, name: &str, supertype: EntityTypeId) -> EntityTypeId {
        self.declare(name, None, Some(supertype), false)
    }

    /// Declares a composite entity grouping `components` (§3.1): data
    /// dependencies only, no functional dependency, with implicit
    /// composition/decomposition functions.
    pub fn composite(&mut self, name: &str, components: &[EntityTypeId]) -> EntityTypeId {
        let id = self.declare(name, Some(EntityKind::Data), None, true);
        for &c in components {
            self.data_dep(id, c);
        }
        id
    }

    /// Attaches a free-form description to an entity, shown by the
    /// catalogs and renderers.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this builder.
    pub fn describe(&mut self, id: EntityTypeId, text: &str) -> &mut SchemaBuilder {
        self.descriptions[id.index()] = text.to_owned();
        self
    }

    /// Declares that `target` is functionally dependent on the tool
    /// `source` ("a Performance is functionally dependent on a
    /// Simulator").
    pub fn functional(&mut self, target: EntityTypeId, source: EntityTypeId) -> &mut SchemaBuilder {
        self.deps.push(Dependency {
            target,
            source,
            kind: DepKind::Functional,
            optional: false,
        });
        self
    }

    /// Declares that `target` has a required data dependency on `source`.
    pub fn data_dep(&mut self, target: EntityTypeId, source: EntityTypeId) -> &mut SchemaBuilder {
        self.deps.push(Dependency {
            target,
            source,
            kind: DepKind::Data,
            optional: false,
        });
        self
    }

    /// Declares an *optional* data dependency (dashed arc). Optional arcs
    /// are how the paper breaks schema loops: "an EditedNetlist depends
    /// (optionally) on a Netlist" (Fig. 1).
    pub fn optional_data_dep(
        &mut self,
        target: EntityTypeId,
        source: EntityTypeId,
    ) -> &mut SchemaBuilder {
        self.deps.push(Dependency {
            target,
            source,
            kind: DepKind::Data,
            optional: true,
        });
        self
    }

    /// Returns the number of entities declared so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if no entities have been declared.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Validates the declarations and produces an immutable
    /// [`TaskSchema`].
    ///
    /// # Errors
    ///
    /// Returns the first rule violation found; see [`SchemaError`] for
    /// the full list of rules (unique names, single functional dependency,
    /// functional dependencies point at tools, required-dependency graph
    /// acyclic, subtype relation a forest with consistent kinds, composite
    /// entities well-formed).
    pub fn build(self) -> Result<TaskSchema, SchemaError> {
        let n = self.names.len();

        // Unique names.
        let mut by_name: HashMap<String, EntityTypeId> = HashMap::with_capacity(n);
        for (i, name) in self.names.iter().enumerate() {
            if by_name
                .insert(name.clone(), EntityTypeId::from_index(i))
                .is_some()
            {
                return Err(SchemaError::DuplicateEntityName(name.clone()));
            }
        }

        // Supertype ids must be in range and acyclic; then resolve kinds
        // down the subtype forest.
        for (i, sup) in self.supertypes.iter().enumerate() {
            if let Some(s) = sup {
                if s.index() >= n {
                    return Err(SchemaError::UnknownEntityId(*s));
                }
                if s.index() == i {
                    return Err(SchemaError::SubtypeCycle {
                        entity: self.names[i].clone(),
                    });
                }
            }
        }
        let kinds = validate::resolve_kinds(&self.names, &self.kinds, &self.supertypes)?;

        // Dependency endpoints must be in range.
        for dep in &self.deps {
            for id in [dep.target(), dep.source()] {
                if id.index() >= n {
                    return Err(SchemaError::UnknownEntityId(id));
                }
            }
        }

        let entities: Vec<EntityType> = (0..n)
            .map(|i| EntityType {
                id: EntityTypeId::from_index(i),
                name: self.names[i].clone(),
                kind: kinds[i],
                supertype: self.supertypes[i],
                description: self.descriptions[i].clone(),
                composite: self.composites[i],
            })
            .collect();

        // Build derived indexes, catching multiple functional deps and
        // duplicates as we go.
        let mut functional: Vec<Option<usize>> = vec![None; n];
        let mut data: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, dep) in self.deps.iter().enumerate() {
            let t = dep.target().index();
            let duplicate = functional[t]
                .iter()
                .chain(data[t].iter())
                .any(|&j: &usize| {
                    let prev = &self.deps[j];
                    prev.source() == dep.source() && prev.kind() == dep.kind()
                });
            if duplicate {
                return Err(SchemaError::DuplicateDependency {
                    source: entities[dep.source().index()].name.clone(),
                    target: entities[t].name.clone(),
                });
            }
            match dep.kind() {
                DepKind::Functional => {
                    if dep.is_optional() {
                        return Err(SchemaError::OptionalFunctionalDep {
                            entity: entities[t].name.clone(),
                        });
                    }
                    if functional[t].is_some() {
                        return Err(SchemaError::MultipleFunctionalDeps {
                            entity: entities[t].name.clone(),
                        });
                    }
                    functional[t] = Some(i);
                }
                DepKind::Data => data[t].push(i),
            }
            dependents[dep.source().index()].push(i);
        }

        let mut subtypes: Vec<Vec<EntityTypeId>> = vec![Vec::new(); n];
        for e in &entities {
            if let Some(s) = e.supertype {
                subtypes[s.index()].push(e.id);
            }
        }

        let schema = TaskSchema {
            entities,
            deps: self.deps,
            by_name,
            functional,
            data,
            dependents,
            subtypes,
        };
        validate::validate(&schema)?;
        Ok(schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_builder_builds_empty_schema() {
        let s = SchemaBuilder::new().build().expect("empty is valid");
        assert!(s.is_empty());
        assert!(SchemaBuilder::new().is_empty());
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut b = SchemaBuilder::new();
        b.data("Netlist");
        b.data("Netlist");
        assert_eq!(
            b.build().unwrap_err(),
            SchemaError::DuplicateEntityName("Netlist".into())
        );
    }

    #[test]
    fn two_functional_deps_are_rejected() {
        let mut b = SchemaBuilder::new();
        let t1 = b.tool("Sim1");
        let t2 = b.tool("Sim2");
        let d = b.data("Performance");
        b.functional(d, t1);
        b.functional(d, t2);
        assert_eq!(
            b.build().unwrap_err(),
            SchemaError::MultipleFunctionalDeps {
                entity: "Performance".into()
            }
        );
    }

    #[test]
    fn duplicate_dependency_is_rejected() {
        let mut b = SchemaBuilder::new();
        let a = b.data("A");
        let bb = b.data("B");
        b.data_dep(bb, a);
        b.data_dep(bb, a);
        assert!(matches!(
            b.build().unwrap_err(),
            SchemaError::DuplicateDependency { .. }
        ));
    }

    #[test]
    fn functional_dep_must_point_at_tool() {
        let mut b = SchemaBuilder::new();
        let d1 = b.data("Netlist");
        let d2 = b.data("Performance");
        b.functional(d2, d1);
        assert_eq!(
            b.build().unwrap_err(),
            SchemaError::FunctionalDepOnNonTool {
                entity: "Performance".into(),
                source: "Netlist".into()
            }
        );
    }

    #[test]
    fn required_cycle_is_rejected_and_optional_breaks_it() {
        let mut b = SchemaBuilder::new();
        let ed = b.tool("Editor");
        let net = b.data("Netlist");
        b.functional(net, ed);
        b.data_dep(net, net);
        assert!(matches!(
            b.build().unwrap_err(),
            SchemaError::RequiredSelfDependency { .. }
        ));

        let mut b = SchemaBuilder::new();
        let ed = b.tool("Editor");
        let net = b.data("Netlist");
        b.functional(net, ed);
        b.optional_data_dep(net, net);
        assert!(b.build().is_ok(), "optional arc breaks the loop");
    }

    #[test]
    fn longer_required_cycle_is_reported_with_members() {
        let mut b = SchemaBuilder::new();
        let a = b.data("A");
        let c = b.data("C");
        b.data_dep(a, c);
        b.data_dep(c, a);
        match b.build().unwrap_err() {
            SchemaError::RequiredDependencyCycle { entities } => {
                assert!(entities.contains(&"A".to_owned()));
                assert!(entities.contains(&"C".to_owned()));
            }
            other => panic!("expected cycle error, got {other}"),
        }
    }

    #[test]
    fn subtype_inherits_kind() {
        let mut b = SchemaBuilder::new();
        let sim = b.tool("Simulator");
        let fast = b.subtype("FastSimulator", sim);
        let s = b.build().expect("valid");
        assert!(s.entity(fast).kind().is_tool());
    }

    #[test]
    fn subtype_cycle_is_rejected() {
        let mut b = SchemaBuilder::new();
        let a = b.data("A");
        let bb = b.subtype("B", a);
        b.supertypes[a.index()] = Some(bb); // simulate a corrupted spec
        assert!(matches!(
            b.build().unwrap_err(),
            SchemaError::SubtypeCycle { .. }
        ));
    }

    #[test]
    fn abstract_supertype_with_own_functional_dep_is_rejected() {
        let mut b = SchemaBuilder::new();
        let tool = b.tool("Extractor");
        let editor = b.tool("CircuitEditor");
        let net = b.data("Netlist");
        let sub = b.subtype("ExtractedNetlist", net);
        b.functional(sub, tool);
        b.functional(net, editor);
        assert_eq!(
            b.build().unwrap_err(),
            SchemaError::AbstractEntityWithFunctionalDep {
                entity: "Netlist".into()
            }
        );
    }

    #[test]
    fn composite_must_not_have_functional_dep() {
        let mut b = SchemaBuilder::new();
        let dm = b.data("DeviceModels");
        let tool = b.tool("Grouper");
        let cct = b.composite("Circuit", &[dm]);
        b.functional(cct, tool);
        assert_eq!(
            b.build().unwrap_err(),
            SchemaError::InvalidComposite {
                entity: "Circuit".into()
            }
        );
    }

    #[test]
    fn composite_needs_components() {
        let mut b = SchemaBuilder::new();
        b.composite("Circuit", &[]);
        assert!(matches!(
            b.build().unwrap_err(),
            SchemaError::InvalidComposite { .. }
        ));
    }

    #[test]
    fn describe_is_stored() {
        let mut b = SchemaBuilder::new();
        let net = b.data("Netlist");
        b.describe(net, "a transistor-level connection list");
        let s = b.build().expect("valid");
        assert_eq!(
            s.entity(net).description(),
            "a transistor-level connection list"
        );
    }

    #[test]
    fn out_of_range_dependency_is_rejected() {
        let mut b = SchemaBuilder::new();
        let a = b.data("A");
        b.data_dep(a, EntityTypeId::from_index(42));
        assert!(matches!(
            b.build().unwrap_err(),
            SchemaError::UnknownEntityId(_)
        ));
    }
}
