//! Synthetic schema generation for benchmarks and property tests.
//!
//! Real task schemas are layered: primary inputs at the bottom, then
//! alternating tool/data layers with bounded fan-in. [`SynthConfig`]
//! generates such schemas deterministically from its parameters so that
//! benchmark sweeps ("query time vs schema size") have a controllable
//! knob.

use crate::builder::SchemaBuilder;
use crate::entity::EntityTypeId;
use crate::schema::TaskSchema;

/// Parameters for a synthetic layered schema.
///
/// The generated schema has `layers` data layers of `width` entities
/// each. Every non-primary data entity is produced by a dedicated tool
/// and consumes `fanin` entities from the previous layer (wrapping around
/// deterministically), so the result is always valid and acyclic.
///
/// # Examples
///
/// ```
/// use hercules_schema::synth::SynthConfig;
///
/// let schema = SynthConfig { layers: 3, width: 4, fanin: 2, subtypes: 0 }.generate();
/// assert_eq!(schema.len(), 3 * 4 + 2 * 4); // data + tools for layers 1..3
/// assert!(schema.topo_order().len() == schema.len());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthConfig {
    /// Number of data layers (≥ 1); layer 0 is primary.
    pub layers: usize,
    /// Entities per data layer (≥ 1).
    pub width: usize,
    /// Data-dependency fan-in from the previous layer (≥ 1).
    pub fanin: usize,
    /// Number of constructible subtypes to attach to each layer-1 entity
    /// (0 disables subtyping).
    pub subtypes: usize,
}

impl Default for SynthConfig {
    fn default() -> SynthConfig {
        SynthConfig {
            layers: 4,
            width: 4,
            fanin: 2,
            subtypes: 0,
        }
    }
}

impl SynthConfig {
    /// Generates the schema described by this configuration.
    ///
    /// # Panics
    ///
    /// Panics if `layers` or `width` is zero.
    pub fn generate(&self) -> TaskSchema {
        assert!(self.layers >= 1, "need at least one layer");
        assert!(self.width >= 1, "need at least one entity per layer");
        let mut b = SchemaBuilder::new();
        let mut prev: Vec<EntityTypeId> = Vec::new();
        for layer in 0..self.layers {
            let mut cur = Vec::with_capacity(self.width);
            for w in 0..self.width {
                let name = format!("D{layer}_{w}");
                let d = b.data(&name);
                if layer > 0 {
                    let tool = b.tool(&format!("T{layer}_{w}"));
                    b.functional(d, tool);
                    let fanin = self.fanin.min(prev.len());
                    for k in 0..fanin {
                        b.data_dep(d, prev[(w + k) % prev.len()]);
                    }
                }
                cur.push(d);
            }
            if layer == 1 && self.subtypes > 0 {
                for (w, &d) in cur.clone().iter().enumerate() {
                    for s in 0..self.subtypes {
                        let sub = b.subtype(&format!("S{layer}_{w}_{s}"), d);
                        let tool = b.tool(&format!("ST{layer}_{w}_{s}"));
                        b.functional(sub, tool);
                        b.data_dep(sub, prev[w % prev.len()]);
                    }
                }
            }
            prev = cur;
        }
        // Subtyped layer-1 entities would end up abstract-with-functional;
        // the generator avoided giving them functional deps only when
        // subtypes == 0, so strip conflicts by rebuilding when needed.
        if self.subtypes > 0 {
            // Remove functional deps from subtyped entities (layer 1).
            b.deps.retain(|dep| {
                let t = dep.target().index();
                let name = &b.names[t];
                !(dep.is_functional() && name.starts_with("D1_"))
            });
        }
        b.build()
            .expect("synthetic schema is valid by construction")
    }

    /// Returns the ids of the final (goal) layer entities of `schema`,
    /// assuming it was produced by this configuration.
    pub fn goal_layer(&self, schema: &TaskSchema) -> Vec<EntityTypeId> {
        (0..self.width)
            .filter_map(|w| schema.entity_id(&format!("D{}_{w}", self.layers - 1)))
            .collect()
    }

    /// Returns the ids of the primary (layer-0) entities of `schema`.
    pub fn primary_layer(&self, schema: &TaskSchema) -> Vec<EntityTypeId> {
        (0..self.width)
            .filter_map(|w| schema.entity_id(&format!("D0_{w}")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_generates_valid_schema() {
        let cfg = SynthConfig::default();
        let s = cfg.generate();
        assert!(!s.is_empty());
        assert_eq!(cfg.goal_layer(&s).len(), cfg.width);
        assert_eq!(cfg.primary_layer(&s).len(), cfg.width);
    }

    #[test]
    fn primary_layer_is_primary() {
        let cfg = SynthConfig::default();
        let s = cfg.generate();
        for id in cfg.primary_layer(&s) {
            assert!(s.is_primary(id));
        }
    }

    #[test]
    fn goal_layer_is_constructible() {
        let cfg = SynthConfig::default();
        let s = cfg.generate();
        for id in cfg.goal_layer(&s) {
            assert!(s.is_constructible(id));
        }
    }

    #[test]
    fn subtyped_generation_is_valid() {
        let cfg = SynthConfig {
            layers: 3,
            width: 3,
            fanin: 2,
            subtypes: 2,
        };
        let s = cfg.generate();
        let d10 = s.entity_id("D1_0").expect("generated");
        assert_eq!(s.subtypes(d10).len(), 2);
        assert!(s.is_abstract(d10));
    }

    #[test]
    fn size_scales_with_parameters() {
        let small = SynthConfig {
            layers: 2,
            width: 2,
            fanin: 1,
            subtypes: 0,
        }
        .generate();
        let large = SynthConfig {
            layers: 8,
            width: 8,
            fanin: 3,
            subtypes: 0,
        }
        .generate();
        assert!(large.len() > small.len());
        assert!(large.dep_count() > small.dep_count());
    }

    #[test]
    fn single_layer_schema_is_all_primary() {
        let s = SynthConfig {
            layers: 1,
            width: 5,
            fanin: 2,
            subtypes: 0,
        }
        .generate();
        assert_eq!(s.len(), 5);
        assert!(s.entity_ids().all(|id| s.is_primary(id)));
    }
}
