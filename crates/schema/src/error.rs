//! Error type for schema construction and validation.

use std::error::Error;
use std::fmt;

use crate::entity::EntityTypeId;

/// Errors raised while building or validating a [`TaskSchema`].
///
/// [`TaskSchema`]: crate::TaskSchema
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
#[allow(missing_docs)] // variant fields are self-describing entity names
pub enum SchemaError {
    /// Two entity types were declared with the same name.
    DuplicateEntityName(String),
    /// An entity name or id was referenced but never declared.
    UnknownEntity(String),
    /// An entity type id was out of range for this schema.
    UnknownEntityId(EntityTypeId),
    /// An entity was given more than one functional dependency.
    ///
    /// The paper (§3.1) requires "at most one functional dependency and an
    /// unlimited number of data dependencies".
    MultipleFunctionalDeps { entity: String },
    /// A functional dependency's source is not a tool entity.
    ///
    /// Functional dependencies express "produced by running this tool", so
    /// their source must be of kind [`EntityKind::Tool`].
    ///
    /// [`EntityKind::Tool`]: crate::EntityKind::Tool
    FunctionalDepOnNonTool { entity: String, source: String },
    /// The required (non-optional) dependency graph contains a cycle.
    ///
    /// The paper breaks loops such as *EditedNetlist → Netlist* by marking
    /// the offending data dependency *optional* (dashed arc in Fig. 1).
    RequiredDependencyCycle { entities: Vec<String> },
    /// An entity depends on itself through a required dependency.
    RequiredSelfDependency { entity: String },
    /// The subtype relation contains a cycle.
    SubtypeCycle { entity: String },
    /// A subtype's kind (tool/data) differs from its supertype's kind.
    SubtypeKindMismatch { subtype: String, supertype: String },
    /// The same dependency (source, target, kind) was declared twice.
    DuplicateDependency { source: String, target: String },
    /// A functional dependency was marked optional.
    ///
    /// Only data dependencies may be optional; a construction method either
    /// applies or it does not.
    OptionalFunctionalDep { entity: String },
    /// An entity declared abstract (has subtypes used for construction)
    /// also carries its own functional dependency.
    AbstractEntityWithFunctionalDep { entity: String },
    /// A composite annotation was placed on an entity that has a
    /// functional dependency or no data dependencies.
    InvalidComposite { entity: String },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateEntityName(name) => {
                write!(f, "duplicate entity type name `{name}`")
            }
            SchemaError::UnknownEntity(name) => {
                write!(f, "unknown entity type `{name}`")
            }
            SchemaError::UnknownEntityId(id) => {
                write!(f, "unknown entity type id {id}")
            }
            SchemaError::MultipleFunctionalDeps { entity } => {
                write!(
                    f,
                    "entity `{entity}` has more than one functional dependency"
                )
            }
            SchemaError::FunctionalDepOnNonTool { entity, source } => write!(
                f,
                "functional dependency of `{entity}` on `{source}` which is not a tool"
            ),
            SchemaError::RequiredDependencyCycle { entities } => write!(
                f,
                "required dependencies form a cycle through [{}]; mark a data \
                 dependency optional to break it",
                entities.join(", ")
            ),
            SchemaError::RequiredSelfDependency { entity } => write!(
                f,
                "entity `{entity}` requires itself; mark the dependency optional"
            ),
            SchemaError::SubtypeCycle { entity } => {
                write!(f, "subtype relation cycles through `{entity}`")
            }
            SchemaError::SubtypeKindMismatch { subtype, supertype } => write!(
                f,
                "subtype `{subtype}` has a different kind than its supertype `{supertype}`"
            ),
            SchemaError::DuplicateDependency { source, target } => {
                write!(f, "dependency `{target}` on `{source}` declared twice")
            }
            SchemaError::OptionalFunctionalDep { entity } => {
                write!(f, "functional dependency of `{entity}` cannot be optional")
            }
            SchemaError::AbstractEntityWithFunctionalDep { entity } => write!(
                f,
                "entity `{entity}` has subtypes with construction methods but also \
                 its own functional dependency"
            ),
            SchemaError::InvalidComposite { entity } => write!(
                f,
                "entity `{entity}` cannot be composite: composites have only data \
                 dependencies and at least one of them"
            ),
        }
    }
}

impl Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let errors: Vec<SchemaError> = vec![
            SchemaError::DuplicateEntityName("Netlist".into()),
            SchemaError::UnknownEntity("Ghost".into()),
            SchemaError::MultipleFunctionalDeps {
                entity: "Performance".into(),
            },
            SchemaError::FunctionalDepOnNonTool {
                entity: "Performance".into(),
                source: "Netlist".into(),
            },
            SchemaError::RequiredDependencyCycle {
                entities: vec!["A".into(), "B".into()],
            },
            SchemaError::RequiredSelfDependency { entity: "A".into() },
            SchemaError::SubtypeCycle { entity: "A".into() },
            SchemaError::SubtypeKindMismatch {
                subtype: "A".into(),
                supertype: "B".into(),
            },
            SchemaError::DuplicateDependency {
                source: "A".into(),
                target: "B".into(),
            },
            SchemaError::OptionalFunctionalDep { entity: "A".into() },
            SchemaError::AbstractEntityWithFunctionalDep { entity: "A".into() },
            SchemaError::InvalidComposite { entity: "A".into() },
        ];
        for err in errors {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'), "trailing punctuation in {msg:?}");
            let first = msg.chars().next().expect("nonempty");
            assert!(first.is_lowercase() || !first.is_alphabetic());
        }
    }

    #[test]
    fn error_trait_object_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SchemaError>();
    }
}
