//! Textual and Graphviz renderings of a task schema.
//!
//! The paper draws schemas as boxes connected by `f`/`d` arcs (Fig. 1);
//! [`to_text`] prints the same information as an indented listing and
//! [`to_dot`] emits Graphviz for a faithful visual reproduction (dashed
//! arcs for optional dependencies, double borders for composites).

use std::fmt::Write as _;

use crate::entity::EntityKind;
use crate::schema::TaskSchema;

/// Renders the schema as an indented text listing, one entity per block.
///
/// # Examples
///
/// ```
/// let schema = hercules_schema::fixtures::fig2();
/// let text = hercules_schema::render::to_text(&schema);
/// assert!(text.contains("CompiledSimulator"));
/// assert!(text.contains("f← SimulatorCompiler"));
/// ```
pub fn to_text(schema: &TaskSchema) -> String {
    let mut out = String::new();
    for e in schema.entities() {
        let mut tags = Vec::new();
        match e.kind() {
            EntityKind::Tool => tags.push("tool".to_owned()),
            EntityKind::Data => tags.push("data".to_owned()),
        }
        if e.is_composite() {
            tags.push("composite".to_owned());
        }
        if schema.is_abstract(e.id()) {
            tags.push("abstract".to_owned());
        }
        if let Some(sup) = e.supertype() {
            tags.push(format!("subtype of {}", schema.entity(sup).name()));
        }
        let _ = writeln!(out, "{} [{}]", e.name(), tags.join(", "));
        if !e.description().is_empty() {
            let _ = writeln!(out, "    // {}", e.description());
        }
        if let Some(f) = schema.functional_dep(e.id()) {
            let _ = writeln!(out, "    f← {}", schema.entity(f.source()).name());
        }
        for d in schema.data_deps(e.id()) {
            let opt = if d.is_optional() { " (optional)" } else { "" };
            let _ = writeln!(out, "    d← {}{}", schema.entity(d.source()).name(), opt);
        }
    }
    out
}

/// Renders the schema as a Graphviz digraph.
///
/// Tools are drawn as ellipses, data entities as rectangles, composites
/// with doubled borders. Functional arcs are solid and labelled `f`, data
/// arcs are labelled `d`, optional arcs are dashed, and subtype relations
/// are dotted open-headed arcs, matching the visual conventions of
/// Fig. 1.
pub fn to_dot(schema: &TaskSchema) -> String {
    let mut out = String::from("digraph task_schema {\n  rankdir=BT;\n");
    for e in schema.entities() {
        let shape = match e.kind() {
            EntityKind::Tool => "ellipse",
            EntityKind::Data => "box",
        };
        let peripheries = if e.is_composite() { 2 } else { 1 };
        let _ = writeln!(
            out,
            "  \"{}\" [shape={shape}, peripheries={peripheries}];",
            e.name()
        );
    }
    for d in schema.deps() {
        let style = if d.is_optional() { "dashed" } else { "solid" };
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [label=\"{}\", style={style}];",
            schema.entity(d.source()).name(),
            schema.entity(d.target()).name(),
            d.kind()
        );
    }
    for e in schema.entities() {
        if let Some(sup) = e.supertype() {
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [style=dotted, arrowhead=onormal];",
                e.name(),
                schema.entity(sup).name()
            );
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn text_lists_every_entity() {
        let s = fixtures::fig1();
        let text = to_text(&s);
        for e in s.entities() {
            assert!(text.contains(e.name()), "missing {}", e.name());
        }
    }

    #[test]
    fn text_marks_optional_arcs() {
        let s = fixtures::fig1();
        let text = to_text(&s);
        assert!(text.contains("d← Netlist (optional)"));
    }

    #[test]
    fn text_marks_abstract_and_composite() {
        let s = fixtures::fig1();
        let text = to_text(&s);
        assert!(text.contains("Netlist [data, abstract]"));
        assert!(text.contains("Circuit [data, composite]"));
    }

    #[test]
    fn dot_is_well_formed() {
        let s = fixtures::fig1();
        let dot = to_dot(&s);
        assert!(dot.starts_with("digraph task_schema {"));
        assert!(dot.trim_end().ends_with('}'));
        let subtype_arcs = s.entities().filter(|e| e.supertype().is_some()).count();
        assert_eq!(dot.matches("->").count(), s.dep_count() + subtype_arcs);
        assert!(dot.contains("style=dashed"), "optional arcs are dashed");
        assert!(dot.contains("peripheries=2"), "composite drawn doubled");
    }
}
