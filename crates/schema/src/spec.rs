//! Declarative, serializable form of a task schema.
//!
//! A [`SchemaSpec`] is the on-disk representation: names instead of dense
//! ids, so it survives reordering and hand editing. [`TaskSchema`]
//! serializes *through* this type (`#[serde(try_from, into)]`), which
//! means a deserialized schema is always re-validated.

use serde::{Deserialize, Serialize};

use crate::builder::SchemaBuilder;
use crate::dependency::DepKind;
use crate::entity::EntityKind;
use crate::error::SchemaError;
use crate::schema::TaskSchema;

/// Declaration of one entity type by name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntitySpec {
    /// Unique entity name.
    pub name: String,
    /// Tool or data. Subtypes may omit this to inherit it.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub kind: Option<EntityKind>,
    /// Name of the supertype, if any.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub supertype: Option<String>,
    /// Free-form description.
    #[serde(default, skip_serializing_if = "String::is_empty")]
    pub description: String,
    /// Composite (grouping) entity annotation.
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    pub composite: bool,
}

/// Declaration of one dependency arc by entity names.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepSpec {
    /// The dependent entity.
    pub target: String,
    /// The entity depended upon.
    pub source: String,
    /// Functional (`f`) or data (`d`).
    pub kind: DepKind,
    /// Optional (dashed) arc.
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    pub optional: bool,
}

/// The complete declarative form of a schema.
///
/// # Examples
///
/// ```
/// use hercules_schema::{SchemaSpec, TaskSchema, fixtures};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = fixtures::fig1().to_spec();
/// let json = serde_json::to_string(&spec)?;
/// let back: TaskSchema = serde_json::from_str(&json)?;
/// assert_eq!(back, fixtures::fig1());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SchemaSpec {
    /// Entity declarations, in id order.
    pub entities: Vec<EntitySpec>,
    /// Dependency declarations.
    pub deps: Vec<DepSpec>,
}

impl SchemaSpec {
    /// Creates an empty spec.
    pub fn new() -> SchemaSpec {
        SchemaSpec::default()
    }

    /// Builds and validates a [`TaskSchema`] from this spec.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::UnknownEntity`] for dangling names and any
    /// rule violation detected by
    /// [`SchemaBuilder::build`](crate::SchemaBuilder::build).
    pub fn build(&self) -> Result<TaskSchema, SchemaError> {
        let mut b = SchemaBuilder::new();
        // First pass: declare all names so forward references resolve.
        for e in &self.entities {
            b.names.push(e.name.clone());
            b.kinds.push(e.kind);
            b.supertypes.push(None);
            b.descriptions.push(e.description.clone());
            b.composites.push(e.composite);
        }
        let lookup = |name: &str| -> Result<crate::EntityTypeId, SchemaError> {
            self.entities
                .iter()
                .position(|e| e.name == name)
                .map(crate::EntityTypeId::from_index)
                .ok_or_else(|| SchemaError::UnknownEntity(name.to_owned()))
        };
        for (i, e) in self.entities.iter().enumerate() {
            if let Some(sup) = &e.supertype {
                b.supertypes[i] = Some(lookup(sup)?);
            }
        }
        for d in &self.deps {
            let target = lookup(&d.target)?;
            let source = lookup(&d.source)?;
            match d.kind {
                DepKind::Functional => {
                    if d.optional {
                        return Err(SchemaError::OptionalFunctionalDep {
                            entity: d.target.clone(),
                        });
                    }
                    b.functional(target, source);
                }
                DepKind::Data => {
                    if d.optional {
                        b.optional_data_dep(target, source);
                    } else {
                        b.data_dep(target, source);
                    }
                }
            }
        }
        b.build()
    }
}

impl From<TaskSchema> for SchemaSpec {
    fn from(schema: TaskSchema) -> SchemaSpec {
        let entities = schema
            .entities()
            .map(|e| EntitySpec {
                name: e.name().to_owned(),
                kind: Some(e.kind()),
                supertype: e.supertype().map(|s| schema.entity(s).name().to_owned()),
                description: e.description().to_owned(),
                composite: e.is_composite(),
            })
            .collect();
        let deps = schema
            .deps()
            .map(|d| DepSpec {
                target: schema.entity(d.target()).name().to_owned(),
                source: schema.entity(d.source()).name().to_owned(),
                kind: d.kind(),
                optional: d.is_optional(),
            })
            .collect();
        SchemaSpec { entities, deps }
    }
}

impl TryFrom<SchemaSpec> for TaskSchema {
    type Error = SchemaError;

    fn try_from(spec: SchemaSpec) -> Result<TaskSchema, SchemaError> {
        spec.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;

    fn small_schema() -> TaskSchema {
        let mut b = SchemaBuilder::new();
        let sim = b.tool("Simulator");
        let net = b.data("Netlist");
        let ext = b.subtype("ExtractedNetlist", net);
        let x = b.tool("Extractor");
        let lay = b.data("Layout");
        let perf = b.data("Performance");
        b.functional(ext, x);
        b.data_dep(ext, lay);
        b.functional(perf, sim);
        b.data_dep(perf, net);
        b.describe(net, "connection list");
        b.build().expect("valid")
    }

    #[test]
    fn spec_round_trips_exactly() {
        let schema = small_schema();
        let spec = schema.to_spec();
        let rebuilt = spec.build().expect("valid");
        assert_eq!(rebuilt, schema);
    }

    #[test]
    fn json_round_trips_through_serde_attrs() {
        let schema = small_schema();
        let json = serde_json::to_string_pretty(&schema).expect("serialize");
        let back: TaskSchema = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, schema);
    }

    #[test]
    fn dangling_supertype_is_rejected() {
        let spec = SchemaSpec {
            entities: vec![EntitySpec {
                name: "A".into(),
                kind: None,
                supertype: Some("Ghost".into()),
                description: String::new(),
                composite: false,
            }],
            deps: vec![],
        };
        assert_eq!(
            spec.build().unwrap_err(),
            SchemaError::UnknownEntity("Ghost".into())
        );
    }

    #[test]
    fn invalid_spec_fails_to_deserialize() {
        // Two functional deps on the same entity must be rejected *at
        // deserialization time* thanks to try_from.
        let json = r#"{
            "entities": [
                {"name": "T1", "kind": "Tool"},
                {"name": "T2", "kind": "Tool"},
                {"name": "D", "kind": "Data"}
            ],
            "deps": [
                {"target": "D", "source": "T1", "kind": "Functional"},
                {"target": "D", "source": "T2", "kind": "Functional"}
            ]
        }"#;
        let res: Result<TaskSchema, _> = serde_json::from_str(json);
        assert!(res.is_err());
    }

    #[test]
    fn optional_functional_in_spec_is_rejected() {
        let spec = SchemaSpec {
            entities: vec![
                EntitySpec {
                    name: "T".into(),
                    kind: Some(crate::EntityKind::Tool),
                    supertype: None,
                    description: String::new(),
                    composite: false,
                },
                EntitySpec {
                    name: "D".into(),
                    kind: Some(crate::EntityKind::Data),
                    supertype: None,
                    description: String::new(),
                    composite: false,
                },
            ],
            deps: vec![DepSpec {
                target: "D".into(),
                source: "T".into(),
                kind: DepKind::Functional,
                optional: true,
            }],
        };
        assert!(matches!(
            spec.build().unwrap_err(),
            SchemaError::OptionalFunctionalDep { .. }
        ));
    }
}
