//! Dependency arcs of a task schema.
//!
//! A task schema connects entities "by directed arcs labelled with *f* or
//! *d*" (§3.1): *functional* dependencies name the tool that constructs an
//! entity, *data* dependencies name its inputs. Loops (such as
//! *EditedNetlist → Netlist* in Fig. 1) are broken by marking a data
//! dependency *optional*, drawn as a dashed arc in the paper.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::entity::EntityTypeId;

/// The label on a dependency arc.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DepKind {
    /// `f`: the target entity is produced by running the source tool.
    Functional,
    /// `d`: the target entity consumes the source entity as input.
    Data,
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepKind::Functional => f.write_str("f"),
            DepKind::Data => f.write_str("d"),
        }
    }
}

/// One dependency arc: `target` depends on `source`.
///
/// Reading Fig. 1: "a Performance is functionally dependent on a
/// Simulator" is `Dependency { target: Performance, source: Simulator,
/// kind: Functional, optional: false }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dependency {
    pub(crate) target: EntityTypeId,
    pub(crate) source: EntityTypeId,
    pub(crate) kind: DepKind,
    pub(crate) optional: bool,
}

impl Dependency {
    /// Returns the dependent entity (the arc's target).
    pub fn target(&self) -> EntityTypeId {
        self.target
    }

    /// Returns the entity depended upon (the arc's source).
    pub fn source(&self) -> EntityTypeId {
        self.source
    }

    /// Returns whether this is a functional (`f`) or data (`d`) arc.
    pub fn kind(&self) -> DepKind {
        self.kind
    }

    /// Returns `true` if this dependency may be omitted when building a
    /// flow (dashed arc; used to break loops in the schema).
    pub fn is_optional(&self) -> bool {
        self.optional
    }

    /// Returns `true` if this dependency must be satisfied in every flow.
    pub fn is_required(&self) -> bool {
        !self.optional
    }

    /// Returns `true` for functional (`f`) arcs.
    pub fn is_functional(&self) -> bool {
        self.kind == DepKind::Functional
    }

    /// Returns `true` for data (`d`) arcs.
    pub fn is_data(&self) -> bool {
        self.kind == DepKind::Data
    }
}

impl fmt::Display for Dependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dash = if self.optional { "--" } else { "—" };
        write!(f, "{} {dash}{}→ {}", self.source, self.kind, self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dep(kind: DepKind, optional: bool) -> Dependency {
        Dependency {
            target: EntityTypeId::from_index(1),
            source: EntityTypeId::from_index(0),
            kind,
            optional,
        }
    }

    #[test]
    fn predicates_match_kind_and_optionality() {
        let f = dep(DepKind::Functional, false);
        assert!(f.is_functional());
        assert!(!f.is_data());
        assert!(f.is_required());
        assert!(!f.is_optional());

        let d = dep(DepKind::Data, true);
        assert!(d.is_data());
        assert!(d.is_optional());
        assert!(!d.is_required());
    }

    #[test]
    fn accessors_expose_endpoints() {
        let d = dep(DepKind::Data, false);
        assert_eq!(d.source().index(), 0);
        assert_eq!(d.target().index(), 1);
        assert_eq!(d.kind(), DepKind::Data);
    }

    #[test]
    fn display_labels_arcs_like_the_paper() {
        assert_eq!(DepKind::Functional.to_string(), "f");
        assert_eq!(DepKind::Data.to_string(), "d");
    }
}
