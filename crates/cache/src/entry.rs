//! The cached value: one tool run's outputs, with a self-validating
//! binary framing.
//!
//! Entries travel between tiers (and machines) as bytes, so the format
//! carries everything needed to detect damage without trusting the
//! transport: a magic, a CRC32 over the payload, explicit lengths, and
//! the entry's own [`CacheKey`]. A torn disk write, a bit flip, or a
//! blob filed under the wrong name all fail validation and are treated
//! as a miss — the crash-safety argument for the disk tier reduces to
//! "an entry either decodes and matches its key, or it does not exist".

use crate::key::CacheKey;

/// Leading magic of every encoded entry; the trailing digit is the
/// format version.
pub const ENTRY_MAGIC: &[u8; 4] = b"HCE1";

/// One output slot of a cached tool run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedOutput {
    /// Entity type *name* of the produced instance. Names, not ids:
    /// the consuming session resolves them against its own schema and
    /// treats unresolvable names as a miss.
    pub entity: String,
    /// Annotation name the tool gave the output (may be empty).
    pub name: String,
    /// The produced payload bytes.
    pub data: Vec<u8>,
}

/// One cached tool run: the outputs a run with this entry's key
/// produced, plus enough provenance to render `cache stats` usefully.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// The content key the entry was stored under (validated on read).
    pub key: CacheKey,
    /// Tool entity name, for humans and eviction logs.
    pub tool: String,
    /// Wall-clock milliseconds when the entry was created — the GC
    /// eviction order (oldest first, hex tiebreak, deterministic).
    pub created_ms: u64,
    /// The run's outputs, in subtask slot order.
    pub outputs: Vec<CachedOutput>,
}

impl CacheEntry {
    /// Total payload bytes across outputs (the size GC budgets).
    pub fn payload_bytes(&self) -> u64 {
        self.outputs.iter().map(|o| o.data.len() as u64).sum()
    }

    /// Encodes the entry as a self-validating byte blob.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(64 + self.payload_bytes() as usize);
        payload.extend_from_slice(self.key.as_bytes());
        payload.extend_from_slice(&self.created_ms.to_le_bytes());
        push_bytes(&mut payload, self.tool.as_bytes());
        payload.extend_from_slice(&(self.outputs.len() as u32).to_le_bytes());
        for out in &self.outputs {
            push_bytes(&mut payload, out.entity.as_bytes());
            push_bytes(&mut payload, out.name.as_bytes());
            push_bytes(&mut payload, &out.data);
        }
        let mut blob = Vec::with_capacity(payload.len() + 12);
        blob.extend_from_slice(ENTRY_MAGIC);
        blob.extend_from_slice(&crc32(&payload).to_le_bytes());
        blob.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        blob.extend_from_slice(&payload);
        blob
    }

    /// Decodes a blob, returning `None` on any validation failure:
    /// wrong magic, truncated, CRC mismatch, malformed structure, or
    /// trailing garbage.
    pub fn decode(blob: &[u8]) -> Option<CacheEntry> {
        if blob.len() < 12 || &blob[..4] != ENTRY_MAGIC {
            return None;
        }
        let crc = u32::from_le_bytes(blob[4..8].try_into().ok()?);
        let len = u32::from_le_bytes(blob[8..12].try_into().ok()?) as usize;
        let payload = blob.get(12..12 + len)?;
        if blob.len() != 12 + len || crc32(payload) != crc {
            return None;
        }
        let mut cur = Cursor { buf: payload };
        let key = CacheKey::from_bytes(cur.take(32)?.try_into().ok()?);
        let created_ms = u64::from_le_bytes(cur.take(8)?.try_into().ok()?);
        let tool = cur.string()?;
        let n = u32::from_le_bytes(cur.take(4)?.try_into().ok()?) as usize;
        // An output needs ≥ 12 framing bytes; bounds the allocation.
        if n > payload.len() / 12 + 1 {
            return None;
        }
        let mut outputs = Vec::with_capacity(n);
        for _ in 0..n {
            let entity = cur.string()?;
            let name = cur.string()?;
            let data = cur.bytes()?.to_vec();
            outputs.push(CachedOutput { entity, name, data });
        }
        if !cur.buf.is_empty() {
            return None;
        }
        Some(CacheEntry {
            key,
            tool,
            created_ms,
            outputs,
        })
    }

    /// Decodes a blob and checks it is filed under `expected` — the
    /// wrong-hit guard every tier applies before serving an entry.
    pub fn decode_for(blob: &[u8], expected: &CacheKey) -> Option<CacheEntry> {
        let entry = CacheEntry::decode(blob)?;
        (entry.key == *expected).then_some(entry)
    }
}

fn push_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let (head, rest) = (self.buf.get(..n)?, self.buf.get(n..)?);
        self.buf = rest;
        Some(head)
    }

    fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = u32::from_le_bytes(self.take(4)?.try_into().ok()?) as usize;
        self.take(len)
    }

    fn string(&mut self) -> Option<String> {
        String::from_utf8(self.bytes()?.to_vec()).ok()
    }
}

/// CRC32 (IEEE 802.3, polynomial `0xEDB88320`) — the same framing
/// checksum the durable store uses.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::sha256;

    fn sample() -> CacheEntry {
        CacheEntry {
            key: CacheKey::from_bytes(sha256(b"sample")),
            tool: "Simulator".into(),
            created_ms: 1_577_836_800_123,
            outputs: vec![
                CachedOutput {
                    entity: "Performance".into(),
                    name: "perf".into(),
                    data: b"Simulator(Circuit, Stimuli)".to_vec(),
                },
                CachedOutput {
                    entity: "SimulationLog".into(),
                    name: String::new(),
                    data: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_round_trips() {
        let entry = sample();
        let blob = entry.encode();
        assert_eq!(CacheEntry::decode(&blob), Some(entry.clone()));
        assert_eq!(CacheEntry::decode_for(&blob, &entry.key), Some(entry));
    }

    #[test]
    fn every_truncation_is_rejected() {
        let blob = sample().encode();
        for len in 0..blob.len() {
            assert_eq!(CacheEntry::decode(&blob[..len]), None, "truncated to {len}");
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let entry = sample();
        let blob = entry.encode();
        for i in 0..blob.len() {
            let mut bad = blob.clone();
            bad[i] ^= 0x40;
            assert_eq!(
                CacheEntry::decode_for(&bad, &entry.key),
                None,
                "bit flip at byte {i} served"
            );
        }
    }

    #[test]
    fn trailing_garbage_and_wrong_key_are_rejected() {
        let entry = sample();
        let mut blob = entry.encode();
        blob.push(0);
        assert_eq!(CacheEntry::decode(&blob), None);
        let blob = entry.encode();
        let other = CacheKey::from_bytes(sha256(b"other"));
        assert_eq!(CacheEntry::decode_for(&blob, &other), None);
    }

    #[test]
    fn payload_bytes_counts_outputs() {
        assert_eq!(sample().payload_bytes(), 27);
    }
}
