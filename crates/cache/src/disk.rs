//! The on-disk tier: a crash-safe, sharded, CRC-validated entry store.
//!
//! Layout: `<root>/<xx>/<hex64>.hce`, where `xx` is the first key byte
//! in hex — 256 shards keep directories small. Writes follow the
//! atomic-replace recipe through the sim-aware [`Fs`] handle: encode →
//! write `<hex64>.tmp` → `fsync` → rename over the final name →
//! `fsync` the shard directory. A crash at any point leaves either no
//! entry (temp files are ignored and reaped) or a fully validated one;
//! the entry framing ([`CacheEntry`]) rejects torn and rotten bytes,
//! so a reader can never observe a wrong hit.
//!
//! GC is size-budgeted and deterministic: entries leave oldest-first
//! by their recorded creation time (hex key as tiebreak) until the
//! tier fits its byte budget. Damaged entries found along the way are
//! deleted and counted, never served.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use hercules_sim::Fs;

use crate::backend::{CacheBackend, TierUsage};
use crate::entry::CacheEntry;
use crate::key::CacheKey;

/// Filename suffix of a committed entry.
const ENTRY_SUFFIX: &str = ".hce";
/// Filename suffix of an in-flight write (never read as an entry).
const TMP_SUFFIX: &str = ".tmp";

/// What one GC pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Entries examined.
    pub scanned: u64,
    /// Valid entries evicted to meet the byte budget (oldest first).
    pub evicted: u64,
    /// Damaged or mis-filed entries deleted.
    pub dropped: u64,
    /// Leftover `.tmp` files from interrupted write-backs reaped.
    pub reaped_tmp: u64,
    /// Stored bytes before the pass.
    pub bytes_before: u64,
    /// Stored bytes after the pass.
    pub bytes_after: u64,
}

/// The persistent local tier.
#[derive(Debug)]
pub struct DiskTier {
    fs: Fs,
    root: PathBuf,
    /// Byte budget enforced by [`DiskTier::gc`] (writes may overshoot
    /// between passes; lookups are unaffected).
    budget_bytes: u64,
    /// Damaged entries deleted on the lookup path since creation.
    dropped: AtomicU64,
}

impl DiskTier {
    /// Opens (creating if needed) the store rooted at `root`.
    pub fn open(fs: Fs, root: impl Into<PathBuf>, budget_bytes: u64) -> io::Result<DiskTier> {
        let root = root.into();
        fs.create_dir_all(&root)?;
        Ok(DiskTier {
            fs,
            root,
            budget_bytes,
            dropped: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The byte budget GC enforces.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Damaged entries deleted on the lookup path since this handle
    /// was opened (monotonic).
    pub fn dropped_entries(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn shard_dir(&self, key: &CacheKey) -> PathBuf {
        self.root.join(key.shard())
    }

    fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.shard_dir(key)
            .join(format!("{}{ENTRY_SUFFIX}", key.to_hex()))
    }

    /// Deletes a damaged entry so it is never rescanned; best-effort.
    fn drop_entry(&self, path: &Path) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
        let _ = self.fs.remove_file(path);
        if let Some(dir) = path.parent() {
            let _ = self.fs.sync_dir(dir);
        }
    }

    /// Scans every committed entry: `(path, blob)` pairs, sorted by
    /// path for determinism. Missing shard directories read as empty.
    fn scan(&self) -> io::Result<Vec<(PathBuf, Vec<u8>)>> {
        let mut out = Vec::new();
        for shard in 0..=0xffu32 {
            let dir = self.root.join(format!("{shard:02x}"));
            let Ok(paths) = self.fs.list_dir(&dir) else {
                continue;
            };
            for path in paths {
                if path.to_string_lossy().ends_with(ENTRY_SUFFIX) {
                    let blob = self.fs.read(&path)?;
                    out.push((path, blob));
                }
            }
        }
        Ok(out)
    }

    /// Reaps `.tmp` leftovers from interrupted write-backs.
    fn reap_tmp(&self) -> io::Result<u64> {
        let mut reaped = 0;
        for shard in 0..=0xffu32 {
            let dir = self.root.join(format!("{shard:02x}"));
            let Ok(paths) = self.fs.list_dir(&dir) else {
                continue;
            };
            for path in paths {
                if path.to_string_lossy().ends_with(TMP_SUFFIX) {
                    self.fs.remove_file(&path)?;
                    self.fs.sync_dir(&dir)?;
                    reaped += 1;
                }
            }
        }
        Ok(reaped)
    }

    /// One size-budget GC pass: reaps temp files, deletes damaged
    /// entries, then evicts the oldest valid entries until the tier
    /// fits `budget_bytes`.
    pub fn gc(&self) -> io::Result<GcReport> {
        let mut report = GcReport {
            reaped_tmp: self.reap_tmp()?,
            ..GcReport::default()
        };
        // (created_ms, hex-path, path, blob_len) per valid entry.
        let mut entries: Vec<(u64, PathBuf, u64)> = Vec::new();
        for (path, blob) in self.scan()? {
            report.scanned += 1;
            let expected = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_suffix(ENTRY_SUFFIX))
                .and_then(CacheKey::from_hex);
            let decoded = expected.and_then(|k| CacheEntry::decode_for(&blob, &k));
            match decoded {
                Some(entry) => {
                    report.bytes_before += blob.len() as u64;
                    entries.push((entry.created_ms, path, blob.len() as u64));
                }
                None => {
                    self.drop_entry(&path);
                    report.dropped += 1;
                }
            }
        }
        report.bytes_after = report.bytes_before;
        entries.sort();
        let mut victims = entries.iter();
        while report.bytes_after > self.budget_bytes {
            let Some((_, path, len)) = victims.next() else {
                break;
            };
            self.fs.remove_file(path)?;
            if let Some(dir) = path.parent() {
                self.fs.sync_dir(dir)?;
            }
            report.bytes_after -= len;
            report.evicted += 1;
        }
        Ok(report)
    }
}

impl CacheBackend for DiskTier {
    fn tier(&self) -> &'static str {
        "disk"
    }

    fn get(&self, key: &CacheKey) -> io::Result<Option<CacheEntry>> {
        let path = self.entry_path(key);
        if !self.fs.exists(&path) {
            return Ok(None);
        }
        let blob = self.fs.read(&path)?;
        match CacheEntry::decode_for(&blob, key) {
            Some(entry) => Ok(Some(entry)),
            None => {
                // Torn, rotten, or mis-filed: drop it, report a miss.
                self.drop_entry(&path);
                Ok(None)
            }
        }
    }

    fn put(&self, key: &CacheKey, entry: &CacheEntry) -> io::Result<()> {
        let final_path = self.entry_path(key);
        if self.fs.exists(&final_path) {
            // Content-addressed: an existing entry is byte-identical.
            return Ok(());
        }
        let shard = self.shard_dir(key);
        self.fs.create_dir_all(&shard)?;
        let tmp = shard.join(format!("{}{TMP_SUFFIX}", key.to_hex()));
        {
            let mut file = self.fs.create_truncate(&tmp)?;
            file.write_all(&entry.encode())?;
            file.sync_all()?;
        }
        self.fs.rename(&tmp, &final_path)?;
        self.fs.sync_dir(&shard)?;
        Ok(())
    }

    fn usage(&self) -> io::Result<TierUsage> {
        let mut usage = TierUsage::default();
        for (_, blob) in self.scan()? {
            usage.entries += 1;
            usage.bytes += blob.len() as u64;
        }
        Ok(usage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::CachedOutput;
    use crate::key::sha256;
    use std::sync::Arc;

    fn entry(tag: u8, size: usize) -> (CacheKey, CacheEntry) {
        let key = CacheKey::from_bytes(sha256(&[tag]));
        let entry = CacheEntry {
            key,
            tool: "T".into(),
            created_ms: u64::from(tag),
            outputs: vec![CachedOutput {
                entity: "E".into(),
                name: String::new(),
                data: vec![tag; size],
            }],
        };
        (key, entry)
    }

    fn sim_tier(budget: u64) -> (Arc<hercules_sim::SimFsState>, DiskTier) {
        let state = Arc::new(hercules_sim::SimFsState::new(
            hercules_sim::SimRng::new(1),
            hercules_sim::SimTrace::disabled(),
        ));
        let fs = Fs::sim(state.clone());
        let tier = DiskTier::open(fs, "/cache", budget).expect("open");
        (state, tier)
    }

    #[test]
    fn round_trips_through_the_simulated_disk() {
        let (_state, tier) = sim_tier(1 << 20);
        let (key, e) = entry(1, 32);
        assert_eq!(tier.get(&key).unwrap(), None);
        tier.put(&key, &e).unwrap();
        assert_eq!(tier.get(&key).unwrap(), Some(e.clone()));
        // Idempotent re-put.
        tier.put(&key, &e).unwrap();
        let usage = tier.usage().unwrap();
        assert_eq!(usage.entries, 1);
        assert_eq!(usage.bytes, e.encode().len() as u64);
    }

    #[test]
    fn corrupt_entry_is_dropped_not_served() {
        let (state, tier) = sim_tier(1 << 20);
        let (key, e) = entry(2, 32);
        tier.put(&key, &e).unwrap();
        let path = tier.entry_path(&key);
        assert!(state.corrupt_file(&path, 20, 0xff));
        assert_eq!(tier.get(&key).unwrap(), None, "rot served as a hit");
        assert_eq!(tier.dropped_entries(), 1);
        assert!(!Fs::sim(state).exists(&path), "damaged file deleted");
    }

    #[test]
    fn gc_reaps_tmp_and_evicts_oldest_until_budget() {
        let (_state, tier) = sim_tier(1 << 20);
        let mut encoded = 0u64;
        for tag in 1..=4u8 {
            let (k, e) = entry(tag, 100);
            tier.put(&k, &e).unwrap();
            encoded = e.encode().len() as u64;
        }
        // A leftover temp file from an interrupted write-back.
        let (k5, _) = entry(5, 1);
        let shard = tier.shard_dir(&k5);
        tier.fs.create_dir_all(&shard).unwrap();
        let tmp = shard.join(format!("{}{TMP_SUFFIX}", k5.to_hex()));
        tier.fs
            .create_truncate(&tmp)
            .unwrap()
            .write_all(b"partial")
            .unwrap();

        // Budget fits two entries: the two oldest (created_ms 1, 2) go.
        let budget = encoded * 2;
        let tier = DiskTier::open(tier.fs.clone(), tier.root.clone(), budget).unwrap();
        let report = tier.gc().unwrap();
        assert_eq!(report.reaped_tmp, 1);
        assert_eq!(report.scanned, 4);
        assert_eq!(report.evicted, 2);
        assert_eq!(report.bytes_after, budget);
        assert!(tier.get(&entry(1, 100).0).unwrap().is_none());
        assert!(tier.get(&entry(2, 100).0).unwrap().is_none());
        assert!(tier.get(&entry(3, 100).0).unwrap().is_some());
        assert!(tier.get(&entry(4, 100).0).unwrap().is_some());
    }

    #[test]
    fn gc_deletes_damaged_entries() {
        let (state, tier) = sim_tier(1 << 20);
        let (k1, e1) = entry(1, 50);
        let (k2, e2) = entry(2, 50);
        tier.put(&k1, &e1).unwrap();
        tier.put(&k2, &e2).unwrap();
        assert!(state.corrupt_file(&tier.entry_path(&k1), 30, 0x01));
        let report = tier.gc().unwrap();
        assert_eq!(report.dropped, 1);
        assert_eq!(report.evicted, 0);
        assert!(tier.get(&k1).unwrap().is_none());
        assert!(tier.get(&k2).unwrap().is_some());
    }

    #[test]
    fn mis_filed_entry_is_rejected_by_key_check() {
        let (_state, tier) = sim_tier(1 << 20);
        let (k1, e1) = entry(1, 16);
        let (k2, _) = entry(2, 16);
        // File entry 1's bytes under entry 2's name.
        let shard = tier.shard_dir(&k2);
        tier.fs.create_dir_all(&shard).unwrap();
        let path = tier.entry_path(&k2);
        tier.fs
            .create_truncate(&path)
            .unwrap()
            .write_all(&e1.encode())
            .unwrap();
        assert_eq!(tier.get(&k2).unwrap(), None, "mis-filed entry served");
        assert_eq!(tier.get(&k1).unwrap(), None, "entry 1 was never committed");
    }
}
