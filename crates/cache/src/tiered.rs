//! The tiered front end: memory → disk → remote behind one handle.
//!
//! Lookups read through the tiers in cost order and populate the
//! cheaper tiers on the way back (a remote hit lands in memory and on
//! disk, a disk hit in memory). Inserts land in memory immediately;
//! the persistent tiers are written back *asynchronously* on a
//! dedicated writer thread, so the executor's hot path never blocks
//! on cache I/O. Under simulation (or when configured explicitly)
//! write-back is synchronous instead, which makes crash-point sweeps
//! over the disk tier deterministic.
//!
//! Every tier is best-effort: an I/O error degrades the cache (and
//! shows up in `cache.*` metrics and the health report), it never
//! fails or corrupts an execution.

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use hercules_obs::{names, Metrics};
use hercules_sim::{Clock, Fs};

use crate::backend::{CacheBackend, TierUsage};
use crate::disk::{DiskTier, GcReport};
use crate::entry::CacheEntry;
use crate::key::CacheKey;
use crate::memory::{MemoryBudget, MemoryTier};
use crate::remote::{RemoteCache, RemoteTier};

/// Construction-time options for [`ContentCache::open`].
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// In-memory tier bounds.
    pub memory: MemoryBudget,
    /// Disk tier byte budget (enforced by `gc`).
    pub disk_budget_bytes: u64,
    /// `Some(true)` forces synchronous write-back, `Some(false)`
    /// forces the background writer; `None` (default) picks sync under
    /// a simulated filesystem and async on a real one.
    pub sync_writes: Option<bool>,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            memory: MemoryBudget::default(),
            disk_budget_bytes: 256 << 20,
            sync_writes: None,
        }
    }
}

/// Hit/miss/error counts of one tier (independent of the metrics
/// registry, so `cache stats` works even with metrics disabled).
#[derive(Debug, Default)]
struct TierCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    errors: AtomicU64,
}

impl TierCounters {
    fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
        )
    }
}

/// Point-in-time stats of one tier, for `cache stats`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierStats {
    /// Tier name (`mem`, `disk`, `remote`).
    pub tier: String,
    /// Lookups served by this tier.
    pub hits: u64,
    /// Lookups that fell through this tier.
    pub misses: u64,
    /// Degraded operations (I/O errors, injected faults).
    pub errors: u64,
    /// Occupancy (zero for remotes, which do not expose it).
    pub entries: u64,
    /// Stored bytes (encoded for disk, payload for memory).
    pub bytes: u64,
    /// Extra detail: disk root, remote label.
    pub detail: String,
}

impl TierStats {
    /// Hit rate over the lookups this tier saw, if any.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

/// Point-in-time stats of the whole cache.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheStats {
    /// Per-tier stats in lookup order.
    pub tiers: Vec<TierStats>,
    /// Entries written back (one per produced run).
    pub inserts: u64,
    /// Damaged disk entries dropped instead of served.
    pub dropped: u64,
}

impl CacheStats {
    /// Human-readable rendering for the REPL `cache stats` command.
    pub fn render_text(&self) -> String {
        let mut out = String::from("content cache:\n");
        for t in &self.tiers {
            let rate = match t.hit_rate() {
                Some(r) => format!("{:.1}%", r * 100.0),
                None => "-".into(),
            };
            out.push_str(&format!(
                "  {:<6} hits={:<8} misses={:<8} rate={:<7} errors={:<4} entries={:<6} bytes={:<10} {}\n",
                t.tier, t.hits, t.misses, rate, t.errors, t.entries, t.bytes, t.detail
            ));
        }
        out.push_str(&format!(
            "  inserts={} dropped_entries={}\n",
            self.inserts, self.dropped
        ));
        out
    }
}

/// The shared, thread-safe state behind every clone of the handle.
#[derive(Debug)]
struct CacheInner {
    mem: MemoryTier,
    mem_counters: TierCounters,
    tiers: Arc<PersistentTiers>,
    /// `Some` when the background writer owns write-back.
    writer: Mutex<Option<Writer>>,
    sync_writes: bool,
}

/// The persistent tiers plus everything the writer thread needs.
#[derive(Debug)]
struct PersistentTiers {
    disk: Option<DiskTier>,
    remote: Option<RemoteTier>,
    disk_counters: TierCounters,
    remote_counters: TierCounters,
    inserts: AtomicU64,
    metrics: Metrics,
    clock: Clock,
}

#[derive(Debug)]
struct Writer {
    queue: mpsc::Sender<WriteJob>,
    thread: JoinHandle<()>,
}

enum WriteJob {
    /// Write `entry` back to disk (and the remote, when `to_remote`).
    Put {
        key: CacheKey,
        entry: CacheEntry,
        to_remote: bool,
    },
    /// Barrier: ack once every job queued before it has drained.
    Flush(mpsc::Sender<()>),
}

impl PersistentTiers {
    /// Writes one entry to disk (and optionally the remote), folding
    /// failures into counters — write-back is always best-effort.
    fn write_back(&self, key: &CacheKey, entry: &CacheEntry, to_remote: bool) {
        let t0 = self.clock.now();
        if let Some(disk) = &self.disk {
            match disk.put(key, entry) {
                Ok(()) => self.metrics.gauge_set(names::CACHE_DISK_HEALTHY, 1),
                Err(_) => {
                    self.disk_counters.errors.fetch_add(1, Ordering::Relaxed);
                    self.metrics.incr(names::CACHE_DISK_IO_ERRORS, 1);
                    self.metrics.gauge_set(names::CACHE_DISK_HEALTHY, 0);
                }
            }
        }
        if to_remote {
            if let Some(remote) = &self.remote {
                if remote.put(key, entry).is_err() {
                    self.remote_counters.errors.fetch_add(1, Ordering::Relaxed);
                    self.metrics.incr(names::CACHE_REMOTE_ERRORS, 1);
                }
            }
        }
        self.metrics
            .observe_duration(names::CACHE_WRITEBACK_NS, self.clock.since(t0));
    }
}

/// The content-addressed tool-result cache handle. Clones share one
/// cache; the handle is cheap to pass into `ExecOptions`.
#[derive(Debug, Clone)]
pub struct ContentCache {
    inner: Arc<CacheInner>,
}

impl ContentCache {
    /// A memory-only cache (no persistent tiers) — useful in tests and
    /// for single-process dedup.
    pub fn in_memory(memory: MemoryBudget, clock: Clock, metrics: Metrics) -> ContentCache {
        ContentCache::build(MemoryTier::new(memory), None, None, true, clock, metrics)
    }

    /// Opens a cache with a disk tier rooted at `root` (shared across
    /// sessions and workspaces that open the same root) and an
    /// optional remote tier behind it.
    pub fn open(
        fs: &Fs,
        root: impl Into<PathBuf>,
        remote: Option<Arc<dyn RemoteCache>>,
        config: CacheConfig,
        clock: Clock,
        metrics: Metrics,
    ) -> io::Result<ContentCache> {
        let disk = DiskTier::open(fs.clone(), root, config.disk_budget_bytes)?;
        let sync_writes = config.sync_writes.unwrap_or_else(|| fs.is_sim());
        Ok(ContentCache::build(
            MemoryTier::new(config.memory),
            Some(disk),
            remote.map(RemoteTier::new),
            sync_writes,
            clock,
            metrics,
        ))
    }

    fn build(
        mem: MemoryTier,
        disk: Option<DiskTier>,
        remote: Option<RemoteTier>,
        sync_writes: bool,
        clock: Clock,
        metrics: Metrics,
    ) -> ContentCache {
        let tiers = Arc::new(PersistentTiers {
            disk,
            remote,
            disk_counters: TierCounters::default(),
            remote_counters: TierCounters::default(),
            inserts: AtomicU64::new(0),
            metrics,
            clock,
        });
        let writer = if sync_writes {
            None
        } else {
            let (queue, jobs) = mpsc::channel::<WriteJob>();
            let worker = tiers.clone();
            let thread = std::thread::spawn(move || {
                while let Ok(job) = jobs.recv() {
                    match job {
                        WriteJob::Put {
                            key,
                            entry,
                            to_remote,
                        } => worker.write_back(&key, &entry, to_remote),
                        WriteJob::Flush(ack) => drop(ack.send(())),
                    }
                }
            });
            Some(Writer { queue, thread })
        };
        ContentCache {
            inner: Arc::new(CacheInner {
                mem,
                mem_counters: TierCounters::default(),
                tiers,
                writer: Mutex::new(writer),
                sync_writes,
            }),
        }
    }

    /// Returns `true` when write-back happens on the calling thread.
    pub fn sync_writes(&self) -> bool {
        self.inner.sync_writes
    }

    /// The disk tier's root, when one is attached.
    pub fn disk_root(&self) -> Option<PathBuf> {
        self.inner
            .tiers
            .disk
            .as_ref()
            .map(|d| d.root().to_path_buf())
    }

    fn metrics(&self) -> &Metrics {
        &self.inner.tiers.metrics
    }

    fn clock(&self) -> &Clock {
        &self.inner.tiers.clock
    }

    /// Looks a key up through the tiers, populating cheaper tiers on a
    /// deeper hit. Errors degrade to misses.
    pub fn lookup(&self, key: &CacheKey) -> Option<CacheEntry> {
        let inner = &*self.inner;
        let tiers = &*inner.tiers;
        let metrics = self.metrics();
        let t0 = self.clock().now();
        let mem_hit = inner.mem.get(key).unwrap_or(None);
        metrics.observe_duration(names::CACHE_MEM_LOOKUP_NS, self.clock().since(t0));
        if let Some(entry) = mem_hit {
            inner.mem_counters.hits.fetch_add(1, Ordering::Relaxed);
            metrics.incr(names::CACHE_MEM_HITS, 1);
            return Some(entry);
        }
        inner.mem_counters.misses.fetch_add(1, Ordering::Relaxed);
        metrics.incr(names::CACHE_MEM_MISSES, 1);

        if let Some(disk) = &tiers.disk {
            let t0 = self.clock().now();
            let dropped_before = disk.dropped_entries();
            let looked = disk.get(key);
            let dropped = disk.dropped_entries() - dropped_before;
            if dropped > 0 {
                metrics.incr(names::CACHE_DISK_DROPPED, dropped);
            }
            metrics.observe_duration(names::CACHE_DISK_LOOKUP_NS, self.clock().since(t0));
            match looked {
                Ok(Some(entry)) => {
                    tiers.disk_counters.hits.fetch_add(1, Ordering::Relaxed);
                    metrics.incr(names::CACHE_DISK_HITS, 1);
                    metrics.gauge_set(names::CACHE_DISK_HEALTHY, 1);
                    let _ = inner.mem.put(key, &entry);
                    return Some(entry);
                }
                Ok(None) => {
                    tiers.disk_counters.misses.fetch_add(1, Ordering::Relaxed);
                    metrics.incr(names::CACHE_DISK_MISSES, 1);
                }
                Err(_) => {
                    tiers.disk_counters.errors.fetch_add(1, Ordering::Relaxed);
                    metrics.incr(names::CACHE_DISK_IO_ERRORS, 1);
                    metrics.gauge_set(names::CACHE_DISK_HEALTHY, 0);
                }
            }
        }

        if let Some(remote) = &tiers.remote {
            let t0 = self.clock().now();
            let looked = remote.get(key);
            metrics.observe_duration(names::CACHE_REMOTE_LOOKUP_NS, self.clock().since(t0));
            match looked {
                Ok(Some(entry)) => {
                    tiers.remote_counters.hits.fetch_add(1, Ordering::Relaxed);
                    metrics.incr(names::CACHE_REMOTE_HITS, 1);
                    let _ = inner.mem.put(key, &entry);
                    // Populate the local disk so the next session does
                    // not pay the remote round trip again.
                    self.enqueue(key, &entry, false);
                    return Some(entry);
                }
                Ok(None) => {
                    tiers.remote_counters.misses.fetch_add(1, Ordering::Relaxed);
                    metrics.incr(names::CACHE_REMOTE_MISSES, 1);
                }
                Err(_) => {
                    tiers.remote_counters.errors.fetch_add(1, Ordering::Relaxed);
                    metrics.incr(names::CACHE_REMOTE_ERRORS, 1);
                }
            }
        }
        None
    }

    /// Inserts a freshly produced result: memory immediately, the
    /// persistent tiers via write-back.
    pub fn insert(&self, key: &CacheKey, entry: &CacheEntry) {
        self.inner.tiers.inserts.fetch_add(1, Ordering::Relaxed);
        self.metrics().incr(names::CACHE_INSERTS, 1);
        let _ = self.inner.mem.put(key, entry);
        self.enqueue(key, entry, true);
    }

    fn enqueue(&self, key: &CacheKey, entry: &CacheEntry, to_remote: bool) {
        if self.inner.sync_writes {
            self.inner.tiers.write_back(key, entry, to_remote);
            return;
        }
        let writer = self.inner.writer.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(w) = &*writer {
            let _ = w.queue.send(WriteJob::Put {
                key: *key,
                entry: entry.clone(),
                to_remote,
            });
        }
    }

    /// Waits until every write-back queued so far has drained — a
    /// barrier for handoff points (session save, benchmarks, tests).
    pub fn flush(&self) {
        let writer = self.inner.writer.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(w) = &*writer {
            let (ack_tx, ack_rx) = mpsc::channel();
            if w.queue.send(WriteJob::Flush(ack_tx)).is_ok() {
                let _ = ack_rx.recv();
            }
        }
    }

    /// One size-budget GC pass over the disk tier (no-op without one).
    /// Flushes pending write-backs first so the pass sees them.
    pub fn gc(&self) -> io::Result<GcReport> {
        self.flush();
        let tiers = &*self.inner.tiers;
        let Some(disk) = &tiers.disk else {
            return Ok(GcReport::default());
        };
        let report = disk.gc()?;
        let metrics = self.metrics();
        metrics.incr(names::CACHE_GC_RUNS, 1);
        metrics.incr(names::CACHE_GC_EVICTED, report.evicted);
        if report.dropped > 0 {
            metrics.incr(names::CACHE_DISK_DROPPED, report.dropped);
        }
        metrics.gauge_set(names::CACHE_DISK_BYTES, report.bytes_after as i64);
        metrics.gauge_set(
            names::CACHE_DISK_ENTRIES,
            (report.scanned - report.dropped - report.evicted) as i64,
        );
        Ok(report)
    }

    /// Point-in-time stats (flushes pending write-backs so occupancy
    /// reflects every insert so far).
    pub fn stats(&self) -> CacheStats {
        self.flush();
        let inner = &*self.inner;
        let tiers = &*inner.tiers;
        let metrics = self.metrics();
        let mut out = Vec::new();
        let (hits, misses, errors) = inner.mem_counters.snapshot();
        let mem_usage = inner.mem.usage().unwrap_or_default();
        metrics.gauge_set(names::CACHE_MEM_ENTRIES, mem_usage.entries as i64);
        out.push(TierStats {
            tier: "mem".into(),
            hits,
            misses,
            errors,
            entries: mem_usage.entries,
            bytes: mem_usage.bytes,
            detail: String::new(),
        });
        let mut dropped = 0;
        if let Some(disk) = &tiers.disk {
            let (hits, misses, errors) = tiers.disk_counters.snapshot();
            let usage = disk.usage().unwrap_or_default();
            metrics.gauge_set(names::CACHE_DISK_ENTRIES, usage.entries as i64);
            metrics.gauge_set(names::CACHE_DISK_BYTES, usage.bytes as i64);
            dropped = disk.dropped_entries();
            out.push(TierStats {
                tier: "disk".into(),
                hits,
                misses,
                errors,
                entries: usage.entries,
                bytes: usage.bytes,
                detail: disk.root().display().to_string(),
            });
        }
        if let Some(remote) = &tiers.remote {
            let (hits, misses, errors) = tiers.remote_counters.snapshot();
            let usage = remote.usage().unwrap_or_default();
            out.push(TierStats {
                tier: "remote".into(),
                hits,
                misses,
                errors,
                entries: usage.entries,
                bytes: usage.bytes,
                detail: remote.label(),
            });
        }
        CacheStats {
            tiers: out,
            inserts: tiers.inserts.load(Ordering::Relaxed),
            dropped,
        }
    }
}

impl Drop for CacheInner {
    fn drop(&mut self) {
        // Drain the writer so queued entries survive process exit.
        let writer = self.writer.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(w) = writer {
            drop(w.queue);
            let _ = w.thread.join();
        }
    }
}

impl TierUsage {
    /// Sum of two usages (stats aggregation).
    pub fn plus(self, other: TierUsage) -> TierUsage {
        TierUsage {
            entries: self.entries + other.entries,
            bytes: self.bytes + other.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::CachedOutput;
    use crate::key::sha256;
    use crate::remote::LocalDirRemote;
    use std::time::Duration;

    fn entry(tag: u8) -> (CacheKey, CacheEntry) {
        let key = CacheKey::from_bytes(sha256(&[tag]));
        let entry = CacheEntry {
            key,
            tool: "T".into(),
            created_ms: u64::from(tag),
            outputs: vec![CachedOutput {
                entity: "E".into(),
                name: String::new(),
                data: vec![tag; 16],
            }],
        };
        (key, entry)
    }

    #[test]
    fn memory_only_cache_hits_and_misses() {
        let cache =
            ContentCache::in_memory(MemoryBudget::default(), Clock::real(), Metrics::disabled());
        let (key, e) = entry(1);
        assert!(cache.lookup(&key).is_none());
        cache.insert(&key, &e);
        assert_eq!(cache.lookup(&key), Some(e));
        let stats = cache.stats();
        assert_eq!(stats.tiers[0].hits, 1);
        assert_eq!(stats.tiers[0].misses, 1);
        assert_eq!(stats.inserts, 1);
        assert!(stats.render_text().contains("mem"));
    }

    #[test]
    fn disk_tier_survives_reopen_cross_session() {
        let sim = hercules_sim::SimEnv::new(11);
        let metrics = Metrics::new();
        let a = ContentCache::open(
            &sim.fs(),
            "/shared-cache",
            None,
            CacheConfig::default(),
            sim.clock(),
            metrics.clone(),
        )
        .expect("open a");
        assert!(a.sync_writes(), "sim fs defaults to sync write-back");
        let (key, e) = entry(2);
        a.insert(&key, &e);
        drop(a);
        // "Workspace B" opens the same root and hits on A's work.
        let b = ContentCache::open(
            &sim.fs(),
            "/shared-cache",
            None,
            CacheConfig::default(),
            sim.clock(),
            metrics.clone(),
        )
        .expect("open b");
        assert_eq!(b.lookup(&key), Some(e));
        let snap = metrics.snapshot();
        assert_eq!(snap.counters[hercules_obs::names::CACHE_DISK_HITS], 1);
        assert_eq!(snap.gauges[hercules_obs::names::CACHE_DISK_HEALTHY], 1);
    }

    #[test]
    fn async_writer_drains_on_flush_and_drop() {
        let dir = std::env::temp_dir().join(format!("hercules-cache-async-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fs = Fs::real();
        let cache = ContentCache::open(
            &fs,
            &dir,
            None,
            CacheConfig {
                sync_writes: Some(false),
                ..CacheConfig::default()
            },
            Clock::real(),
            Metrics::disabled(),
        )
        .expect("open");
        assert!(!cache.sync_writes());
        let (key, e) = entry(3);
        cache.insert(&key, &e);
        cache.flush();
        drop(cache);
        let reopened = ContentCache::open(
            &fs,
            &dir,
            None,
            CacheConfig::default(),
            Clock::real(),
            Metrics::disabled(),
        )
        .expect("reopen");
        assert_eq!(reopened.lookup(&key), Some(e));
        drop(reopened);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn remote_hit_populates_memory_and_disk() {
        let sim = hercules_sim::SimEnv::new(13);
        let remote = Arc::new(
            LocalDirRemote::open(sim.fs(), "/remote", sim.clock())
                .expect("remote")
                .with_latency(Duration::from_micros(500)),
        );
        // Seed the remote through a first cache.
        let seeder = ContentCache::open(
            &sim.fs(),
            "/cache-a",
            Some(remote.clone()),
            CacheConfig::default(),
            sim.clock(),
            Metrics::disabled(),
        )
        .expect("seeder");
        let (key, e) = entry(4);
        seeder.insert(&key, &e);
        drop(seeder);

        let metrics = Metrics::new();
        let cache = ContentCache::open(
            &sim.fs(),
            "/cache-b",
            Some(remote),
            CacheConfig::default(),
            sim.clock(),
            metrics.clone(),
        )
        .expect("open");
        assert_eq!(cache.lookup(&key), Some(e.clone()), "remote hit");
        let snap = metrics.snapshot();
        assert_eq!(snap.counters[hercules_obs::names::CACHE_REMOTE_HITS], 1);
        assert!(
            snap.histograms[hercules_obs::names::CACHE_REMOTE_LOOKUP_NS].min
                >= Duration::from_micros(500).as_nanos() as u64,
            "injected latency visible in the remote histogram"
        );
        // Second lookup is served locally: no new remote traffic.
        assert_eq!(cache.lookup(&key), Some(e));
        let snap = metrics.snapshot();
        assert_eq!(snap.counters[hercules_obs::names::CACHE_REMOTE_HITS], 1);
        // And the local disk now holds the entry for future sessions.
        let local_only = ContentCache::open(
            &sim.fs(),
            "/cache-b",
            None,
            CacheConfig::default(),
            sim.clock(),
            Metrics::disabled(),
        )
        .expect("open");
        assert!(local_only.lookup(&key).is_some());
    }

    #[test]
    fn gc_reports_and_updates_gauges() {
        let sim = hercules_sim::SimEnv::new(17);
        let metrics = Metrics::new();
        let cache = ContentCache::open(
            &sim.fs(),
            "/gc-cache",
            None,
            CacheConfig {
                disk_budget_bytes: 0,
                ..CacheConfig::default()
            },
            sim.clock(),
            metrics.clone(),
        )
        .expect("open");
        let (k1, e1) = entry(5);
        let (k2, e2) = entry(6);
        cache.insert(&k1, &e1);
        cache.insert(&k2, &e2);
        let report = cache.gc().expect("gc");
        assert_eq!(report.evicted, 2, "zero budget evicts everything");
        let snap = metrics.snapshot();
        assert_eq!(snap.counters[hercules_obs::names::CACHE_GC_RUNS], 1);
        assert_eq!(snap.counters[hercules_obs::names::CACHE_GC_EVICTED], 2);
        assert_eq!(snap.gauges[hercules_obs::names::CACHE_DISK_BYTES], 0);
    }
}
