//! Canonical content keys.
//!
//! A [`CacheKey`] is the SHA-256 of a domain-separated, length-framed
//! field stream: every field goes in as `tag \n len(u64 LE) bytes`, so
//! two different field sequences can never collide by concatenation
//! ("ab"+"c" vs "a"+"bc") and a new key domain (or schema fingerprint)
//! changes every key at once. Content addressing is what makes the
//! cache shareable: two sessions that perform the same transformation
//! on the same bytes derive the same key, whatever their instance
//! numbering looks like.

use std::fmt;

/// A 256-bit content key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey([u8; 32]);

impl CacheKey {
    /// Wraps a raw digest.
    pub fn from_bytes(bytes: [u8; 32]) -> CacheKey {
        CacheKey(bytes)
    }

    /// The raw digest.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Lowercase hex rendering (64 chars).
    pub fn to_hex(&self) -> String {
        let mut out = String::with_capacity(64);
        for b in self.0 {
            out.push_str(&format!("{b:02x}"));
        }
        out
    }

    /// The first two hex characters — the disk tier's shard name.
    pub fn shard(&self) -> String {
        format!("{:02x}", self.0[0])
    }

    /// Parses the output of [`CacheKey::to_hex`].
    pub fn from_hex(hex: &str) -> Option<CacheKey> {
        let hex = hex.as_bytes();
        if hex.len() != 64 {
            return None;
        }
        let nibble = |c: u8| -> Option<u8> {
            match c {
                b'0'..=b'9' => Some(c - b'0'),
                b'a'..=b'f' => Some(c - b'a' + 10),
                _ => None,
            }
        };
        let mut out = [0u8; 32];
        for (i, pair) in hex.chunks(2).enumerate() {
            out[i] = nibble(pair[0])? << 4 | nibble(pair[1])?;
        }
        Some(CacheKey(out))
    }
}

impl fmt::Debug for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CacheKey({})", &self.to_hex()[..12])
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Builds a [`CacheKey`] from tagged fields.
///
/// ```
/// use hercules_cache::KeyBuilder;
/// let mut k = KeyBuilder::new("example.v1");
/// k.field("tool", b"Simulator");
/// k.field("input", b"netlist bytes");
/// let a = k.finish();
/// let mut k = KeyBuilder::new("example.v1");
/// k.field("tool", b"Simulator");
/// k.field("input", b"netlist bytes");
/// assert_eq!(a, k.finish());
/// ```
#[derive(Debug, Clone)]
pub struct KeyBuilder {
    hasher: Sha256,
}

impl KeyBuilder {
    /// Starts a key in `domain` — bump the domain string to invalidate
    /// every previously derived key (e.g. on an entry-format change).
    pub fn new(domain: &str) -> KeyBuilder {
        let mut b = KeyBuilder {
            hasher: Sha256::new(),
        };
        b.frame(b"domain", domain.as_bytes());
        b
    }

    fn frame(&mut self, tag: &[u8], bytes: &[u8]) {
        self.hasher.update(tag);
        self.hasher.update(b"\n");
        self.hasher.update(&(bytes.len() as u64).to_le_bytes());
        self.hasher.update(bytes);
    }

    /// Folds one tagged field into the key.
    pub fn field(&mut self, tag: &str, bytes: &[u8]) {
        self.frame(tag.as_bytes(), bytes);
    }

    /// Folds a tagged string field into the key.
    pub fn field_str(&mut self, tag: &str, value: &str) {
        self.frame(tag.as_bytes(), value.as_bytes());
    }

    /// Folds a tagged integer field into the key.
    pub fn field_u64(&mut self, tag: &str, value: u64) {
        self.frame(tag.as_bytes(), &value.to_le_bytes());
    }

    /// Finalizes the digest.
    pub fn finish(self) -> CacheKey {
        CacheKey(self.hasher.finish())
    }
}

/// Hashes `bytes` in one shot (used for per-payload sub-digests).
pub fn sha256(bytes: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(bytes);
    h.finish()
}

// ---------------------------------------------------------------------
// SHA-256 (FIPS 180-4), dependency-free. The workspace deliberately
// vendors no crypto crate; the reference implementation below is small,
// allocation-free, and checked against the standard test vectors.

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

#[derive(Debug, Clone)]
struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    length: u64,
}

impl Sha256 {
    fn new() -> Sha256 {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buffer: [0; 64],
            buffered: 0,
            length: 0,
        }
    }

    fn update(&mut self, mut bytes: &[u8]) {
        self.length = self.length.wrapping_add(bytes.len() as u64);
        if self.buffered > 0 {
            let take = bytes.len().min(64 - self.buffered);
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&bytes[..take]);
            self.buffered += take;
            bytes = &bytes[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while bytes.len() >= 64 {
            let (block, rest) = bytes.split_at(64);
            self.compress(block.try_into().expect("64-byte block"));
            bytes = rest;
        }
        if !bytes.is_empty() {
            self.buffer[..bytes.len()].copy_from_slice(bytes);
            self.buffered = bytes.len();
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte word"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        let add = [a, b, c, d, e, f, g, h];
        for (s, v) in self.state.iter_mut().zip(add) {
            *s = s.wrapping_add(v);
        }
    }

    fn finish(mut self) -> [u8; 32] {
        let bit_len = self.length.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        // Manual length append: `update` would re-count these bytes.
        self.buffer[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buffer;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha256_matches_standard_vectors() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // A million 'a's exercises the multi-block streaming path.
        let mut h = Sha256::new();
        let chunk = [b'a'; 10_000];
        for _ in 0..100 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_equals_one_shot_at_odd_boundaries() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0, 1, 55, 56, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), sha256(&data), "split at {split}");
        }
    }

    #[test]
    fn key_builder_is_framed_not_concatenated() {
        let mut a = KeyBuilder::new("d");
        a.field("x", b"ab");
        a.field("x", b"c");
        let mut b = KeyBuilder::new("d");
        b.field("x", b"a");
        b.field("x", b"bc");
        assert_ne!(a.finish(), b.finish());

        let mut c = KeyBuilder::new("d1");
        c.field("x", b"ab");
        let mut d = KeyBuilder::new("d2");
        d.field("x", b"ab");
        assert_ne!(c.finish(), d.finish(), "domains separate");
    }

    #[test]
    fn hex_round_trips_and_shards() {
        let key = CacheKey::from_bytes(sha256(b"round-trip"));
        let hex = key.to_hex();
        assert_eq!(hex.len(), 64);
        assert_eq!(CacheKey::from_hex(&hex), Some(key));
        assert_eq!(key.shard(), &hex[..2]);
        assert_eq!(CacheKey::from_hex("zz"), None);
        assert_eq!(CacheKey::from_hex(&hex[..62]), None);
        let mut bad = hex.clone();
        bad.replace_range(0..1, "G");
        assert_eq!(CacheKey::from_hex(&bad), None);
        assert_eq!(format!("{key}"), hex);
        assert!(format!("{key:?}").starts_with("CacheKey("));
    }
}
