//! The tier interface: one trait all three tiers implement.

use std::fmt;
use std::io;

use crate::entry::CacheEntry;
use crate::key::CacheKey;

/// Storage occupancy of one tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierUsage {
    /// Entries currently stored.
    pub entries: u64,
    /// Payload bytes currently stored (encoded size for byte-addressed
    /// tiers, output payload size for the in-memory tier).
    pub bytes: u64,
}

/// One cache tier: a keyed store of [`CacheEntry`] values.
///
/// Every implementation is *validating* — `get` returns `Ok(None)`
/// rather than a damaged or mis-filed entry — and *best-effort*: an
/// `Err` means the tier is degraded, never that the caller holds bad
/// data. The tiered front end ([`crate::ContentCache`]) turns errors
/// into metrics and keeps serving from the remaining tiers.
pub trait CacheBackend: Send + Sync + fmt::Debug {
    /// Short stable tier name (`"mem"`, `"disk"`, `"remote"`) used in
    /// metric names and `cache stats` rendering.
    fn tier(&self) -> &'static str;

    /// Looks `key` up. `Ok(None)` covers absent, torn, corrupt, and
    /// mis-filed entries alike.
    fn get(&self, key: &CacheKey) -> io::Result<Option<CacheEntry>>;

    /// Stores `entry` under `key`, durably for persistent tiers.
    /// Overwrites are idempotent: the same key always maps to the same
    /// content.
    fn put(&self, key: &CacheKey, entry: &CacheEntry) -> io::Result<()>;

    /// Current occupancy.
    fn usage(&self) -> io::Result<TierUsage>;
}
