//! Content-addressed tool-execution cache with tiered backends.
//!
//! Hercules re-derives a representation by running its constructing
//! tool; when the tool, its configuration, and every data dependency
//! are byte-identical to a prior run, the result is too. This crate
//! keys that observation: a [`CacheKey`] is a canonical content hash
//! over tool identity + declared-dependency fingerprint + all input
//! payloads, and a [`CacheEntry`] holds the produced outputs. Three
//! tiers sit behind one [`CacheBackend`] trait — a bounded in-memory
//! LRU ([`MemoryTier`]), a crash-safe sharded on-disk store
//! ([`DiskTier`]), and a pluggable remote ([`RemoteCache`] /
//! [`RemoteTier`]) — orchestrated by [`ContentCache`], which the
//! executor consults ahead of tool dispatch.
//!
//! Unlike the executor's per-run invocation dedup (same `InstanceId`s
//! within one dispatch) or the history DB's current-result reuse
//! (same workspace), the content cache is *extensional*: identical
//! bytes hit across sessions, workspaces, and machines.

pub mod backend;
pub mod disk;
pub mod entry;
pub mod key;
pub mod memory;
pub mod remote;
pub mod tiered;

pub use backend::{CacheBackend, TierUsage};
pub use disk::{DiskTier, GcReport};
pub use entry::{crc32, CacheEntry, CachedOutput};
pub use key::{sha256, CacheKey, KeyBuilder};
pub use memory::{MemoryBudget, MemoryTier};
pub use remote::{LocalDirRemote, RemoteCache, RemoteTier};
pub use tiered::{CacheConfig, CacheStats, ContentCache, TierStats};
