//! The remote tier: a pluggable blob store behind a narrow trait.
//!
//! The future `hercd` service will put a real network client here; the
//! engine only needs `fetch`/`store` over opaque, self-validating
//! blobs (the [`CacheEntry`] framing travels as-is, so a lying remote
//! cannot cause a wrong hit — at worst a miss). The in-tree
//! implementation, [`LocalDirRemote`], is a second local directory
//! with injectable latency and failures, which is exactly enough to
//! simulate and benchmark degraded-remote behavior.

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use hercules_sim::{Clock, Fs};

use crate::backend::{CacheBackend, TierUsage};
use crate::entry::CacheEntry;
use crate::key::CacheKey;

/// A remote blob store. Implementations transport encoded
/// [`CacheEntry`] blobs; validation stays with the caller.
pub trait RemoteCache: Send + Sync + std::fmt::Debug {
    /// Human-readable endpoint label for `cache stats`.
    fn label(&self) -> String;

    /// Fetches the blob stored under `key`, if any.
    fn fetch(&self, key: &CacheKey) -> io::Result<Option<Vec<u8>>>;

    /// Stores `blob` under `key` (idempotent; content-addressed).
    fn store(&self, key: &CacheKey, blob: &[u8]) -> io::Result<()>;
}

/// The test/reference remote: a second local directory (flat, one
/// file per key) with injectable per-operation latency and failures.
///
/// Latency goes through the [`Clock`] handle, so under simulation an
/// "800 µs round trip" advances virtual time instead of sleeping —
/// degraded-remote schedules stay deterministic and fast to explore.
#[derive(Debug)]
pub struct LocalDirRemote {
    fs: Fs,
    root: PathBuf,
    clock: Clock,
    /// Injected per-operation round-trip latency.
    latency: Duration,
    /// When `> 0`, every Nth operation fails with a timeout error.
    fail_every: AtomicU64,
    /// Operations attempted (drives `fail_every`).
    ops: AtomicU64,
    /// When set, every operation fails — a partitioned remote.
    offline: AtomicBool,
}

impl LocalDirRemote {
    /// Opens (creating if needed) the remote directory.
    pub fn open(fs: Fs, root: impl Into<PathBuf>, clock: Clock) -> io::Result<LocalDirRemote> {
        let root = root.into();
        fs.create_dir_all(&root)?;
        Ok(LocalDirRemote {
            fs,
            root,
            clock,
            latency: Duration::ZERO,
            fail_every: AtomicU64::new(0),
            ops: AtomicU64::new(0),
            offline: AtomicBool::new(false),
        })
    }

    /// Sets the injected per-operation latency.
    pub fn with_latency(mut self, latency: Duration) -> LocalDirRemote {
        self.latency = latency;
        self
    }

    /// Makes every `every`-th operation fail (0 disables).
    pub fn set_fail_every(&self, every: u64) {
        self.fail_every.store(every, Ordering::Relaxed);
    }

    /// Partitions (or heals) the remote: while offline, every
    /// operation errors after the injected latency — a timeout.
    pub fn set_offline(&self, offline: bool) {
        self.offline.store(offline, Ordering::Relaxed);
    }

    fn blob_path(&self, key: &CacheKey) -> PathBuf {
        self.root.join(key.to_hex())
    }

    /// Models the round trip: pay the latency, then maybe fail.
    fn round_trip(&self) -> io::Result<()> {
        if !self.latency.is_zero() {
            self.clock.sleep(self.latency);
        }
        if self.offline.load(Ordering::Relaxed) {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "remote cache offline",
            ));
        }
        let every = self.fail_every.load(Ordering::Relaxed);
        let op = self.ops.fetch_add(1, Ordering::Relaxed) + 1;
        if every > 0 && op.is_multiple_of(every) {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("injected remote failure (op {op})"),
            ));
        }
        Ok(())
    }
}

impl RemoteCache for LocalDirRemote {
    fn label(&self) -> String {
        format!("dir://{}", self.root.display())
    }

    fn fetch(&self, key: &CacheKey) -> io::Result<Option<Vec<u8>>> {
        self.round_trip()?;
        let path = self.blob_path(key);
        if !self.fs.exists(&path) {
            return Ok(None);
        }
        self.fs.read(&path).map(Some)
    }

    fn store(&self, key: &CacheKey, blob: &[u8]) -> io::Result<()> {
        self.round_trip()?;
        let path = self.blob_path(key);
        if self.fs.exists(&path) {
            return Ok(());
        }
        let tmp = self.root.join(format!("{}.tmp", key.to_hex()));
        {
            let mut file = self.fs.create_truncate(&tmp)?;
            file.write_all(blob)?;
            file.sync_all()?;
        }
        self.fs.rename(&tmp, &path)?;
        self.fs.sync_dir(&self.root)?;
        Ok(())
    }
}

/// Adapts a [`RemoteCache`] to the common [`CacheBackend`] surface:
/// encodes on store, decodes and key-checks on fetch.
#[derive(Debug)]
pub struct RemoteTier {
    remote: std::sync::Arc<dyn RemoteCache>,
}

impl RemoteTier {
    /// Wraps a remote endpoint.
    pub fn new(remote: std::sync::Arc<dyn RemoteCache>) -> RemoteTier {
        RemoteTier { remote }
    }

    /// The endpoint's label.
    pub fn label(&self) -> String {
        self.remote.label()
    }
}

impl CacheBackend for RemoteTier {
    fn tier(&self) -> &'static str {
        "remote"
    }

    fn get(&self, key: &CacheKey) -> io::Result<Option<CacheEntry>> {
        match self.remote.fetch(key)? {
            // An undecodable or mis-filed blob is a miss, not an error:
            // the remote is untrusted by construction.
            Some(blob) => Ok(CacheEntry::decode_for(&blob, key)),
            None => Ok(None),
        }
    }

    fn put(&self, key: &CacheKey, entry: &CacheEntry) -> io::Result<()> {
        self.remote.store(key, &entry.encode())
    }

    fn usage(&self) -> io::Result<TierUsage> {
        // Remotes do not expose occupancy; report empty rather than
        // scanning someone else's store.
        Ok(TierUsage::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::CachedOutput;
    use crate::key::sha256;
    use std::sync::Arc;

    fn entry(tag: u8) -> (CacheKey, CacheEntry) {
        let key = CacheKey::from_bytes(sha256(&[tag]));
        let entry = CacheEntry {
            key,
            tool: "T".into(),
            created_ms: u64::from(tag),
            outputs: vec![CachedOutput {
                entity: "E".into(),
                name: String::new(),
                data: vec![tag; 8],
            }],
        };
        (key, entry)
    }

    fn sim_remote(latency: Duration) -> (hercules_sim::SimEnv, RemoteTier, Arc<LocalDirRemote>) {
        let sim = hercules_sim::SimEnv::new(7);
        let remote = Arc::new(
            LocalDirRemote::open(sim.fs(), "/remote", sim.clock())
                .expect("open")
                .with_latency(latency),
        );
        (sim, RemoteTier::new(remote.clone()), remote)
    }

    #[test]
    fn round_trips_blobs() {
        let (_sim, tier, remote) = sim_remote(Duration::ZERO);
        let (key, e) = entry(1);
        assert_eq!(tier.get(&key).unwrap(), None);
        tier.put(&key, &e).unwrap();
        assert_eq!(tier.get(&key).unwrap(), Some(e));
        assert!(remote.label().starts_with("dir://"));
    }

    #[test]
    fn latency_advances_the_virtual_clock() {
        let (sim, tier, _remote) = sim_remote(Duration::from_micros(800));
        let (key, e) = entry(2);
        let before = sim.clock().now();
        tier.put(&key, &e).unwrap();
        tier.get(&key).unwrap().expect("hit");
        let elapsed = sim.clock().since(before);
        assert_eq!(elapsed, Duration::from_micros(1600), "two round trips");
    }

    #[test]
    fn injected_failures_and_partitions_error() {
        let (_sim, tier, remote) = sim_remote(Duration::ZERO);
        let (key, e) = entry(3);
        remote.set_fail_every(2);
        tier.put(&key, &e).unwrap();
        assert!(tier.get(&key).is_err(), "second op fails");
        assert!(tier.get(&key).unwrap().is_some(), "third succeeds");
        remote.set_fail_every(0);
        remote.set_offline(true);
        assert!(tier.get(&key).is_err());
        remote.set_offline(false);
        assert!(tier.get(&key).unwrap().is_some());
    }

    #[test]
    fn corrupt_remote_blob_is_a_miss() {
        let (sim, tier, _remote) = sim_remote(Duration::ZERO);
        let (key, e) = entry(4);
        tier.put(&key, &e).unwrap();
        let path = std::path::Path::new("/remote").join(key.to_hex());
        assert!(sim.fs_state().corrupt_file(&path, 15, 0x80));
        assert_eq!(tier.get(&key).unwrap(), None);
    }
}
