//! The in-memory tier: a bounded LRU over decoded entries.

use std::collections::HashMap;
use std::io;
use std::sync::Mutex;

use crate::backend::{CacheBackend, TierUsage};
use crate::entry::CacheEntry;
use crate::key::CacheKey;

/// Size bounds for [`MemoryTier`].
#[derive(Debug, Clone, Copy)]
pub struct MemoryBudget {
    /// Maximum total output payload bytes held.
    pub bytes: u64,
    /// Maximum entry count.
    pub entries: usize,
}

impl Default for MemoryBudget {
    fn default() -> MemoryBudget {
        MemoryBudget {
            bytes: 64 << 20,
            entries: 4096,
        }
    }
}

#[derive(Debug, Default)]
struct MemState {
    map: HashMap<CacheKey, (u64, CacheEntry)>,
    bytes: u64,
    tick: u64,
}

/// The first tier: entries live decoded in memory, a `get` is a hash
/// probe, and a budget caps residency — least-recently-used entries
/// leave first. Eviction here loses nothing durable; the same key can
/// be re-faulted from the disk or remote tiers.
#[derive(Debug)]
pub struct MemoryTier {
    budget: MemoryBudget,
    state: Mutex<MemState>,
}

impl MemoryTier {
    /// An empty tier under `budget`.
    pub fn new(budget: MemoryBudget) -> MemoryTier {
        MemoryTier {
            budget,
            state: Mutex::new(MemState::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl CacheBackend for MemoryTier {
    fn tier(&self) -> &'static str {
        "mem"
    }

    fn get(&self, key: &CacheKey) -> io::Result<Option<CacheEntry>> {
        let mut state = self.lock();
        state.tick += 1;
        let tick = state.tick;
        Ok(state.map.get_mut(key).map(|(stamp, entry)| {
            *stamp = tick;
            entry.clone()
        }))
    }

    fn put(&self, key: &CacheKey, entry: &CacheEntry) -> io::Result<()> {
        let size = entry.payload_bytes();
        if size > self.budget.bytes {
            // Larger than the whole budget: admitting it would evict
            // everything for one entry that cannot stay anyway.
            return Ok(());
        }
        let mut state = self.lock();
        state.tick += 1;
        let tick = state.tick;
        if let Some((_, old)) = state.map.insert(*key, (tick, entry.clone())) {
            state.bytes -= old.payload_bytes();
        }
        state.bytes += size;
        while state.bytes > self.budget.bytes || state.map.len() > self.budget.entries {
            // O(n) victim scan; n is budget-bounded and eviction is
            // off the lookup fast path.
            let victim = state
                .map
                .iter()
                .filter(|(k, _)| *k != key)
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            if let Some((_, old)) = state.map.remove(&victim) {
                state.bytes -= old.payload_bytes();
            }
        }
        Ok(())
    }

    fn usage(&self) -> io::Result<TierUsage> {
        let state = self.lock();
        Ok(TierUsage {
            entries: state.map.len() as u64,
            bytes: state.bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::CachedOutput;
    use crate::key::sha256;

    fn entry(tag: u8, size: usize) -> (CacheKey, CacheEntry) {
        let key = CacheKey::from_bytes(sha256(&[tag]));
        let entry = CacheEntry {
            key,
            tool: "T".into(),
            created_ms: u64::from(tag),
            outputs: vec![CachedOutput {
                entity: "E".into(),
                name: String::new(),
                data: vec![tag; size],
            }],
        };
        (key, entry)
    }

    #[test]
    fn stores_and_serves() {
        let tier = MemoryTier::new(MemoryBudget::default());
        let (key, e) = entry(1, 10);
        assert_eq!(tier.get(&key).unwrap(), None);
        tier.put(&key, &e).unwrap();
        assert_eq!(tier.get(&key).unwrap(), Some(e));
        let usage = tier.usage().unwrap();
        assert_eq!((usage.entries, usage.bytes), (1, 10));
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        let tier = MemoryTier::new(MemoryBudget {
            bytes: 30,
            entries: 100,
        });
        let (k1, e1) = entry(1, 10);
        let (k2, e2) = entry(2, 10);
        let (k3, e3) = entry(3, 10);
        tier.put(&k1, &e1).unwrap();
        tier.put(&k2, &e2).unwrap();
        tier.put(&k3, &e3).unwrap();
        // Touch k1 so k2 is the LRU victim of the next insert.
        tier.get(&k1).unwrap().expect("resident");
        let (k4, e4) = entry(4, 10);
        tier.put(&k4, &e4).unwrap();
        assert!(tier.get(&k1).unwrap().is_some());
        assert!(tier.get(&k2).unwrap().is_none(), "LRU evicted");
        assert!(tier.get(&k3).unwrap().is_some());
        assert!(tier.get(&k4).unwrap().is_some());
        assert_eq!(tier.usage().unwrap().bytes, 30);
    }

    #[test]
    fn entry_budget_and_oversized_inserts() {
        let tier = MemoryTier::new(MemoryBudget {
            bytes: 1000,
            entries: 2,
        });
        let (k1, e1) = entry(1, 1);
        let (k2, e2) = entry(2, 1);
        let (k3, e3) = entry(3, 1);
        tier.put(&k1, &e1).unwrap();
        tier.put(&k2, &e2).unwrap();
        tier.put(&k3, &e3).unwrap();
        assert_eq!(tier.usage().unwrap().entries, 2);
        assert!(tier.get(&k3).unwrap().is_some(), "newest stays");
        // An entry bigger than the whole budget is not admitted (and
        // does not flush the tier).
        let (big_k, big_e) = entry(9, 2000);
        tier.put(&big_k, &big_e).unwrap();
        assert!(tier.get(&big_k).unwrap().is_none());
        assert_eq!(tier.usage().unwrap().entries, 2);
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let tier = MemoryTier::new(MemoryBudget::default());
        let (k, e) = entry(1, 10);
        tier.put(&k, &e).unwrap();
        let (_, bigger) = entry(1, 20);
        tier.put(&k, &bigger).unwrap();
        let usage = tier.usage().unwrap();
        assert_eq!((usage.entries, usage.bytes), (1, 20));
    }
}
