//! Whole-session persistence: schema, history and flow catalog bundled
//! into one serializable document.
//!
//! The Odyssey framework kept all of this in its database; here a
//! [`SessionSpec`] is the JSON equivalent. Loading re-validates the
//! schema, replays the history through the checked entry points, and
//! re-attaches the tool registry (code cannot be serialized — the
//! caller supplies the encapsulations, usually
//! [`encaps::odyssey_registry`](crate::encaps::odyssey_registry)).

use std::sync::Arc;

use hercules_exec::EncapsulationRegistry;
use hercules_flow::FlowCatalog;
use hercules_history::HistorySpec;
use hercules_schema::SchemaSpec;
use serde::{Deserialize, Serialize};

use crate::error::HerculesError;
use crate::session::Session;

/// A complete serializable snapshot of a session's durable state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSpec {
    /// The task schema (declarative form; re-validated on load).
    pub schema: SchemaSpec,
    /// The design history (replayed on load).
    pub history: HistorySpec,
    /// The stored flow library.
    pub catalog: FlowCatalog,
    /// The user the session belonged to.
    pub user: String,
}

impl SessionSpec {
    /// Captures a session.
    pub fn from_session(session: &Session) -> SessionSpec {
        SessionSpec {
            schema: session.schema().to_spec(),
            history: HistorySpec::from_db(session.db()),
            catalog: session.catalog().clone(),
            user: session.user().to_owned(),
        }
    }

    /// Restores a session, attaching the given tool registry.
    ///
    /// # Errors
    ///
    /// Returns schema/history errors for corrupt documents.
    pub fn restore(&self, registry: EncapsulationRegistry) -> Result<Session, HerculesError> {
        let schema = Arc::new(self.schema.build()?);
        let mut session = Session::new(schema.clone(), registry, &self.user);
        *session.db_mut() = self.history.load(schema)?;
        *session.catalog_mut() = self.catalog.clone();
        Ok(session)
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("session spec serializes")
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Returns a parse error wrapped as [`HerculesError::BadCommand`]
    /// style schema error for malformed documents.
    pub fn from_json(json: &str) -> Result<SessionSpec, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encaps::odyssey_registry;

    #[test]
    fn whole_session_round_trips() {
        let mut session = Session::odyssey("jbb");
        // Do some work so there is real state.
        let layout = session.start_from_goal("Layout").expect("starts");
        session.expand(layout).expect("expands");
        let netlist = session.flow().expect("flow").data_inputs_of(layout)[0];
        session
            .specialize(netlist, "EditedNetlist")
            .expect("subtype");
        session.expand(netlist).expect("expands");
        session.bind_latest().expect("binds");
        session.run().expect("runs");
        session
            .store_flow("place-flow", "the placement flow")
            .expect("stores");

        let spec = SessionSpec::from_session(&session);
        let json = spec.to_json();
        let back = SessionSpec::from_json(&json).expect("parses");
        assert_eq!(back, spec);

        let restored = back
            .restore(odyssey_registry(session.schema()))
            .expect("restores");
        assert_eq!(restored.db().len(), session.db().len());
        assert_eq!(restored.user(), "jbb");
        assert_eq!(restored.catalog().names(), vec!["place-flow"]);

        // The restored session is fully operational: replay the stored
        // flow and run it against the restored history.
        let mut restored = restored;
        restored
            .start_from_plan("place-flow")
            .expect("instantiates");
        restored.bind_latest().expect("binds");
        restored.run().expect("runs on restored state");
    }

    #[test]
    fn corrupt_documents_are_rejected() {
        assert!(SessionSpec::from_json("{").is_err());
        let spec = SessionSpec {
            schema: SchemaSpec::new(),
            history: HistorySpec::default(),
            catalog: FlowCatalog::new(),
            user: "x".into(),
        };
        // Empty schema loads fine; history referencing unknown entities
        // would not.
        assert!(spec.restore(EncapsulationRegistry::new()).is_ok());
    }
}
