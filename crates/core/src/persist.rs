//! Whole-session persistence: schema, history, flow catalog, the flow
//! under construction, bindings, event log and last execution report
//! bundled into one serializable document.
//!
//! The Odyssey framework kept all of this in its database; here a
//! [`SessionSpec`] is the JSON equivalent. Loading re-validates the
//! schema, replays the history through the checked entry points,
//! replays the flow-construction tape through the normal [`Session`]
//! methods, and re-attaches the tool registry (code cannot be
//! serialized — the caller supplies the encapsulations, usually
//! [`encaps::odyssey_registry`](crate::encaps::odyssey_registry)).
//!
//! # Why a construction tape?
//!
//! [`hercules_flow::FlowSpec`] compacts tombstones away, so capturing a
//! mid-construction flow structurally would renumber node ids and break
//! every persisted reference to them (bindings, journal frames, task
//! records). Instead the session records the operations that built the
//! flow — the [`FlowOp`] tape — and a restore replays them, reproducing
//! the exact node ids including any tombstones left by `unexpand`.

use std::sync::Arc;
use std::time::Duration;

use hercules_exec::{
    Binding, EncapsulationRegistry, ExecError, ExecReport, TaskAction, TaskRecord,
};
use hercules_flow::{Expansion, FlowCatalog, FlowSpec, NodeId};
use hercules_history::{HistorySpec, InstanceId};
use hercules_schema::{SchemaSpec, TaskSchema};
use serde::{Deserialize, Serialize};

use crate::error::HerculesError;
use crate::session::{ExecEvent, Session};

/// One recorded flow-construction step (the session's tape).
///
/// Node references are raw [`NodeId`] indexes, valid because replay
/// reproduces ids deterministically — tombstones included.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FlowOp {
    /// Seed one entity (goal-, tool-, and data-based starts).
    Seed {
        /// Entity type name.
        entity: String,
    },
    /// Install an externally built flow (plan-based starts, view flows).
    /// The structure is captured at install time so later catalog edits
    /// cannot change what replay rebuilds.
    Install {
        /// The installed flow's structure.
        spec: FlowSpec,
    },
    /// Expand a node, with the [`Expansion`] options by entity name.
    Expand {
        /// Target node index.
        node: usize,
        /// Optional dependencies included, by source entity name.
        optional: Vec<String>,
        /// Explicit node reuse: (source entity name, reused node index).
        reuse: Vec<(String, usize)>,
        /// Whether opportunistic reuse of compatible nodes was enabled.
        reuse_existing: bool,
    },
    /// Expand downward towards a consumer entity.
    ExpandDown {
        /// Source node index.
        node: usize,
        /// Consumer entity name.
        consumer: String,
    },
    /// Expand everything reachable from a node.
    ExpandAll {
        /// Root node index.
        node: usize,
    },
    /// Specialize an abstract node to a subtype.
    Specialize {
        /// Target node index.
        node: usize,
        /// Subtype entity name.
        subtype: String,
    },
    /// Unexpand a node (leaves tombstones — the reason this tape
    /// exists).
    Unexpand {
        /// Target node index.
        node: usize,
    },
}

impl FlowOp {
    /// Replays this step through the session's normal methods (which
    /// re-record it on the session's own tape).
    ///
    /// # Errors
    ///
    /// The same validation errors the original operation could raise;
    /// on a faithfully persisted tape these indicate corruption.
    pub fn replay(&self, session: &mut Session) -> Result<(), HerculesError> {
        match self {
            FlowOp::Seed { entity } => {
                session.start_from_goal(entity)?;
            }
            FlowOp::Install { spec } => {
                let flow = spec.instantiate(session.schema().clone())?;
                session.install_flow(flow);
            }
            FlowOp::Expand {
                node,
                optional,
                reuse,
                reuse_existing,
            } => {
                let schema = session.schema().clone();
                let mut options = Expansion::new();
                for name in optional {
                    options = options.with_optional(schema.require(name)?);
                }
                for (name, reused) in reuse {
                    options = options.reusing(schema.require(name)?, NodeId::from_index(*reused));
                }
                if *reuse_existing {
                    options = options.reuse_existing();
                }
                session.expand_with(NodeId::from_index(*node), &options)?;
            }
            FlowOp::ExpandDown { node, consumer } => {
                session.expand_down(NodeId::from_index(*node), consumer)?;
            }
            FlowOp::ExpandAll { node } => {
                session.expand_all(NodeId::from_index(*node))?;
            }
            FlowOp::Specialize { node, subtype } => {
                session.specialize(NodeId::from_index(*node), subtype)?;
            }
            FlowOp::Unexpand { node } => {
                session.unexpand(NodeId::from_index(*node))?;
            }
        }
        Ok(())
    }
}

/// Serializable form of one [`TaskAction`]. Failures are persisted as
/// rendered text and restored as [`ExecError::Restored`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskActionSpec {
    /// The tool ran this many times.
    Ran {
        /// Number of tool invocations.
        runs: usize,
    },
    /// Served entirely from cache.
    Cached,
    /// Failed permanently; the error rendered to text.
    Failed {
        /// Rendered error message.
        error: String,
    },
    /// Skipped because something upstream failed.
    Skipped,
}

impl TaskActionSpec {
    fn of(action: &TaskAction) -> TaskActionSpec {
        match action {
            TaskAction::Ran { runs } => TaskActionSpec::Ran { runs: *runs },
            TaskAction::Cached => TaskActionSpec::Cached,
            TaskAction::Failed { error } => TaskActionSpec::Failed {
                error: error.to_string(),
            },
            TaskAction::Skipped => TaskActionSpec::Skipped,
        }
    }

    fn restore(&self) -> TaskAction {
        match self {
            TaskActionSpec::Ran { runs } => TaskAction::Ran { runs: *runs },
            TaskActionSpec::Cached => TaskAction::Cached,
            TaskActionSpec::Failed { error } => TaskAction::Failed {
                error: ExecError::Restored {
                    message: error.clone(),
                },
            },
            TaskActionSpec::Skipped => TaskAction::Skipped,
        }
    }
}

/// Serializable form of one [`TaskRecord`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskRecordSpec {
    /// Output node indexes of the subtask.
    pub outputs: Vec<usize>,
    /// What happened.
    pub action: TaskActionSpec,
    /// Largest number of attempts any invocation needed.
    pub attempts: u32,
    /// Wall-clock duration, in milliseconds.
    pub duration_ms: u64,
    /// Start offset from the beginning of the execution, in
    /// microseconds. Defaults to 0 so journals written before this
    /// field existed still load (their replayed Gantt collapses onto
    /// the origin, which is the honest rendering of missing data).
    #[serde(default)]
    pub started_us: u64,
}

impl TaskRecordSpec {
    fn of(record: &TaskRecord) -> TaskRecordSpec {
        TaskRecordSpec {
            outputs: record.outputs.iter().map(|n| n.index()).collect(),
            action: TaskActionSpec::of(&record.action),
            attempts: record.attempts,
            duration_ms: record.duration.as_millis() as u64,
            started_us: record.started.as_micros() as u64,
        }
    }

    fn restore(&self) -> TaskRecord {
        TaskRecord {
            outputs: self
                .outputs
                .iter()
                .map(|&i| NodeId::from_index(i))
                .collect(),
            action: self.action.restore(),
            attempts: self.attempts,
            duration: Duration::from_millis(self.duration_ms),
            started: Duration::from_micros(self.started_us),
        }
    }
}

/// Serializable form of an [`ExecReport`]: produced instances per node
/// (extensionally, by raw id) plus the subtask records.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecReportSpec {
    /// `(node index, instance raw ids)` pairs, sorted by node.
    pub produced: Vec<(usize, Vec<u64>)>,
    /// Subtask records in execution order.
    pub tasks: Vec<TaskRecordSpec>,
}

impl ExecReportSpec {
    /// Captures a report.
    pub fn from_report(report: &ExecReport) -> ExecReportSpec {
        let mut produced: Vec<(usize, Vec<u64>)> = report
            .produced()
            .map(|(node, instances)| {
                (
                    node.index(),
                    instances.iter().map(|i| i.raw()).collect::<Vec<u64>>(),
                )
            })
            .collect();
        produced.sort();
        ExecReportSpec {
            produced,
            tasks: report.tasks.iter().map(TaskRecordSpec::of).collect(),
        }
    }

    /// Reconstructs the report. Failure records come back as
    /// [`ExecError::Restored`]; durations are millisecond-truncated.
    pub fn restore(&self) -> ExecReport {
        let produced = self
            .produced
            .iter()
            .map(|(node, instances)| {
                (
                    NodeId::from_index(*node),
                    instances
                        .iter()
                        .map(|&raw| InstanceId::from_raw(raw))
                        .collect(),
                )
            })
            .collect();
        ExecReport::from_parts(
            produced,
            self.tasks.iter().map(TaskRecordSpec::restore).collect(),
        )
    }
}

/// A complete serializable snapshot of a session's durable state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSpec {
    /// The task schema (declarative form; re-validated on load).
    pub schema: SchemaSpec,
    /// The design history (replayed on load).
    pub history: HistorySpec,
    /// The stored flow library.
    pub catalog: FlowCatalog,
    /// The user the session belonged to.
    pub user: String,
    /// The flow under construction, as its construction tape.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub flow_ops: Vec<FlowOp>,
    /// Leaf bindings, extensionally: `(node index, instance raw ids)`.
    /// Extensional because `bind_latest` depends on database state.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub binding: Vec<(usize, Vec<u64>)>,
    /// The execution event log.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub events: Vec<ExecEvent>,
    /// The last execution report, enabling [`Session::resume`] after a
    /// restore.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub last_exec: Option<ExecReportSpec>,
}

impl SessionSpec {
    /// Captures a session.
    pub fn from_session(session: &Session) -> SessionSpec {
        SessionSpec {
            schema: session.schema().to_spec(),
            history: HistorySpec::from_db(session.db()),
            catalog: session.catalog().clone(),
            user: session.user().to_owned(),
            flow_ops: session.flow_ops().to_vec(),
            binding: session
                .binding()
                .iter()
                .map(|(node, instances)| {
                    (
                        node.index(),
                        instances.iter().map(|i| i.raw()).collect::<Vec<u64>>(),
                    )
                })
                .collect(),
            events: session.events().to_vec(),
            last_exec: session.last_report().map(ExecReportSpec::from_report),
        }
    }

    /// Restores a session, attaching the given tool registry.
    ///
    /// # Errors
    ///
    /// Returns schema/history/flow errors for corrupt documents.
    pub fn restore(&self, registry: EncapsulationRegistry) -> Result<Session, HerculesError> {
        self.restore_with(|_| registry)
    }

    /// Restores a session, building the tool registry from the restored
    /// schema — the form needed when opening from disk, where no schema
    /// exists until this document is loaded.
    ///
    /// # Errors
    ///
    /// Returns schema/history/flow errors for corrupt documents.
    pub fn restore_with<F>(&self, registry_for: F) -> Result<Session, HerculesError>
    where
        F: FnOnce(&Arc<TaskSchema>) -> EncapsulationRegistry,
    {
        let schema = Arc::new(self.schema.build()?);
        let registry = registry_for(&schema);
        let mut session = Session::new(schema.clone(), registry, &self.user);
        *session.db_mut() = self.history.load(schema)?;
        *session.catalog_mut() = self.catalog.clone();
        for op in &self.flow_ops {
            op.replay(&mut session)?;
        }
        let mut binding = Binding::new();
        for (node, instances) in &self.binding {
            let ids: Vec<InstanceId> = instances
                .iter()
                .map(|&raw| InstanceId::from_raw(raw))
                .collect();
            binding.bind_many(NodeId::from_index(*node), &ids);
        }
        session.set_binding(binding);
        session.set_events(self.events.clone());
        session.set_last_report(self.last_exec.as_ref().map(ExecReportSpec::restore));
        Ok(session)
    }

    /// Serializes to JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying serializer error instead of panicking.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Returns a parse error for malformed documents.
    pub fn from_json(json: &str) -> Result<SessionSpec, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encaps::odyssey_registry;

    #[test]
    fn whole_session_round_trips() {
        let mut session = Session::odyssey("jbb");
        // Do some work so there is real state.
        let layout = session.start_from_goal("Layout").expect("starts");
        session.expand(layout).expect("expands");
        let netlist = session.flow().expect("flow").data_inputs_of(layout)[0];
        session
            .specialize(netlist, "EditedNetlist")
            .expect("subtype");
        session.expand(netlist).expect("expands");
        session.bind_latest().expect("binds");
        session.run().expect("runs");
        session
            .store_flow("place-flow", "the placement flow")
            .expect("stores");

        let spec = SessionSpec::from_session(&session);
        let json = spec.to_json().expect("serializes");
        let back = SessionSpec::from_json(&json).expect("parses");
        assert_eq!(back, spec);

        let restored = back
            .restore(odyssey_registry(session.schema()))
            .expect("restores");
        assert_eq!(restored.db().len(), session.db().len());
        assert_eq!(restored.user(), "jbb");
        assert_eq!(restored.catalog().names(), vec!["place-flow"]);

        // The in-progress flow, binding, events and last report all
        // survived — the restored session IS the captured one.
        assert_eq!(
            restored.flow().expect("flow").len(),
            session.flow().expect("flow").len()
        );
        assert_eq!(restored.binding(), session.binding());
        assert_eq!(restored.events(), session.events());
        assert!(restored.last_report().expect("report").is_complete());
        assert_eq!(
            SessionSpec::from_session(&restored),
            spec,
            "re-capturing the restored session reproduces the document"
        );

        // The restored session is fully operational: replay the stored
        // flow and run it against the restored history.
        let mut restored = restored;
        restored
            .start_from_plan("place-flow")
            .expect("instantiates");
        restored.bind_latest().expect("binds");
        restored.run().expect("runs on restored state");
    }

    #[test]
    fn tombstoned_flow_round_trips_with_stable_node_ids() {
        let mut session = Session::odyssey("jbb");
        let layout = session.start_from_goal("Layout").expect("starts");
        session.expand(layout).expect("expands"); // n1..n3
        session.unexpand(layout).expect("unexpands"); // tombstones n1..n3
        let perf = session.start_from_goal("Performance").expect("seeds");
        assert_eq!(perf.index(), 4, "allocated after the tombstones");
        session.expand(perf).expect("expands");
        session.bind_latest().expect("binds");

        let spec = SessionSpec::from_session(&session);
        let restored = spec
            .restore(odyssey_registry(session.schema()))
            .expect("restores");
        // Same node ids — including the gap left by the tombstones.
        let live: Vec<usize> = restored
            .flow()
            .expect("flow")
            .node_ids()
            .map(|n| n.index())
            .collect();
        let original: Vec<usize> = session
            .flow()
            .expect("flow")
            .node_ids()
            .map(|n| n.index())
            .collect();
        assert_eq!(live, original);
        assert_eq!(restored.binding(), session.binding());
    }

    #[test]
    fn partial_failure_report_survives_restore() {
        use hercules_exec::{FailurePolicy, FaultPlan, FaultyEncapsulation};

        let mut session = Session::odyssey("jbb");
        session.executor_mut().options_mut().failure = FailurePolicy::ContinueDisjoint;
        // Make the placer fail so the report carries Failed + Skipped.
        let schema = session.schema().clone();
        let placer = schema.require("Placer").expect("known");
        let inner = session
            .executor_mut()
            .registry()
            .lookup(&schema, placer)
            .expect("registered")
            .clone();
        session.executor_mut().registry_mut().register(
            placer,
            FaultyEncapsulation::wrap(inner, FaultPlan::AlwaysPanic),
        );

        let layout = session.start_from_goal("Layout").expect("starts");
        session.expand(layout).expect("expands");
        let netlist = session.flow().expect("flow").data_inputs_of(layout)[0];
        session.specialize(netlist, "EditedNetlist").expect("ok");
        session.expand(netlist).expect("expands");
        session.bind_latest().expect("binds");
        session.run().expect("continues past the failure");
        assert!(!session.last_report().expect("report").is_complete());

        let spec = SessionSpec::from_session(&session);
        let restored = spec
            .restore(odyssey_registry(session.schema()))
            .expect("restores");
        let report = restored.last_report().expect("report restored");
        assert!(!report.is_complete());
        assert_eq!(report.failed(), session.last_report().unwrap().failed());
        let restored_error = report.first_error().expect("failure kept");
        assert!(
            matches!(restored_error, ExecError::Restored { .. }),
            "{restored_error:?}"
        );
        assert!(restored_error.to_string().contains("injected"));
    }

    #[test]
    fn corrupt_documents_are_rejected() {
        assert!(SessionSpec::from_json("{").is_err());
        let spec = SessionSpec {
            schema: SchemaSpec::new(),
            history: HistorySpec::default(),
            catalog: FlowCatalog::new(),
            user: "x".into(),
            flow_ops: Vec::new(),
            binding: Vec::new(),
            events: Vec::new(),
            last_exec: None,
        };
        // Empty schema loads fine; history referencing unknown entities
        // would not.
        assert!(spec.restore(EncapsulationRegistry::new()).is_ok());

        // A tape referencing an unknown entity is rejected on restore.
        let mut bad = spec;
        bad.flow_ops.push(FlowOp::Seed {
            entity: "Ghost".into(),
        });
        assert!(bad.restore(EncapsulationRegistry::new()).is_err());
    }
}
