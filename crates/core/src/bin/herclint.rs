//! `herclint` — whole-workspace static analyzer for the Hercules
//! reproduction.
//!
//! ```text
//! herclint --schema schema.json [--flow flow.json]   lint a schema (and a flow against it)
//! herclint --workspace DIR                           lint a saved durable workspace
//! herclint --conflicts A.json B.json                 predict conflicts between two sessions
//! herclint --fixtures                                lint every built-in fixture
//! herclint --list-passes                             print the pass registry
//!
//! options:
//!   --format text|json     output format (default text; json includes per-pass timings)
//!   --suppress CODES       comma-separated codes to silence (repeatable)
//!   --fail-on SEV          exit 1 at or above error|warn|info; `never` always exits 0
//!                          (default error)
//! ```
//!
//! Exit codes: 0 clean (below the `--fail-on` threshold), 1 findings at
//! or above the threshold, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use hercules::audit::{lint_workspace, predict_conflicts};
use hercules::SessionSpec;
use hercules_analyze::{
    lint_flow_timed, lint_schema_spec, lint_schema_timed, render_passes, Diagnostics,
    JsonPassTiming, JsonReport, LintConfig, PassTiming, Severity,
};
use hercules_flow::{fixtures as flow_fixtures, FlowSpec, TaskGraph};
use hercules_schema::{fixtures as schema_fixtures, SchemaSpec, TaskSchema};

struct Args {
    schema: Option<PathBuf>,
    flow: Option<PathBuf>,
    workspace: Option<PathBuf>,
    conflicts: Option<(PathBuf, PathBuf)>,
    fixtures: bool,
    list_passes: bool,
    json: bool,
    config: LintConfig,
    fail_on: Option<Severity>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        schema: None,
        flow: None,
        workspace: None,
        conflicts: None,
        fixtures: false,
        list_passes: false,
        json: false,
        config: LintConfig::new(),
        fail_on: Some(Severity::Error),
    };
    let mut it = argv.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<'_, String>| -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--schema" => args.schema = Some(PathBuf::from(value("--schema", &mut it)?)),
            "--flow" => args.flow = Some(PathBuf::from(value("--flow", &mut it)?)),
            "--workspace" => args.workspace = Some(PathBuf::from(value("--workspace", &mut it)?)),
            "--conflicts" => {
                let a = PathBuf::from(value("--conflicts", &mut it)?);
                let b = PathBuf::from(value("--conflicts", &mut it)?);
                args.conflicts = Some((a, b));
            }
            "--fixtures" => args.fixtures = true,
            "--list-passes" => args.list_passes = true,
            "--format" => match value("--format", &mut it)?.as_str() {
                "text" => args.json = false,
                "json" => args.json = true,
                other => return Err(format!("unknown format `{other}` (text|json)")),
            },
            "--suppress" => {
                for code in value("--suppress", &mut it)?.split(',') {
                    let code = code.trim();
                    if !code.is_empty() {
                        args.config = std::mem::take(&mut args.config).suppressing(code);
                    }
                }
            }
            "--fail-on" => {
                let v = value("--fail-on", &mut it)?;
                args.fail_on = match v.as_str() {
                    "never" => None,
                    other => Some(
                        Severity::parse(other)
                            .ok_or_else(|| format!("unknown severity `{other}`"))?,
                    ),
                };
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.flow.is_some() && args.schema.is_none() {
        return Err(String::from("--flow requires --schema"));
    }
    if !args.fixtures
        && !args.list_passes
        && args.schema.is_none()
        && args.workspace.is_none()
        && args.conflicts.is_none()
    {
        return Err(String::from(
            "nothing to lint: pass --schema, --workspace, --conflicts, --fixtures, \
             or --list-passes",
        ));
    }
    Ok(args)
}

const USAGE: &str = "usage: herclint [--schema FILE [--flow FILE]] [--workspace DIR]
                [--conflicts FILE FILE] [--fixtures] [--list-passes]
                [--format text|json] [--suppress CODES]
                [--fail-on error|warn|info|never]";

/// One lint target: a name, its collected findings, and its per-pass
/// timings (empty for targets the timed runner does not cover).
type Target = (String, Diagnostics, Vec<PassTiming>);

/// The real monotonic clock the timed runner gets. (The runner itself
/// never reads time; binaries are the only place wall clocks enter.)
fn wall_clock() -> impl FnMut() -> u64 {
    let start = Instant::now();
    move || start.elapsed().as_nanos() as u64
}

fn read_session_spec(path: &std::path::Path) -> Result<SessionSpec, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    SessionSpec::from_json(&text)
        .map_err(|e| format!("{} is not a session spec: {e}", path.display()))
}

fn lint_file_targets(args: &Args, targets: &mut Vec<Target>) -> Result<(), String> {
    if let Some(path) = &args.schema {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let spec: SchemaSpec = serde_json::from_str(&text)
            .map_err(|e| format!("{} is not a schema spec: {e}", path.display()))?;
        let mut out = Diagnostics::with_config(args.config.clone());
        let schema = lint_schema_spec(&spec, &mut out);
        targets.push((path.display().to_string(), out, Vec::new()));
        if let Some(flow_path) = &args.flow {
            let Some(schema) = schema else {
                return Err(format!(
                    "cannot lint {}: the schema did not build",
                    flow_path.display()
                ));
            };
            let text = std::fs::read_to_string(flow_path)
                .map_err(|e| format!("cannot read {}: {e}", flow_path.display()))?;
            let spec: FlowSpec = serde_json::from_str(&text)
                .map_err(|e| format!("{} is not a flow spec: {e}", flow_path.display()))?;
            let flow = spec
                .instantiate(Arc::new(schema))
                .map_err(|e| format!("{} does not instantiate: {e}", flow_path.display()))?;
            let mut out = Diagnostics::with_config(args.config.clone());
            let mut clock = wall_clock();
            let timings = lint_flow_timed(&flow, &mut out, &mut clock);
            targets.push((flow_path.display().to_string(), out, timings));
        }
    }
    if let Some(dir) = &args.workspace {
        let mut out = Diagnostics::with_config(args.config.clone());
        lint_workspace(dir, &mut out);
        targets.push((dir.display().to_string(), out, Vec::new()));
    }
    if let Some((a_path, b_path)) = &args.conflicts {
        let a = read_session_spec(a_path)?;
        let b = read_session_spec(b_path)?;
        let mut out = Diagnostics::with_config(args.config.clone());
        predict_conflicts(&a, &b, &mut out);
        let name = format!("conflicts:{}+{}", a_path.display(), b_path.display());
        targets.push((name, out, Vec::new()));
    }
    Ok(())
}

fn lint_fixture_targets(config: &LintConfig, targets: &mut Vec<Target>) {
    type SchemaFixture = fn() -> TaskSchema;
    let schemas: [(&str, SchemaFixture); 3] = [
        ("fixture:schema/fig1", schema_fixtures::fig1),
        ("fixture:schema/fig2", schema_fixtures::fig2),
        ("fixture:schema/odyssey", schema_fixtures::odyssey),
    ];
    for (name, make) in schemas {
        let mut out = Diagnostics::with_config(config.clone());
        let mut clock = wall_clock();
        let timings = lint_schema_timed(&make(), &mut out, &mut clock);
        targets.push((name.to_owned(), out, timings));
    }
    type FlowFixture = fn(Arc<TaskSchema>) -> Result<TaskGraph, hercules_flow::FlowError>;
    fn wide_parallel4(schema: Arc<TaskSchema>) -> Result<TaskGraph, hercules_flow::FlowError> {
        flow_fixtures::wide_parallel(schema, 4)
    }
    let flows: [(&str, FlowFixture); 8] = [
        ("fixture:flow/fig3", flow_fixtures::fig3),
        ("fixture:flow/fig4_edited", flow_fixtures::fig4_edited),
        ("fixture:flow/fig4_extracted", flow_fixtures::fig4_extracted),
        ("fixture:flow/fig5", flow_fixtures::fig5),
        ("fixture:flow/fig6", flow_fixtures::fig6),
        ("fixture:flow/fig8_synthesis", flow_fixtures::fig8_synthesis),
        (
            "fixture:flow/fig8_verification",
            flow_fixtures::fig8_verification,
        ),
        ("fixture:flow/wide_parallel4", wide_parallel4),
    ];
    let schema = Arc::new(schema_fixtures::fig1());
    for (name, make) in flows {
        let mut out = Diagnostics::with_config(config.clone());
        let timings = match make(schema.clone()) {
            Ok(flow) => {
                let mut clock = wall_clock();
                lint_flow_timed(&flow, &mut out, &mut clock)
            }
            Err(e) => {
                out.push(hercules_analyze::diagnose_flow_error(&e));
                Vec::new()
            }
        };
        targets.push((name.to_owned(), out, timings));
    }
}

fn run(argv: &[String]) -> Result<ExitCode, String> {
    let args = parse_args(argv)?;
    if args.list_passes {
        print!("{}", render_passes());
        return Ok(ExitCode::SUCCESS);
    }

    let mut targets: Vec<Target> = Vec::new();
    lint_file_targets(&args, &mut targets)?;
    if args.fixtures {
        lint_fixture_targets(&args.config, &mut targets);
    }
    for (_, out, _) in &mut targets {
        out.sort();
    }

    if args.json {
        let mut timings: Vec<JsonPassTiming> = Vec::new();
        for (name, _, target_timings) in &targets {
            timings.extend(JsonPassTiming::from_timings(name, target_timings));
        }
        let report = JsonReport::from_targets(targets.iter().map(|(n, d, _)| (n.as_str(), d)))
            .with_timings(timings);
        println!("{}", report.to_json().map_err(|e| e.to_string())?);
    } else {
        let mut errors = 0;
        let mut warnings = 0;
        let mut infos = 0;
        for (name, out, _) in &targets {
            errors += out.count(Severity::Error);
            warnings += out.count(Severity::Warn);
            infos += out.count(Severity::Info);
            if out.is_empty() {
                println!("{name}: clean");
            } else {
                println!("{name}:");
                for d in out.iter() {
                    println!("  {d}");
                }
            }
        }
        println!("{errors} error(s), {warnings} warning(s), {infos} info(s)");
    }

    let worst = targets
        .iter()
        .filter_map(|(_, d, _)| d.max_severity())
        .max();
    let failed = match (args.fail_on, worst) {
        (Some(threshold), Some(worst)) => worst >= threshold,
        _ => false,
    };
    Ok(if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(code) => code,
        Err(msg) => {
            if msg.is_empty() {
                eprintln!("{USAGE}");
            } else {
                eprintln!("herclint: {msg}");
                eprintln!("{USAGE}");
            }
            ExitCode::from(2)
        }
    }
}
