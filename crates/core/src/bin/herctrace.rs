//! `herctrace` — trace, profile, and export Hercules executions.
//!
//! Two sources, four renderings:
//!
//! * **Live** (default): executes a fixture flow (Fig. 5 by default)
//!   with simulated tool work, tracing every span, and renders the
//!   result.
//! * **Replay** (`--workspace DIR`): recovers a durable workspace and
//!   synthesizes the trace from the last persisted execution report —
//!   no tool re-runs.
//!
//! Formats: `report` (critical-path analysis), `gantt` (text chart),
//! `tree` (span tree), `chrome` (Chrome `trace_event` JSON — load the
//! file in `chrome://tracing` or <https://ui.perfetto.dev>).
//!
//! Two operational modes ride alongside:
//!
//! * **Postmortem** (`--postmortem DIR`): reads the workspace's
//!   `telemetry-N.jsonl` flight-recorder sidecars — tolerating a torn
//!   tail from a crash — and prints the reconstructed event tail.
//!   Exits nonzero when no parseable record survives.
//! * **Health** (`herctrace health --workspace DIR [--json]`): opens
//!   the workspace and renders the aggregated [`HealthReport`] exactly
//!   as the REPL `health` command does.
//!
//! ```text
//! herctrace --format gantt
//! herctrace --workspace /tmp/ws --format chrome --out trace.json
//! herctrace --postmortem /tmp/ws
//! herctrace health --workspace /tmp/ws --json
//! ```
//!
//! [`HealthReport`]: hercules_obs::HealthReport

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use hercules::store::Workspace;
use hercules_exec::{report_to_trace, schedule_to_trace, toy, Binding, Executor};
use hercules_flow::TaskGraph;
use hercules_history::HistoryDb;
use hercules_obs::chrome::to_chrome_trace;
use hercules_obs::{profile, Metrics, RingBuffer, TraceEvent, Tracer};
use hercules_schema::fixtures;

const USAGE: &str = "\
herctrace — trace, profile, and export Hercules executions

USAGE:
    herctrace [OPTIONS]
    herctrace health --workspace <DIR> [--json]

SOURCE (choose one):
    (default)            execute a fixture flow live, traced
    --workspace <DIR>    replay the last execution of a durable workspace
    --schedule <N>       simulate an N-machine cluster schedule instead
    --postmortem <DIR>   reconstruct the flight-recorder tail of a
                         (possibly crashed) workspace; nonzero exit if
                         no record survives

OPTIONS:
    --fixture <fig5|fig6>   fixture flow for live/schedule mode [default: fig5]
    --format <report|gantt|tree|chrome>   rendering [default: report]
    --out <FILE>            write to FILE instead of stdout
    --work-ms <N>           simulated per-tool compute [default: 5]
    --serial                run subtasks serially (baseline comparison)
    -h, --help              print this help
";

struct Options {
    workspace: Option<String>,
    schedule: Option<usize>,
    postmortem: Option<String>,
    health: bool,
    json: bool,
    fixture: String,
    format: String,
    out: Option<String>,
    work_ms: u64,
    serial: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        workspace: None,
        schedule: None,
        postmortem: None,
        health: false,
        json: false,
        fixture: "fig5".into(),
        format: "report".into(),
        out: None,
        work_ms: 5,
        serial: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "health" => opts.health = true,
            "--json" => opts.json = true,
            "--postmortem" => opts.postmortem = Some(value("--postmortem")?),
            "--workspace" => opts.workspace = Some(value("--workspace")?),
            "--schedule" => {
                opts.schedule = Some(
                    value("--schedule")?
                        .parse()
                        .map_err(|_| "--schedule needs a machine count".to_owned())?,
                );
            }
            "--fixture" => opts.fixture = value("--fixture")?,
            "--format" => opts.format = value("--format")?,
            "--out" => opts.out = Some(value("--out")?),
            "--work-ms" => {
                opts.work_ms = value("--work-ms")?
                    .parse()
                    .map_err(|_| "--work-ms needs a number".to_owned())?;
            }
            "--serial" => opts.serial = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if opts.health && opts.workspace.is_none() {
        return Err("health needs --workspace <DIR>".to_owned());
    }
    if !matches!(opts.format.as_str(), "report" | "gantt" | "tree" | "chrome") {
        return Err(format!("unknown format `{}`", opts.format));
    }
    if !matches!(opts.fixture.as_str(), "fig5" | "fig6") {
        return Err(format!("unknown fixture `{}` (fig5 or fig6)", opts.fixture));
    }
    Ok(opts)
}

fn fixture_flow(name: &str) -> Result<TaskGraph, String> {
    let schema = Arc::new(fixtures::fig1());
    let flow = match name {
        "fig6" => hercules_flow::fixtures::fig6(schema),
        _ => hercules_flow::fixtures::fig5(schema),
    };
    flow.map_err(|e| format!("fixture: {e}"))
}

/// Executes the fixture flow live with tracing on; returns the trace
/// and the metrics it produced.
fn live_trace(opts: &Options) -> Result<(Vec<TraceEvent>, Metrics), String> {
    let flow = fixture_flow(&opts.fixture)?;
    let schema = flow.schema().clone();
    let mut db = HistoryDb::new(schema.clone());
    toy::seed_everything(&mut db, "herctrace");
    let mut binding = Binding::new();
    binding.bind_latest(&flow, &db);

    let ring = Arc::new(RingBuffer::new(65_536));
    let tracer = Tracer::new(ring.clone());
    let metrics = Metrics::new();
    let mut executor = Executor::new(toy::text_registry_with(
        &schema,
        toy::TextTool {
            work: Duration::from_millis(opts.work_ms),
            ..toy::TextTool::default()
        },
    ));
    executor.options_mut().parallel = !opts.serial;
    executor.options_mut().tracer = tracer;
    executor.options_mut().metrics = metrics.clone();
    executor
        .execute(&flow, &binding, &mut db)
        .map_err(|e| format!("execution: {e}"))?;
    Ok((ring.snapshot(), metrics))
}

/// Recovers a workspace and synthesizes the trace of its last run.
fn replayed_trace(dir: &str) -> Result<Vec<TraceEvent>, String> {
    let (_ws, session, recovery) =
        Workspace::open_session(Path::new(dir), |s| hercules::encaps::odyssey_registry(s))
            .map_err(|e| format!("workspace `{dir}`: {e}"))?;
    eprintln!("recovered workspace `{dir}`: {recovery}");
    eprintln!("recovery: {}", recovery.to_json());
    let report = session
        .last_report()
        .ok_or_else(|| format!("workspace `{dir}` holds no execution report"))?;
    Ok(report_to_trace(report, session.flow().ok()))
}

fn render(events: &[TraceEvent], format: &str, metrics: Option<&Metrics>) -> String {
    match format {
        "chrome" => to_chrome_trace(events),
        "tree" => profile::render_tree(&profile::build_spans(events)),
        "gantt" => profile::profile(events).render_gantt(80),
        _ => {
            let mut out = profile::profile(events).render_text();
            if let Some(metrics) = metrics {
                out.push('\n');
                out.push_str(&metrics.snapshot().render_text());
            }
            out
        }
    }
}

/// Reconstructs and prints the flight-recorder tail of a workspace.
/// `Err` when no parseable record survives (crash before the durable
/// session stamp, or no telemetry at all).
fn postmortem(dir: &str) -> Result<(), String> {
    let fs = hercules_sim::Fs::real();
    let report = hercules::read_postmortem(&fs, Path::new(dir))
        .map_err(|e| format!("postmortem `{dir}`: {e}"))?;
    print!("{}", report.render_text(20));
    if report.records.is_empty() {
        return Err(format!(
            "postmortem `{dir}`: no parseable telemetry record recovered"
        ));
    }
    Ok(())
}

/// Opens the workspace through the REPL machinery and renders its
/// health report, exactly as the REPL `health` command would.
fn health(dir: &str, json: bool) -> Result<String, String> {
    use hercules::ui::{Command, Ui};
    let mut ui = Ui::new(hercules::Session::odyssey("herctrace"));
    let open = Command::parse(&format!("open {dir}")).map_err(|e| e.to_string())?;
    ui.apply(open)
        .map_err(|e| format!("workspace `{dir}`: {e}"))?;
    let cmd =
        Command::parse(if json { "health --json" } else { "health" }).map_err(|e| e.to_string())?;
    ui.apply(cmd).map_err(|e| format!("health: {e}"))
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args)?;

    if let Some(dir) = &opts.postmortem {
        return postmortem(dir);
    }

    let output = if opts.health {
        let dir = opts.workspace.as_deref().expect("validated in parse_args");
        health(dir, opts.json)?
    } else if let Some(dir) = &opts.workspace {
        let events = replayed_trace(dir)?;
        render(&events, &opts.format, None)
    } else if let Some(machines) = opts.schedule {
        let flow = fixture_flow(&opts.fixture)?;
        let schedule = hercules_exec::cluster::simulate_schedule(
            &flow,
            &hercules_exec::cluster::UniformCost(10),
            machines,
        )
        .map_err(|e| format!("schedule: {e}"))?;
        let events = schedule_to_trace(&schedule, Some(&flow));
        render(&events, &opts.format, None)
    } else {
        let (events, metrics) = live_trace(&opts)?;
        let mut out = render(&events, &opts.format, Some(&metrics));
        if opts.format == "report" {
            let flow = fixture_flow(&opts.fixture)?;
            let width = flow.max_parallelism().map_err(|e| format!("waves: {e}"))?;
            out.push_str(&format!(
                "flow `{}` schema-theoretic max parallelism (widest DAG level): {width}\n",
                opts.fixture
            ));
        }
        out
    };

    match &opts.out {
        Some(path) => {
            std::fs::write(path, &output).map_err(|e| format!("write `{path}`: {e}"))?;
            eprintln!("wrote {} bytes to `{path}`", output.len());
        }
        None => print!("{output}"),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("herctrace: {msg}");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
